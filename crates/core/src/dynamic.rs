//! Incremental index maintenance under edge updates.
//!
//! The paper lists dynamic graphs as future work (§9); related work (reference 29
//! in its bibliography) studies SimRank on link-evolving graphs. This
//! module provides a production-style wrapper, [`DynamicSling`], that
//! keeps a SLING index usable while the graph mutates:
//!
//! * Edge insertions/deletions and node additions are applied to a
//!   mutable adjacency overlay immediately; the index itself is *not*
//!   touched.
//! * Every update taints the region of the graph whose query results it
//!   can move by more than the index's ε budget. A reverse √c-walk from
//!   `x` only visits nodes reachable from `x` along in-edges, and stored
//!   hitting probabilities are cut off below `θ` after
//!   `L = ⌈log_{√c} θ⌉` steps, so an update of `I(v)` can only affect
//!   `H(x)` for nodes `x` within `L` *out*-hops of `v`. (Correction
//!   factors `d_k` read one extra hop, hence the `L + 1` taint horizon.)
//!   Scores of untainted pairs move by at most `O(c^L) ≤ O(θ) ≪ ε`, so
//!   serving them from the stale index preserves the ε guarantee.
//! * Tainted queries are resolved per a [`StalePolicy`]: rebuild the
//!   index, fall back to on-the-fly Monte-Carlo √c-walk estimation on the
//!   *current* graph (Lemma 3 + the Chernoff bound give ε/δ guarantees
//!   without any index), or knowingly serve the stale answer.
//! * When the update log grows past [`DynamicConfig::rebuild_fraction`]
//!   of the edge count, the wrapper rebuilds eagerly — the classic
//!   amortization argument: a rebuild costs `O(m/ε + n log(n/δ)/ε²)`, so
//!   charging it to `Ω(m)` updates keeps amortized update cost
//!   near-constant.

use sling_graph::{DiGraph, NodeId};

use crate::config::SlingConfig;
use crate::error::SlingError;
use crate::index::SlingIndex;
use crate::walk::{task_rng, WalkEngine};

/// What to do when a query touches the tainted region of the graph.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum StalePolicy {
    /// Rebuild the index before answering (always fresh, bursty latency).
    Rebuild,
    /// Answer single-pair queries with on-the-fly Monte-Carlo √c-walk
    /// estimation on the current graph (failure probability `delta` per
    /// query); single-source queries still rebuild, since `n` independent
    /// MC estimations would dwarf a rebuild.
    MonteCarloFallback {
        /// Per-query failure probability for the Chernoff sample bound.
        delta: f64,
    },
    /// Serve the stale index answer (no guarantee inside the tainted
    /// region; cheapest).
    ServeStale,
}

/// Configuration for [`DynamicSling`].
#[derive(Clone, Debug)]
pub struct DynamicConfig {
    /// Index parameters (ε, θ, seeds, ...).
    pub config: SlingConfig,
    /// Policy for queries that hit the tainted region.
    pub policy: StalePolicy,
    /// Eager rebuild threshold: rebuild when
    /// `pending_updates > rebuild_fraction · m`. Set to `f64::INFINITY`
    /// to rebuild only on demand.
    pub rebuild_fraction: f64,
}

impl DynamicConfig {
    /// Default dynamic setup around the given index configuration:
    /// Monte-Carlo fallback with `δ = 10⁻⁴`, rebuild at 10% churn.
    pub fn new(config: SlingConfig) -> Self {
        DynamicConfig {
            config,
            policy: StalePolicy::MonteCarloFallback { delta: 1e-4 },
            rebuild_fraction: 0.1,
        }
    }
}

/// A SLING index that stays queryable while its graph evolves.
///
/// ```
/// use sling_core::dynamic::{DynamicConfig, DynamicSling};
/// use sling_core::SlingConfig;
/// use sling_graph::generators::cycle_graph;
/// use sling_graph::NodeId;
///
/// let g = cycle_graph(6);
/// let cfg = DynamicConfig::new(SlingConfig::from_epsilon(0.6, 0.1));
/// let mut index = DynamicSling::new(&g, cfg).unwrap();
/// index.insert_edge(NodeId(0), NodeId(3)).unwrap();
/// let s = index.single_pair(NodeId(1), NodeId(4)).unwrap();
/// assert!((0.0..=1.0).contains(&s));
/// ```
#[derive(Debug)]
pub struct DynamicSling {
    cfg: DynamicConfig,
    /// Sorted adjacency overlay (the *current* graph).
    out_adj: Vec<Vec<NodeId>>,
    in_adj: Vec<Vec<NodeId>>,
    num_edges: usize,
    /// Index and the snapshot it was built from.
    index: SlingIndex,
    snapshot: DiGraph,
    /// Materialized current graph, invalidated by updates.
    current: Option<DiGraph>,
    /// Nodes whose in-adjacency changed since the snapshot.
    dirty: Vec<NodeId>,
    /// Lazily computed taint bitmap (nodes whose queries may be stale).
    tainted: Option<Vec<bool>>,
    updates_since_build: usize,
    query_counter: u64,
}

fn sorted_insert(list: &mut Vec<NodeId>, v: NodeId) -> bool {
    match list.binary_search(&v) {
        Ok(_) => false,
        Err(pos) => {
            list.insert(pos, v);
            true
        }
    }
}

fn sorted_remove(list: &mut Vec<NodeId>, v: NodeId) -> bool {
    match list.binary_search(&v) {
        Ok(pos) => {
            list.remove(pos);
            true
        }
        Err(_) => false,
    }
}

impl DynamicSling {
    /// Build the initial index over `graph`.
    pub fn new(graph: &DiGraph, cfg: DynamicConfig) -> Result<Self, SlingError> {
        let index = SlingIndex::build(graph, &cfg.config)?;
        let out_adj: Vec<Vec<NodeId>> = graph
            .nodes()
            .map(|v| graph.out_neighbors(v).to_vec())
            .collect();
        let in_adj: Vec<Vec<NodeId>> = graph
            .nodes()
            .map(|v| graph.in_neighbors(v).to_vec())
            .collect();
        Ok(DynamicSling {
            num_edges: graph.num_edges(),
            out_adj,
            in_adj,
            index,
            snapshot: graph.clone(),
            current: None,
            dirty: Vec::new(),
            tainted: None,
            updates_since_build: 0,
            cfg,
            query_counter: 0,
        })
    }

    /// Current number of nodes (including ones added since the last
    /// rebuild).
    pub fn num_nodes(&self) -> usize {
        self.out_adj.len()
    }

    /// Current number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Updates applied since the index was last (re)built.
    pub fn pending_updates(&self) -> usize {
        self.updates_since_build
    }

    /// The index parameters.
    pub fn config(&self) -> &SlingConfig {
        &self.cfg.config
    }

    /// Taint horizon `L + 1` where `L = ⌈log_{√c} θ⌉` (see module docs).
    fn horizon(&self) -> u32 {
        let l = self.cfg.config.theta.ln() / self.cfg.config.sqrt_c().ln();
        l.ceil().max(0.0) as u32 + 1
    }

    fn check_node(&self, v: NodeId) -> Result<(), SlingError> {
        if v.index() >= self.num_nodes() {
            return Err(SlingError::NodeOutOfRange {
                node: v.0,
                n: self.num_nodes() as u32,
            });
        }
        Ok(())
    }

    /// Add an isolated node; returns its id. The new node is tainted
    /// until the next rebuild (the snapshot index has never seen it).
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId::from_index(self.out_adj.len());
        self.out_adj.push(Vec::new());
        self.in_adj.push(Vec::new());
        self.current = None;
        self.tainted = None;
        id
    }

    /// Insert the directed edge `u -> v`. Returns `Ok(false)` if the edge
    /// already exists or is a self-loop (SimRank's model excludes them).
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId) -> Result<bool, SlingError> {
        self.check_node(u)?;
        self.check_node(v)?;
        if u == v || !sorted_insert(&mut self.out_adj[u.index()], v) {
            return Ok(false);
        }
        sorted_insert(&mut self.in_adj[v.index()], u);
        self.num_edges += 1;
        self.note_update(v);
        Ok(true)
    }

    /// Remove the directed edge `u -> v`. Returns `Ok(false)` if absent.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> Result<bool, SlingError> {
        self.check_node(u)?;
        self.check_node(v)?;
        if !sorted_remove(&mut self.out_adj[u.index()], v) {
            return Ok(false);
        }
        sorted_remove(&mut self.in_adj[v.index()], u);
        self.num_edges -= 1;
        self.note_update(v);
        Ok(true)
    }

    fn note_update(&mut self, changed_in: NodeId) {
        self.dirty.push(changed_in);
        self.current = None;
        self.tainted = None;
        self.updates_since_build += 1;
        if (self.updates_since_build as f64)
            > self.cfg.rebuild_fraction * self.snapshot.num_edges().max(1) as f64
        {
            self.rebuild().expect("rebuild after churn threshold");
        }
    }

    /// Materialize (and cache) the current graph.
    pub fn current_graph(&mut self) -> &DiGraph {
        if self.current.is_none() {
            let n = self.out_adj.len();
            let edges = self
                .out_adj
                .iter()
                .enumerate()
                .flat_map(|(u, vs)| vs.iter().map(move |v| (u as u32, v.0)))
                .collect::<Vec<_>>();
            self.current = Some(DiGraph::from_edges(n, edges));
        }
        self.current.as_ref().expect("just materialized")
    }

    /// Rebuild the index from the current graph, clearing all staleness.
    pub fn rebuild(&mut self) -> Result<(), SlingError> {
        self.current_graph();
        let graph = self.current.clone().expect("materialized above");
        self.index = SlingIndex::build(&graph, &self.cfg.config)?;
        self.snapshot = graph;
        self.dirty.clear();
        self.tainted = None;
        self.updates_since_build = 0;
        Ok(())
    }

    /// Rebuild from the current graph and **publish the result into a
    /// generation store** instead of only replacing the engine in place:
    /// the fresh index plus a snapshot of the graph it was built from
    /// become a new `gen-NNNN` directory, which is then verified and
    /// atomically promoted to `CURRENT`. A serving process watching the
    /// store (`sling serve --index-root <root> --watch`, or the `RELOAD`
    /// verb) hot-swaps onto it without dropping a request — the
    /// zero-downtime path for dynamic workloads, where this wrapper owns
    /// the mutations and the server owns the traffic.
    ///
    /// The local index is rebuilt too (this wrapper keeps answering its
    /// own queries), and all staleness is cleared exactly as in
    /// [`DynamicSling::rebuild`]. Returns the promoted generation id.
    pub fn rebuild_into(
        &mut self,
        store: &crate::lifecycle::GenerationStore,
    ) -> Result<crate::lifecycle::GenId, SlingError> {
        self.rebuild()?;
        let gen = store.publish_index(&self.index, Some(&self.snapshot))?;
        store.promote(gen)?;
        Ok(gen)
    }

    /// Compute (and cache) the taint bitmap: nodes within `horizon`
    /// out-hops of any dirty node on the current graph, plus nodes the
    /// snapshot has never seen.
    fn taint_map(&mut self) -> &[bool] {
        if self.tainted.is_none() {
            let n = self.out_adj.len();
            let horizon = self.horizon();
            let mut tainted = vec![false; n];
            for i in self.snapshot.num_nodes()..n {
                tainted[i] = true;
            }
            let mut frontier: Vec<NodeId> = Vec::new();
            for &d in &self.dirty {
                if !tainted[d.index()] {
                    tainted[d.index()] = true;
                    frontier.push(d);
                }
            }
            for _ in 0..horizon {
                if frontier.is_empty() {
                    break;
                }
                let mut next = Vec::new();
                for &x in &frontier {
                    for &y in &self.out_adj[x.index()] {
                        if !tainted[y.index()] {
                            tainted[y.index()] = true;
                            next.push(y);
                        }
                    }
                }
                frontier = next;
            }
            self.tainted = Some(tainted);
        }
        self.tainted.as_deref().expect("just computed")
    }

    /// Whether queries involving `v` may currently be stale.
    pub fn is_tainted(&mut self, v: NodeId) -> bool {
        v.index() >= self.snapshot.num_nodes() || self.taint_map()[v.index()]
    }

    /// Chernoff sample count for a two-sided additive `ε` bound with
    /// failure probability `delta` on a `[0, 1]` Bernoulli mean.
    fn mc_pairs(eps: f64, delta: f64) -> u32 {
        let n = (2.0 / 3.0 * eps + 2.0) / (eps * eps) * (2.0 / delta).ln();
        n.ceil() as u32
    }

    /// Single-pair query with freshness handling per the configured
    /// policy. Self-pairs return 1 exactly.
    pub fn single_pair(&mut self, u: NodeId, v: NodeId) -> Result<f64, SlingError> {
        self.check_node(u)?;
        self.check_node(v)?;
        if u == v {
            return Ok(1.0);
        }
        let fresh = !self.is_tainted(u) && !self.is_tainted(v);
        if fresh {
            return Ok(self.index.single_pair(&self.snapshot, u, v));
        }
        match self.cfg.policy {
            StalePolicy::Rebuild => {
                self.rebuild()?;
                Ok(self.index.single_pair(&self.snapshot, u, v))
            }
            StalePolicy::MonteCarloFallback { delta } => {
                let eps = self.cfg.config.epsilon;
                let c = self.cfg.config.c;
                let seed = self.cfg.config.seed;
                self.query_counter += 1;
                let counter = self.query_counter;
                let pairs = Self::mc_pairs(eps, delta);
                let graph = self.current_graph();
                let engine = WalkEngine::new(graph, c);
                let mut rng = task_rng(seed ^ 0xD15C0, counter);
                Ok(engine.estimate_simrank(&mut rng, u, v, pairs))
            }
            StalePolicy::ServeStale => {
                if u.index() < self.snapshot.num_nodes() && v.index() < self.snapshot.num_nodes() {
                    Ok(self.index.single_pair(&self.snapshot, u, v))
                } else {
                    // The stale index predates these nodes entirely; zero
                    // is the only consistent stale answer.
                    Ok(0.0)
                }
            }
        }
    }

    /// Single-source query. If any node is tainted the index rebuilds
    /// first (unless the policy is [`StalePolicy::ServeStale`]); per-node
    /// Monte-Carlo fallback is never worth it for `n` outputs.
    pub fn single_source(&mut self, u: NodeId) -> Result<Vec<f64>, SlingError> {
        self.check_node(u)?;
        let any_taint =
            self.updates_since_build > 0 || self.snapshot.num_nodes() != self.out_adj.len();
        if any_taint && self.cfg.policy != StalePolicy::ServeStale {
            self.rebuild()?;
        }
        if u.index() >= self.snapshot.num_nodes() {
            // ServeStale with a node the snapshot never saw.
            let mut out = vec![0.0; self.num_nodes()];
            out[u.index()] = 1.0;
            return Ok(out);
        }
        let mut out = self.index.single_source(&self.snapshot, u);
        out.resize(self.num_nodes(), 0.0);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sling_graph::generators::{barabasi_albert, cycle_graph, two_cliques_bridge};

    const C: f64 = 0.6;

    fn cfg(eps: f64) -> DynamicConfig {
        DynamicConfig::new(SlingConfig::from_epsilon(C, eps).with_seed(7))
    }

    fn fresh_index(dyn_idx: &mut DynamicSling) -> (SlingIndex, DiGraph) {
        let g = dyn_idx.current_graph().clone();
        let idx = SlingIndex::build(&g, dyn_idx.config()).unwrap();
        (idx, g)
    }

    #[test]
    fn insert_and_remove_maintain_adjacency() {
        let g = cycle_graph(5);
        let mut d = DynamicSling::new(&g, cfg(0.1)).unwrap();
        assert_eq!(d.num_edges(), 5);
        assert!(d.insert_edge(NodeId(0), NodeId(2)).unwrap());
        assert!(!d.insert_edge(NodeId(0), NodeId(2)).unwrap(), "duplicate");
        assert!(!d.insert_edge(NodeId(3), NodeId(3)).unwrap(), "self-loop");
        assert_eq!(d.num_edges(), 6);
        assert!(d.remove_edge(NodeId(0), NodeId(2)).unwrap());
        assert!(!d.remove_edge(NodeId(0), NodeId(2)).unwrap(), "absent");
        assert_eq!(d.num_edges(), 5);
        assert!(d.insert_edge(NodeId(0), NodeId(9)).is_err());
    }

    #[test]
    fn untainted_queries_served_from_stale_index_without_rebuild() {
        // Two disjoint 4-cycles (0..4 and 4..8): an update inside the
        // second component cannot taint the first, so queries there keep
        // being served from the existing index even under Rebuild policy.
        let mut edges: Vec<(u32, u32)> = (0..4).map(|i| (i, (i + 1) % 4)).collect();
        edges.extend((0..4).map(|i| (4 + i, 4 + (i + 1) % 4)));
        let g = DiGraph::from_edges(8, edges);
        let mut c = cfg(0.1);
        c.policy = StalePolicy::Rebuild;
        c.rebuild_fraction = f64::INFINITY;
        let mut d = DynamicSling::new(&g, c).unwrap();
        let before = d.single_pair(NodeId(0), NodeId(2)).unwrap();
        d.insert_edge(NodeId(4), NodeId(6)).unwrap();
        assert!(!d.is_tainted(NodeId(0)));
        assert!(!d.is_tainted(NodeId(2)));
        assert!(d.is_tainted(NodeId(6)));
        assert_eq!(d.single_pair(NodeId(0), NodeId(2)).unwrap(), before);
        assert_eq!(d.pending_updates(), 1, "no rebuild for untainted pair");
    }

    #[test]
    fn taint_is_bounded_by_out_reachability() {
        // Directed path 0 -> 1 -> 2 -> 3: updating I(1) (edge 0->1 removed)
        // taints 1 and its out-reach {2, 3}, but never node 0.
        let g = DiGraph::from_edges(4, vec![(0, 1), (1, 2), (2, 3)]);
        let mut c = cfg(0.1);
        c.rebuild_fraction = f64::INFINITY;
        let mut d = DynamicSling::new(&g, c).unwrap();
        d.remove_edge(NodeId(0), NodeId(1)).unwrap();
        assert!(!d.is_tainted(NodeId(0)));
        assert!(d.is_tainted(NodeId(1)));
        assert!(d.is_tainted(NodeId(2)));
        assert!(d.is_tainted(NodeId(3)));
    }

    #[test]
    fn rebuild_policy_matches_fresh_build() {
        let g = barabasi_albert(60, 2, 9).unwrap();
        let mut cfg = cfg(0.05);
        cfg.policy = StalePolicy::Rebuild;
        cfg.rebuild_fraction = f64::INFINITY;
        let mut d = DynamicSling::new(&g, cfg).unwrap();
        d.insert_edge(NodeId(0), NodeId(50)).unwrap();
        d.insert_edge(NodeId(50), NodeId(13)).unwrap();
        d.remove_edge(NodeId(1), NodeId(0)).ok();
        let (fresh, fg) = fresh_index(&mut d);
        // Tainted query triggers rebuild with the same seed => identical.
        let got = d.single_pair(NodeId(0), NodeId(50)).unwrap();
        let want = fresh.single_pair(&fg, NodeId(0), NodeId(50));
        assert_eq!(got, want);
        assert_eq!(d.pending_updates(), 0, "rebuild cleared the log");
    }

    #[test]
    fn mc_fallback_is_within_eps_of_truth() {
        let eps = 0.05;
        let g = two_cliques_bridge(4);
        let mut c = cfg(eps);
        c.policy = StalePolicy::MonteCarloFallback { delta: 1e-6 };
        c.rebuild_fraction = f64::INFINITY;
        let mut d = DynamicSling::new(&g, c).unwrap();
        // Densify the first clique's pattern a little.
        d.insert_edge(NodeId(0), NodeId(2)).unwrap();
        let truth = crate::reference::exact_simrank(d.current_graph(), C, 60);
        for (u, v) in [(0u32, 1u32), (1, 2), (0, 3)] {
            let got = d.single_pair(NodeId(u), NodeId(v)).unwrap();
            let want = truth[u as usize][v as usize];
            assert!(
                (got - want).abs() <= eps,
                "({u},{v}): got {got}, want {want}"
            );
        }
    }

    #[test]
    fn churn_threshold_triggers_auto_rebuild() {
        let g = cycle_graph(10);
        let mut c = cfg(0.1);
        c.rebuild_fraction = 0.2; // 10 edges * 0.2 = 2 updates allowed
        let mut d = DynamicSling::new(&g, c).unwrap();
        d.insert_edge(NodeId(0), NodeId(5)).unwrap();
        d.insert_edge(NodeId(1), NodeId(6)).unwrap();
        assert!(d.pending_updates() > 0);
        d.insert_edge(NodeId(2), NodeId(7)).unwrap(); // crosses 20% churn
        assert_eq!(d.pending_updates(), 0, "auto-rebuild fired");
        // And the rebuilt index answers on the new topology.
        let (fresh, fg) = fresh_index(&mut d);
        assert_eq!(
            d.single_pair(NodeId(0), NodeId(1)).unwrap(),
            fresh.single_pair(&fg, NodeId(0), NodeId(1))
        );
    }

    #[test]
    fn added_nodes_are_queryable_after_linking() {
        let g = cycle_graph(4);
        let mut c = cfg(0.1);
        c.policy = StalePolicy::Rebuild;
        c.rebuild_fraction = f64::INFINITY;
        let mut d = DynamicSling::new(&g, c).unwrap();
        let new = d.add_node();
        assert_eq!(new, NodeId(4));
        assert!(d.is_tainted(new));
        d.insert_edge(NodeId(0), new).unwrap();
        d.insert_edge(NodeId(1), new).unwrap();
        let s = d.single_pair(new, NodeId(2)).unwrap();
        assert!((0.0..=1.0).contains(&s));
        // After the rebuild the new node is first-class.
        assert!(!d.is_tainted(new));
        let ss = d.single_source(new).unwrap();
        assert_eq!(ss.len(), 5);
        assert_eq!(ss[4], 1.0);
    }

    #[test]
    fn rebuild_into_publishes_and_promotes_a_generation() {
        let g = barabasi_albert(60, 2, 9).unwrap();
        let mut c = cfg(0.1);
        c.rebuild_fraction = f64::INFINITY;
        let mut d = DynamicSling::new(&g, c).unwrap();
        let root = std::env::temp_dir().join(format!("sling_dynamic_gen_{}", std::process::id()));
        std::fs::remove_dir_all(&root).ok();
        let store = crate::lifecycle::GenerationStore::open(&root).unwrap();

        d.insert_edge(NodeId(0), NodeId(50)).unwrap();
        let gen = d.rebuild_into(&store).unwrap();
        assert_eq!(store.current().unwrap(), Some(gen));
        assert_eq!(d.pending_updates(), 0, "rebuild cleared the log");

        // The promoted generation is self-contained: its graph snapshot
        // plus index answer bit-identically to the wrapper.
        let snap = store.load_graph(gen).unwrap().expect("graph co-located");
        let served = SlingIndex::load(&snap, store.index_path(gen)).unwrap();
        assert_eq!(
            served.single_pair(&snap, NodeId(0), NodeId(50)),
            d.single_pair(NodeId(0), NodeId(50)).unwrap()
        );

        // A second churn cycle publishes the next generation.
        d.insert_edge(NodeId(1), NodeId(40)).unwrap();
        let gen2 = d.rebuild_into(&store).unwrap();
        assert!(gen2 > gen);
        assert_eq!(store.current().unwrap(), Some(gen2));
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn serve_stale_answers_without_rebuilding() {
        let g = two_cliques_bridge(4);
        let mut c = cfg(0.1);
        c.policy = StalePolicy::ServeStale;
        c.rebuild_fraction = f64::INFINITY;
        let mut d = DynamicSling::new(&g, c).unwrap();
        let before = d.single_pair(NodeId(0), NodeId(1)).unwrap();
        d.insert_edge(NodeId(0), NodeId(5)).unwrap();
        assert_eq!(d.single_pair(NodeId(0), NodeId(1)).unwrap(), before);
        assert!(d.pending_updates() > 0, "no rebuild happened");
        let new = d.add_node();
        assert_eq!(d.single_pair(new, NodeId(0)).unwrap(), 0.0);
        let ss = d.single_source(new).unwrap();
        assert_eq!(ss[new.index()], 1.0);
    }

    #[test]
    fn single_source_rebuilds_when_stale() {
        let g = barabasi_albert(40, 2, 4).unwrap();
        let mut c = cfg(0.1);
        c.policy = StalePolicy::Rebuild;
        c.rebuild_fraction = f64::INFINITY;
        let mut d = DynamicSling::new(&g, c).unwrap();
        d.insert_edge(NodeId(0), NodeId(30)).unwrap();
        let (fresh, fg) = fresh_index(&mut d);
        let got = d.single_source(NodeId(0)).unwrap();
        let want = fresh.single_source(&fg, NodeId(0));
        assert_eq!(got, want);
    }
}
