//! Reference (exact, small-graph) implementations used as test oracles.
//!
//! These are deliberately simple dense `O(n²)`-space routines, independent
//! of the optimized code paths they validate. The production-grade power
//! method lives in `sling-baselines`; this module exists so `sling-core`'s
//! unit tests need no cross-crate dev-dependency.

use sling_graph::{DiGraph, NodeId};

/// Exact all-pairs SimRank via power iteration (§3.1), dense `n × n`.
///
/// After `t ≥ log_c(ε(1−c)) − 1` iterations the result is within ε of the
/// true scores (Lemma 1); 50 iterations at `c = 0.6` give error `< 1e-11`.
/// Only suitable for small graphs.
pub fn exact_simrank(graph: &DiGraph, c: f64, iterations: usize) -> Vec<Vec<f64>> {
    let n = graph.num_nodes();
    let mut s = vec![vec![0.0f64; n]; n];
    for (i, row) in s.iter_mut().enumerate() {
        row[i] = 1.0;
    }
    let mut next = vec![vec![0.0f64; n]; n];
    for _ in 0..iterations {
        for i in 0..n {
            let ii = graph.in_neighbors(NodeId::from_index(i));
            for j in 0..n {
                if i == j {
                    next[i][j] = 1.0;
                    continue;
                }
                let ij = graph.in_neighbors(NodeId::from_index(j));
                if ii.is_empty() || ij.is_empty() {
                    next[i][j] = 0.0;
                    continue;
                }
                let mut sum = 0.0;
                for &a in ii {
                    let row = &s[a.index()];
                    for &b in ij {
                        sum += row[b.index()];
                    }
                }
                next[i][j] = c * sum / (ii.len() * ij.len()) as f64;
            }
        }
        std::mem::swap(&mut s, &mut next);
    }
    s
}

/// Exact hitting probabilities *to* a fixed target:
/// `out[ℓ][v] = h⁽ℓ⁾(v, target)`, computed by the dense Eq. (16)
/// recurrence up to `max_step` inclusive.
pub fn exact_hp_to_target(graph: &DiGraph, c: f64, target: NodeId, max_step: u16) -> Vec<Vec<f64>> {
    let n = graph.num_nodes();
    let sc = c.sqrt();
    let mut levels = Vec::with_capacity(max_step as usize + 1);
    let mut cur = vec![0.0f64; n];
    cur[target.index()] = 1.0;
    levels.push(cur.clone());
    for _ in 0..max_step {
        let mut next = vec![0.0f64; n];
        for (i, slot) in next.iter_mut().enumerate() {
            let inn = graph.in_neighbors(NodeId::from_index(i));
            if inn.is_empty() {
                continue;
            }
            let sum: f64 = inn.iter().map(|&x| cur[x.index()]).sum();
            *slot = sc * sum / inn.len() as f64;
        }
        levels.push(next.clone());
        cur = next;
    }
    levels
}

/// Exact correction factors from exact SimRank scores (Eq. 14):
/// `d_k = 1 − c/|I| − (c/|I|²) Σ_{i≠j ∈ I(k)} s(v_i, v_j)`.
pub fn exact_dk(graph: &DiGraph, c: f64, simrank: &[Vec<f64>]) -> Vec<f64> {
    graph
        .nodes()
        .map(|k| {
            let inn = graph.in_neighbors(k);
            if inn.is_empty() {
                return 1.0;
            }
            let deg = inn.len() as f64;
            let mut sum = 0.0;
            for &a in inn {
                for &b in inn {
                    if a != b {
                        sum += simrank[a.index()][b.index()];
                    }
                }
            }
            1.0 - c / deg - c * sum / (deg * deg)
        })
        .collect()
}

/// Exact SimRank via the paper's Lemma 4 series, truncated at `max_step`:
/// a second, independently-derived oracle used to cross-check
/// [`exact_simrank`] and the SLING estimator in tests.
pub fn simrank_from_hp_series(
    graph: &DiGraph,
    c: f64,
    d: &[f64],
    max_step: u16,
    u: NodeId,
    v: NodeId,
) -> f64 {
    let n = graph.num_nodes();
    // h^(ℓ)(u, ·) and h^(ℓ)(v, ·) as dense vectors over targets: use the
    // transposed recurrence h^(ℓ+1)(u, k) = √c/|I(u)| Σ_{x∈I(u)} h^(ℓ)(x, k)
    // — we need rows, so propagate distributions forward from u and v.
    let sc = c.sqrt();
    let mut hu = vec![0.0f64; n];
    hu[u.index()] = 1.0;
    let mut hv = vec![0.0f64; n];
    hv[v.index()] = 1.0;
    let mut total = 0.0;
    for _ in 0..=max_step {
        for k in 0..n {
            total += hu[k] * d[k] * hv[k];
        }
        let step = |h: &Vec<f64>| -> Vec<f64> {
            let mut next = vec![0.0f64; n];
            for (i, hv) in h.iter().enumerate() {
                if *hv == 0.0 {
                    continue;
                }
                let vi = NodeId::from_index(i);
                let inn = graph.in_neighbors(vi);
                if inn.is_empty() {
                    continue;
                }
                let share = sc * hv / inn.len() as f64;
                for &x in inn {
                    next[x.index()] += share;
                }
            }
            next
        };
        hu = step(&hu);
        hv = step(&hv);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use sling_graph::generators::{complete_graph, cycle_graph, star_graph, two_cliques_bridge};

    const C: f64 = 0.6;

    #[test]
    fn complete_graph_matches_closed_form() {
        // Fixed point of Eq. (1) on K_n: the (n-1)^2 in-neighbor pairs
        // include n-2 identical-node pairs (s = 1), so
        // s = c(n-2) / ((1-c)(n-1)^2 + c(n-2)).
        let n = 5;
        let s = exact_simrank(&complete_graph(n), C, 60);
        let closed =
            C * (n - 2) as f64 / ((1.0 - C) * ((n - 1) * (n - 1)) as f64 + C * (n - 2) as f64);
        for i in 0..n {
            for j in 0..n {
                let expect = if i == j { 1.0 } else { closed };
                assert!(
                    (s[i][j] - expect).abs() < 1e-10,
                    "s[{i}][{j}] = {}",
                    s[i][j]
                );
            }
        }
    }

    #[test]
    fn cycle_offdiagonal_is_zero() {
        let s = exact_simrank(&cycle_graph(6), C, 50);
        for i in 0..6 {
            for j in 0..6 {
                if i != j {
                    assert!(s[i][j].abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn star_scores() {
        // Leaves have no in-neighbors => s(leaf_a, leaf_b) = 0; hub has
        // only dangling in-neighbors => s(hub, leaf) = 0 as well.
        let s = exact_simrank(&star_graph(5), C, 50);
        for i in 0..5 {
            for j in 0..5 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert_eq!(s[i][j], expect, "s[{i}][{j}]");
            }
        }
    }

    #[test]
    fn simrank_is_symmetric_and_bounded() {
        let s = exact_simrank(&two_cliques_bridge(4), C, 50);
        let n = s.len();
        for i in 0..n {
            for j in 0..n {
                assert!((s[i][j] - s[j][i]).abs() < 1e-12);
                assert!((0.0..=1.0 + 1e-12).contains(&s[i][j]));
            }
        }
        // Within-clique similarity must dominate cross-clique.
        assert!(s[1][2] > s[1][5]);
    }

    #[test]
    fn hp_level_mass_is_sqrt_c_powers() {
        // Summed over ALL targets, h^(ℓ)(v, ·) mass is (√c)^ℓ when every
        // node on the walk has in-neighbors (complete graph).
        let g = complete_graph(4);
        let n = g.num_nodes();
        let max = 6u16;
        let mut mass = vec![0.0f64; max as usize + 1];
        for t in g.nodes() {
            let levels = exact_hp_to_target(&g, C, t, max);
            for (l, lv) in levels.iter().enumerate() {
                mass[l] += lv[0]; // mass from node 0 to target t at level l
            }
        }
        let sc = C.sqrt();
        for (l, &m) in mass.iter().enumerate() {
            assert!((m - sc.powi(l as i32)).abs() < 1e-12, "level {l}: {m}");
        }
        let _ = n;
    }

    #[test]
    fn exact_dk_range_and_dangling() {
        let g = star_graph(5);
        let s = exact_simrank(&g, C, 50);
        let d = exact_dk(&g, C, &s);
        assert_eq!(d[1], 1.0); // dangling leaf
        assert!((d[0] - (1.0 - C / 4.0)).abs() < 1e-10); // hub, µ = 0
        for &dk in &d {
            assert!((1.0 - C - 1e-12..=1.0 + 1e-12).contains(&dk));
        }
    }

    #[test]
    fn lemma4_series_reproduces_simrank() {
        // The Lemma 4 series with exact d and exact HPs must converge to
        // the power-method scores: the two oracles agree.
        let g = two_cliques_bridge(3);
        let s = exact_simrank(&g, C, 80);
        let d = exact_dk(&g, C, &s);
        for i in 0..g.num_nodes() {
            for j in 0..g.num_nodes() {
                let series = simrank_from_hp_series(
                    &g,
                    C,
                    &d,
                    60,
                    NodeId::from_index(i),
                    NodeId::from_index(j),
                );
                assert!(
                    (series - s[i][j]).abs() < 1e-9,
                    "series {series} vs power {} at ({i},{j})",
                    s[i][j]
                );
            }
        }
    }
}
