//! §5.4 — out-of-core index construction and disk-resident querying.
//!
//! Construction: Algorithm 2's triples are streamed through the
//! [`ExternalSorter`] with a
//! caller-bounded memory buffer, then the globally sorted stream is
//! assembled directly into the packed arena — at no point does the
//! unsorted triple set reside in memory. Only the `O(n)` correction
//! factors and the final arena are memory-resident, mirroring the paper's
//! description (Figure 10 sweeps the buffer size).
//!
//! Querying: [`DiskHpStore`] keeps the HP entries in a file and only the
//! `O(n)` offsets, correction factors, and reduction bitmap in memory.
//! A single-pair query reads the two `O(1/ε)`-sized entry runs with
//! positioned reads — the constant-IO regime described in §5.4.

use std::fs::File;
use std::io;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use bytes::Buf;
use sling_graph::{DiGraph, NodeId};

use crate::codec::block::DecodedBlock;
use crate::codec::CompressOptions;
use crate::config::SlingConfig;
use crate::correction::estimate_dk;
use crate::enhance::MarkArena;
use crate::error::SlingError;
use crate::external_sort::ExternalSorter;
use crate::format::PayloadGeometry;
use crate::hp::{HpArena, HpEntry};
use crate::index::{BuildStats, SlingIndex};
use crate::local_update::reverse_hp_all;
use crate::obs::{self, KernelCounters};
use crate::store::{
    decode_block_validated, push_block_range, BlockScratchCache, HpStore, QueryEngine,
};
use crate::walk::{task_rng, WalkEngine};

/// Options for the out-of-core builder.
#[derive(Clone, Debug)]
pub struct OutOfCoreConfig {
    /// Memory budget for the triple sort buffer, in bytes.
    pub buffer_bytes: usize,
    /// Directory for temporary run files.
    pub temp_dir: PathBuf,
}

impl OutOfCoreConfig {
    /// Budget of `buffer_bytes` with run files under the system temp dir.
    pub fn with_buffer(buffer_bytes: usize) -> Self {
        OutOfCoreConfig {
            buffer_bytes,
            temp_dir: std::env::temp_dir().join(format!("sling-ooc-{}", std::process::id())),
        }
    }
}

/// Build a [`SlingIndex`] with the external-sort pipeline. Produces an
/// index identical to [`SlingIndex::build`] for the same config/seed.
pub fn build_out_of_core(
    graph: &DiGraph,
    config: &SlingConfig,
    occ: &OutOfCoreConfig,
) -> Result<SlingIndex, SlingError> {
    config.validate()?;
    let n = graph.num_nodes();
    let engine = WalkEngine::new(graph, config.c);
    let delta_d = config.delta_d(n);

    let mut dk_samples = 0u64;
    let mut d = Vec::with_capacity(n);
    for k in graph.nodes() {
        let mut rng = task_rng(config.seed, k.0 as u64);
        let est = estimate_dk(
            graph,
            &engine,
            &mut rng,
            k,
            config.c,
            config.eps_d,
            delta_d,
            config.adaptive_dk,
        );
        dk_samples += est.samples;
        d.push(est.d);
    }

    let mut sorter = ExternalSorter::new(&occ.temp_dir, occ.buffer_bytes)?;
    let mut push_err: Option<io::Error> = None;
    reverse_hp_all(graph, config.sqrt_c(), config.theta, &mut |t| {
        if push_err.is_none() {
            if let Err(e) = sorter.push(t) {
                push_err = Some(e);
            }
        }
    });
    if let Some(e) = push_err {
        return Err(e.into());
    }

    // §5.2 reduction decisions (same rule as the in-memory assembler).
    let eta_budget = config.gamma / config.theta;
    let mut reduced = vec![false; n];
    let mut reduced_nodes = 0usize;
    if config.space_reduction {
        for v in graph.nodes() {
            if (graph.two_hop_in_cost(v) as f64) <= eta_budget {
                reduced[v.index()] = true;
                reduced_nodes += 1;
            }
        }
    }

    // Stream the sorted triples straight into the arena.
    let mut entries_before = 0usize;
    let mut stream_err: Option<io::Error> = None;
    let hp = {
        let reduced = &reduced;
        let iter = sorter
            .into_sorted_iter()?
            .filter_map(|r| match r {
                Ok(t) => Some(t),
                Err(e) => {
                    stream_err = Some(e);
                    None
                }
            })
            .inspect(|_| entries_before += 1)
            .filter(|t| !(reduced[t.owner.index()] && (t.step == 1 || t.step == 2)))
            .map(|t| (t.owner.0, HpEntry::new(t.step, t.target, t.value)));
        HpArena::from_sorted_entries(n, iter)
    };
    if let Some(e) = stream_err {
        return Err(e.into());
    }
    std::fs::remove_dir_all(&occ.temp_dir).ok();

    let marks = if config.enhance_accuracy {
        MarkArena::compute(graph, config, &hp)
    } else {
        MarkArena::empty(n)
    };
    let stats = BuildStats {
        dk_samples,
        entries_before_reduction: entries_before,
        entries_stored: hp.total_entries(),
        reduced_nodes,
        marked_entries: marks.total_marks(),
    };
    Ok(SlingIndex {
        config: config.clone(),
        num_nodes: n,
        num_edges: graph.num_edges(),
        d,
        hp,
        reduced,
        marks,
        stats,
    })
}

/// Disk-resident HP store over a persisted index file — either the raw
/// `SLNGIDX1` layout or the block-compressed `SLNGIDX2` one: the entry
/// payload stays on disk; only the `O(n)` offsets, correction factors,
/// reduction bitmap, and §5.3 marks are memory-resident.
///
/// Implements [`HpStore`], so the whole generic query surface
/// (Algorithms 3 and 6, top-k, joins, batches) runs against it through
/// [`DiskHpStore::query_engine`] — for a v1 file each entry-list read
/// costs three positioned reads (one per payload section); for a v2 file
/// it costs one positioned read per covering block, decoded through a
/// small scratch cache, the same constant-IO regime described in §5.4.
/// Front it with [`crate::disk_query::BufferedDiskStore`] to amortize
/// repeated reads of whole entry lists.
pub struct DiskHpStore {
    file: File,
    offsets: Vec<u64>,
    pub(crate) d: Vec<f64>,
    pub(crate) reduced: Vec<bool>,
    pub(crate) config: SlingConfig,
    pub(crate) marks: MarkArena,
    stats: BuildStats,
    num_nodes: usize,
    num_edges: usize,
    entries: usize,
    payload: DiskPayload,
}

/// Where the on-disk entry payload lives and how to read it.
enum DiskPayload {
    /// `SLNGIDX1`: three raw fixed-width sections, addressed per entry.
    Raw {
        steps_base: u64,
        nodes_base: u64,
        values_base: u64,
    },
    /// `SLNGIDX2`/`SLNGIDX3`: a resident block directory; whole blocks
    /// are read with one `pread` each, decoded, and kept in a scratch
    /// cache. `global_dict` is the resident v3 value dictionary (`None`
    /// for v2).
    Blocked {
        block_entries: usize,
        blocks_base: u64,
        block_offsets: Vec<u64>,
        global_dict: Option<Vec<f64>>,
        cache: BlockScratchCache,
    },
}

impl DiskHpStore {
    /// Persist `index` to `path` (standard `SLNGIDX1` format) and return
    /// a store reading from it.
    pub fn create(index: &SlingIndex, path: impl AsRef<Path>) -> Result<Self, SlingError> {
        let path = path.as_ref();
        index.save(path)?;
        Self::open_file(path)
    }

    /// Persist `index` to `path` in the block-compressed `SLNGIDX2`
    /// format and return a store reading v2 blocks from it. With default
    /// (lossless) options queries answer bit-identically to
    /// [`DiskHpStore::create`].
    pub fn create_compressed(
        index: &SlingIndex,
        path: impl AsRef<Path>,
        opts: &CompressOptions,
    ) -> Result<Self, SlingError> {
        let path = path.as_ref();
        index.save_v2(path, opts)?;
        Self::open_file(path)
    }

    /// Persist `index` to `path` in the `SLNGIDX3` format (cross-block
    /// value dictionary, varint block directory) and return a store
    /// reading v3 blocks from it. With default (lossless) options
    /// queries answer bit-identically to [`DiskHpStore::create`].
    pub fn create_compressed_v3(
        index: &SlingIndex,
        path: impl AsRef<Path>,
        opts: &CompressOptions,
    ) -> Result<Self, SlingError> {
        let path = path.as_ref();
        index.save_v3(path, opts)?;
        Self::open_file(path)
    }

    /// Open a persisted index file as a disk store, verifying its
    /// `(n, m)` fingerprint against `graph`. Decodes the `O(n)` metadata
    /// only — never the entry payload.
    pub fn open(graph: &DiGraph, path: impl AsRef<Path>) -> Result<Self, SlingError> {
        let store = Self::open_file(path)?;
        if store.num_nodes != graph.num_nodes() || store.num_edges != graph.num_edges() {
            return Err(SlingError::GraphMismatch {
                expected_nodes: store.num_nodes,
                found_nodes: graph.num_nodes(),
            });
        }
        Ok(store)
    }

    fn open_file(path: impl AsRef<Path>) -> Result<Self, SlingError> {
        let file = File::open(path.as_ref())?;
        // Parse the metadata prefix through a short-lived mapping; the
        // store itself keeps only the plain file handle for positioned
        // reads.
        let meta = {
            // SAFETY: mapping dropped before this function returns; reads
            // during decode are bound-checked against the mapped length.
            let map = unsafe { memmap2::Mmap::map(&file) }?;
            crate::format::decode_meta(&map)?
        };
        let payload = match meta.payload {
            PayloadGeometry::Raw {
                steps_base,
                nodes_base,
                values_base,
            } => DiskPayload::Raw {
                steps_base: steps_base as u64,
                nodes_base: nodes_base as u64,
                values_base: values_base as u64,
            },
            PayloadGeometry::Blocked(geo) => DiskPayload::Blocked {
                block_entries: geo.block_entries,
                blocks_base: geo.blocks_base as u64,
                block_offsets: geo.block_offsets,
                global_dict: geo.global_dict,
                cache: BlockScratchCache::new(),
            },
        };
        Ok(DiskHpStore {
            file,
            offsets: meta.hp_offsets,
            d: meta.d,
            reduced: meta.reduced,
            config: meta.config,
            marks: meta.marks,
            stats: meta.stats,
            num_nodes: meta.num_nodes,
            num_edges: meta.num_edges,
            entries: meta.entries,
            payload,
        })
    }

    /// Number of nodes covered.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Build statistics recorded in the index file.
    pub fn stats(&self) -> BuildStats {
        self.stats
    }

    /// Memory-resident bytes (excludes the entry file) — the quantity the
    /// out-of-core mode is designed to bound.
    pub fn resident_bytes(&self) -> usize {
        let payload = match &self.payload {
            DiskPayload::Raw { .. } => 0,
            DiskPayload::Blocked {
                block_entries,
                block_offsets,
                global_dict,
                cache,
                ..
            } => {
                block_offsets.len() * 8
                    + global_dict.as_ref().map_or(0, |d| d.len() * 8)
                    + cache.resident_bytes(*block_entries)
            }
        };
        self.offsets.len() * 8
            + self.d.len() * 8
            + self.reduced.len()
            + self.marks.resident_bytes()
            + payload
    }

    /// Query engine over this store (single-pair, single-source, top-k,
    /// joins, batches), sharing the store's metadata by reference.
    pub fn query_engine(&self) -> QueryEngine<'_, &DiskHpStore> {
        QueryEngine::from_parts(
            self,
            std::borrow::Cow::Borrowed(&self.config),
            std::borrow::Cow::Borrowed(&self.d),
            std::borrow::Cow::Borrowed(&self.reduced),
            std::borrow::Cow::Borrowed(&self.marks),
            self.stats,
        )
    }

    /// Consume the store into an owned, `Arc`-shareable engine (see
    /// [`crate::store::SharedEngine`]); positioned reads (`pread`) keep
    /// `&self` queries thread-safe. The query-side metadata is cloned out
    /// of the store — `O(n)`, the same residency class as the store
    /// itself.
    pub fn into_shared_engine(self) -> crate::store::SharedEngine<DiskHpStore> {
        let (config, d, reduced, marks, stats) = (
            self.config.clone(),
            self.d.clone(),
            self.reduced.clone(),
            self.marks.clone(),
            self.stats,
        );
        crate::store::SharedEngine::from_owned_parts(self, config, d, reduced, marks, stats)
    }

    /// Read, decode, validate, and cache block `b` of a v2 payload.
    fn read_block(&self, b: usize) -> Result<Arc<DecodedBlock>, SlingError> {
        let DiskPayload::Blocked {
            block_entries,
            blocks_base,
            block_offsets,
            global_dict,
            cache,
        } = &self.payload
        else {
            unreachable!("read_block called on a raw payload");
        };
        let num_blocks = block_offsets.len() - 1;
        cache.get_or_decode(b, || {
            let (lo, hi) = (block_offsets[b], block_offsets[b + 1]);
            let mut raw = vec![0u8; (hi - lo) as usize];
            let fault = crate::faults::check_io(crate::faults::point::DISK_READ)?;
            self.file.read_exact_at(&mut raw, blocks_base + lo)?;
            if fault == Some(crate::faults::FaultAction::Corrupt) {
                crate::faults::corrupt_buffer(&mut raw);
            }
            decode_block_validated(
                &raw,
                b,
                num_blocks,
                *block_entries,
                self.entries,
                self.num_nodes,
                global_dict.as_deref(),
            )
        })
    }

    /// Decode one bound-checked entry: three positioned reads (v1) or
    /// one cached block decode (v2).
    fn read_entry_at(&self, i: usize) -> Result<HpEntry, SlingError> {
        if i >= self.entries {
            return Err(SlingError::CorruptIndex(format!(
                "disk entry index {i} past the {} stored entries",
                self.entries
            )));
        }
        let (steps_base, nodes_base, values_base) = match &self.payload {
            DiskPayload::Blocked { block_entries, .. } => {
                let b = i / block_entries;
                let block = self.read_block(b)?;
                let j = i - b * block_entries;
                return Ok(HpEntry::new(
                    block.steps[j],
                    NodeId(block.nodes[j]),
                    block.values[j],
                ));
            }
            DiskPayload::Raw {
                steps_base,
                nodes_base,
                values_base,
            } => (*steps_base, *nodes_base, *values_base),
        };
        KernelCounters::bump_by(&obs::KERNEL.backend_bytes_read, 14);
        let fault = crate::faults::check_io(crate::faults::point::DISK_READ)?;
        let mut step_raw = [0u8; 2];
        self.file
            .read_exact_at(&mut step_raw, steps_base + i as u64 * 2)?;
        let mut node_raw = [0u8; 4];
        self.file
            .read_exact_at(&mut node_raw, nodes_base + i as u64 * 4)?;
        let mut value_raw = [0u8; 8];
        self.file
            .read_exact_at(&mut value_raw, values_base + i as u64 * 8)?;
        if fault == Some(crate::faults::FaultAction::Corrupt) {
            crate::faults::corrupt_buffer(&mut value_raw);
        }
        let node = u32::from_le_bytes(node_raw);
        if node as usize >= self.num_nodes {
            return Err(SlingError::CorruptIndex(format!(
                "disk entry {i} references node {node} past n = {}",
                self.num_nodes
            )));
        }
        let value = f64::from_bits(u64::from_le_bytes(value_raw));
        crate::store::check_value(i, value)?;
        Ok(HpEntry::new(
            u16::from_le_bytes(step_raw),
            NodeId(node),
            value,
        ))
    }

    /// Read `H(v)`: three positioned section reads (v1), or one
    /// positioned read per covering block (v2).
    pub(crate) fn read_entries(&self, v: NodeId, out: &mut Vec<HpEntry>) -> Result<(), SlingError> {
        out.clear();
        let i = v.index();
        let (lo, hi) = (self.offsets[i] as usize, self.offsets[i + 1] as usize);
        let count = hi - lo;
        if count == 0 {
            return Ok(());
        }
        let (steps_base, nodes_base, values_base) = match &self.payload {
            DiskPayload::Blocked { block_entries, .. } => {
                let be = *block_entries;
                out.reserve(count);
                for b in lo / be..=(hi - 1) / be {
                    let block = self.read_block(b)?;
                    push_block_range(&block, b, be, &(lo..hi), out);
                }
                return Ok(());
            }
            DiskPayload::Raw {
                steps_base,
                nodes_base,
                values_base,
            } => (*steps_base, *nodes_base, *values_base),
        };
        KernelCounters::bump_by(&obs::KERNEL.backend_bytes_read, count as u64 * 14);
        let fault = crate::faults::check_io(crate::faults::point::DISK_READ)?;
        let mut steps_raw = vec![0u8; count * 2];
        self.file
            .read_exact_at(&mut steps_raw, steps_base + lo as u64 * 2)?;
        let mut nodes_raw = vec![0u8; count * 4];
        self.file
            .read_exact_at(&mut nodes_raw, nodes_base + lo as u64 * 4)?;
        let mut values_raw = vec![0u8; count * 8];
        self.file
            .read_exact_at(&mut values_raw, values_base + lo as u64 * 8)?;
        if fault == Some(crate::faults::FaultAction::Corrupt) {
            crate::faults::corrupt_buffer(&mut values_raw);
        }
        let (mut s, mut nn, mut vv) = (
            steps_raw.as_slice(),
            nodes_raw.as_slice(),
            values_raw.as_slice(),
        );
        for j in 0..count {
            let step = s.get_u16_le();
            let node = nn.get_u32_le();
            let value = vv.get_f64_le();
            if node as usize >= self.num_nodes {
                return Err(SlingError::CorruptIndex(format!(
                    "disk entry {} references node {node} past n = {}",
                    lo + j,
                    self.num_nodes
                )));
            }
            crate::store::check_value(lo + j, value)?;
            out.push(HpEntry::new(step, NodeId(node), value));
        }
        Ok(())
    }

    /// Single-pair query against the disk-resident entries (Algorithm 3
    /// through the generic engine).
    pub fn single_pair(&self, graph: &DiGraph, u: NodeId, v: NodeId) -> Result<f64, SlingError> {
        self.query_engine().single_pair(graph, u, v)
    }

    /// `posix_fadvise(WILLNEED)` the byte ranges holding `H(v)` — the
    /// three section ranges of a v1 payload, or the encoded bytes of the
    /// covering v2 blocks — so a cold query's positioned reads hit
    /// staged pages instead of paying one synchronous disk round-trip
    /// per `pread`. Advisory only: failures and out-of-range ids are
    /// ignored, and correctness never depends on it (a no-op off Linux).
    pub fn prefetch_entries(&self, v: NodeId) {
        if v.index() >= self.num_nodes {
            return;
        }
        let (lo, hi) = (
            self.offsets[v.index()] as usize,
            self.offsets[v.index() + 1] as usize,
        );
        if lo >= hi || hi > self.entries {
            return;
        }
        let count = (hi - lo) as u64;
        match &self.payload {
            DiskPayload::Raw {
                steps_base,
                nodes_base,
                values_base,
            } => {
                for (base, width) in [(*steps_base, 2u64), (*nodes_base, 4), (*values_base, 8)] {
                    fadvise_willneed(&self.file, base + lo as u64 * width, count * width);
                }
            }
            DiskPayload::Blocked {
                block_entries,
                blocks_base,
                block_offsets,
                ..
            } => {
                let (b0, b1) = (lo / block_entries, (hi - 1) / block_entries);
                if b1 + 1 >= block_offsets.len() {
                    return;
                }
                let (start, end) = (block_offsets[b0], block_offsets[b1 + 1]);
                fadvise_willneed(&self.file, blocks_base + start, end - start);
            }
        }
    }
}

/// Advisory readahead hint for a positioned-read file range (the
/// `pread` analogue of the mmap backends' `madvise(WILLNEED)`). Errors
/// are deliberately dropped — the hint is best-effort.
#[cfg(target_os = "linux")]
fn fadvise_willneed(file: &File, offset: u64, len: u64) {
    use std::os::unix::io::AsRawFd;
    const POSIX_FADV_WILLNEED: i32 = 3;
    extern "C" {
        fn posix_fadvise(fd: i32, offset: i64, len: i64, advice: i32) -> i32;
    }
    if len == 0 || offset > i64::MAX as u64 || len > i64::MAX as u64 {
        return;
    }
    // SAFETY: plain syscall on a live fd; advisory, no memory is touched.
    let _ = unsafe {
        posix_fadvise(
            file.as_raw_fd(),
            offset as i64,
            len as i64,
            POSIX_FADV_WILLNEED,
        )
    };
}

#[cfg(not(target_os = "linux"))]
fn fadvise_willneed(_file: &File, _offset: u64, _len: u64) {}

impl HpStore for DiskHpStore {
    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn total_entries(&self) -> usize {
        self.entries
    }

    fn range(&self, v: NodeId) -> std::ops::Range<usize> {
        let i = v.index();
        self.offsets[i] as usize..self.offsets[i + 1] as usize
    }

    fn entries_into(&self, v: NodeId, out: &mut Vec<HpEntry>) -> Result<(), SlingError> {
        self.read_entries(v, out)
    }

    fn entry_at(&self, i: usize) -> Result<HpEntry, SlingError> {
        self.read_entry_at(i)
    }

    // contains_key: trait default (binary search through entry_at).

    fn resident_bytes(&self) -> usize {
        DiskHpStore::resident_bytes(self)
    }

    fn prefetch(&self, v: NodeId) {
        self.prefetch_entries(v);
    }

    /// v2 runs covered by one block are served as a refcounted sub-range
    /// of the cached decoded block (one `pread` on a cold block, zero
    /// copies on a warm one). v1 payloads and straddling runs
    /// materialize into `scratch` via positioned reads, as before.
    fn entries_ref<'s>(
        &'s self,
        v: NodeId,
        scratch: &'s mut Vec<HpEntry>,
    ) -> Result<crate::store::EntryAccess<'s>, SlingError> {
        use crate::store::{checked_range, EntryAccess};
        if let DiskPayload::Blocked { block_entries, .. } = &self.payload {
            let range = checked_range(self, v)?;
            if range.is_empty() {
                return Ok(EntryAccess::Slice(&[]));
            }
            let be = *block_entries;
            let (b0, b1) = (range.start / be, (range.end - 1) / be);
            if b0 == b1 {
                let block = self.read_block(b0)?;
                let (lo, hi) = (range.start - b0 * be, range.end - b0 * be);
                if hi <= block.steps.len() {
                    return Ok(EntryAccess::Block { block, lo, hi });
                }
            }
        }
        self.read_entries(v, scratch)?;
        Ok(EntryAccess::Slice(scratch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sling_graph::generators::{barabasi_albert, two_cliques_bridge};

    fn cfg() -> SlingConfig {
        SlingConfig::from_epsilon(0.6, 0.1).with_seed(11)
    }

    fn tmp(tag: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!("sling_ooc_test_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&p).unwrap();
        p
    }

    #[test]
    fn out_of_core_build_matches_in_memory_build() {
        let g = barabasi_albert(200, 3, 5).unwrap();
        let config = cfg();
        let mem = SlingIndex::build(&g, &config).unwrap();
        // Tiny buffer forces many runs; result must still be identical.
        let occ = OutOfCoreConfig {
            buffer_bytes: 4 * 1024,
            temp_dir: tmp("small_buf"),
        };
        let disk = build_out_of_core(&g, &config, &occ).unwrap();
        assert_eq!(mem.d, disk.d);
        assert_eq!(mem.hp, disk.hp);
        assert_eq!(mem.reduced, disk.reduced);
        assert_eq!(
            mem.stats().entries_before_reduction,
            disk.stats().entries_before_reduction
        );
    }

    #[test]
    fn large_buffer_single_run_also_matches() {
        let g = two_cliques_bridge(5);
        let config = cfg();
        let mem = SlingIndex::build(&g, &config).unwrap();
        let occ = OutOfCoreConfig {
            buffer_bytes: 64 << 20,
            temp_dir: tmp("big_buf"),
        };
        let disk = build_out_of_core(&g, &config, &occ).unwrap();
        assert_eq!(mem.hp, disk.hp);
    }

    #[test]
    fn disk_store_answers_like_the_index() {
        let g = barabasi_albert(150, 2, 9).unwrap();
        let config = cfg();
        let idx = SlingIndex::build(&g, &config).unwrap();
        let dir = tmp("store");
        let store = DiskHpStore::create(&idx, dir.join("hp.bin")).unwrap();
        for (u, v) in [(0u32, 1u32), (3, 77), (149, 10), (5, 5)] {
            let a = idx.single_pair(&g, NodeId(u), NodeId(v));
            let b = store.single_pair(&g, NodeId(u), NodeId(v)).unwrap();
            assert!((a - b).abs() < 1e-12, "({u},{v}): memory {a} vs disk {b}");
        }
        assert!(store.resident_bytes() < idx.resident_bytes());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn compressed_disk_store_is_bit_identical_to_raw() {
        let g = barabasi_albert(150, 2, 9).unwrap();
        let config = cfg();
        let idx = SlingIndex::build(&g, &config).unwrap();
        let dir = tmp("store_v2");
        let raw = DiskHpStore::create(&idx, dir.join("v1.bin")).unwrap();
        // Small blocks so entry lists straddle block boundaries.
        let opts = CompressOptions {
            block_entries: 32,
            quantize_values: false,
        };
        let v2 = DiskHpStore::create_compressed(&idx, dir.join("v2.bin"), &opts).unwrap();
        assert!(
            std::fs::metadata(dir.join("v2.bin")).unwrap().len()
                < std::fs::metadata(dir.join("v1.bin")).unwrap().len()
        );
        let mut a = Vec::new();
        let mut b = Vec::new();
        for v in g.nodes() {
            raw.read_entries(v, &mut a).unwrap();
            v2.read_entries(v, &mut b).unwrap();
            assert_eq!(a, b, "H({v:?}) differs between raw and blocked disk");
        }
        for i in (0..raw.total_entries()).step_by(11) {
            assert_eq!(raw.entry_at(i).unwrap(), v2.entry_at(i).unwrap());
        }
        for (u, w) in [(0u32, 1u32), (3, 77), (149, 10), (5, 5)] {
            assert_eq!(
                raw.single_pair(&g, NodeId(u), NodeId(w)).unwrap(),
                v2.single_pair(&g, NodeId(u), NodeId(w)).unwrap(),
                "({u},{w})"
            );
        }
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn compressed_disk_store_surfaces_truncation() {
        let g = barabasi_albert(120, 3, 2).unwrap();
        let idx = SlingIndex::build(&g, &cfg()).unwrap();
        let dir = tmp("trunc_v2");
        let path = dir.join("v2.bin");
        let store =
            DiskHpStore::create_compressed(&idx, &path, &CompressOptions::default()).unwrap();
        // Chop the payload behind the store's back.
        let len = std::fs::metadata(&path).unwrap().len();
        let file = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(len - len / 8).unwrap();
        let mut failed = false;
        for v in g.nodes() {
            if store.single_pair(&g, v, NodeId(0)).is_err() {
                failed = true;
            }
        }
        assert!(failed, "no query noticed the truncated v2 payload");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn disk_store_checks_node_range() {
        let g = two_cliques_bridge(3);
        let idx = SlingIndex::build(&g, &cfg()).unwrap();
        let dir = tmp("range");
        let store = DiskHpStore::create(&idx, dir.join("hp.bin")).unwrap();
        assert!(store.single_pair(&g, NodeId(0), NodeId(100)).is_err());
        std::fs::remove_dir_all(dir).ok();
    }
}
