//! §5.4 — out-of-core index construction and disk-resident querying.
//!
//! Construction: Algorithm 2's triples are streamed through the
//! [`ExternalSorter`] with a
//! caller-bounded memory buffer, then the globally sorted stream is
//! assembled directly into the packed arena — at no point does the
//! unsorted triple set reside in memory. Only the `O(n)` correction
//! factors and the final arena are memory-resident, mirroring the paper's
//! description (Figure 10 sweeps the buffer size).
//!
//! Querying: [`DiskHpStore`] keeps the HP entries in a file and only the
//! `O(n)` offsets, correction factors, and reduction bitmap in memory.
//! A single-pair query reads the two `O(1/ε)`-sized entry runs with
//! positioned reads — the constant-IO regime described in §5.4.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};

use bytes::{Buf, BufMut};
use sling_graph::{DiGraph, NodeId};

use crate::config::SlingConfig;
use crate::correction::estimate_dk;
use crate::enhance::MarkArena;
use crate::error::SlingError;
use crate::external_sort::ExternalSorter;
use crate::hp::{HpArena, HpEntry};
use crate::index::{BuildStats, SlingIndex};
use crate::local_update::reverse_hp_all;
use crate::single_pair::merge_intersect;
use crate::two_hop::{two_hop_into, TwoHopScratch};
use crate::walk::{task_rng, WalkEngine};

/// Options for the out-of-core builder.
#[derive(Clone, Debug)]
pub struct OutOfCoreConfig {
    /// Memory budget for the triple sort buffer, in bytes.
    pub buffer_bytes: usize,
    /// Directory for temporary run files.
    pub temp_dir: PathBuf,
}

impl OutOfCoreConfig {
    /// Budget of `buffer_bytes` with run files under the system temp dir.
    pub fn with_buffer(buffer_bytes: usize) -> Self {
        OutOfCoreConfig {
            buffer_bytes,
            temp_dir: std::env::temp_dir().join(format!("sling-ooc-{}", std::process::id())),
        }
    }
}

/// Build a [`SlingIndex`] with the external-sort pipeline. Produces an
/// index identical to [`SlingIndex::build`] for the same config/seed.
pub fn build_out_of_core(
    graph: &DiGraph,
    config: &SlingConfig,
    occ: &OutOfCoreConfig,
) -> Result<SlingIndex, SlingError> {
    config.validate()?;
    let n = graph.num_nodes();
    let engine = WalkEngine::new(graph, config.c);
    let delta_d = config.delta_d(n);

    let mut dk_samples = 0u64;
    let mut d = Vec::with_capacity(n);
    for k in graph.nodes() {
        let mut rng = task_rng(config.seed, k.0 as u64);
        let est = estimate_dk(
            graph,
            &engine,
            &mut rng,
            k,
            config.c,
            config.eps_d,
            delta_d,
            config.adaptive_dk,
        );
        dk_samples += est.samples;
        d.push(est.d);
    }

    let mut sorter = ExternalSorter::new(&occ.temp_dir, occ.buffer_bytes)?;
    let mut push_err: Option<io::Error> = None;
    reverse_hp_all(graph, config.sqrt_c(), config.theta, &mut |t| {
        if push_err.is_none() {
            if let Err(e) = sorter.push(t) {
                push_err = Some(e);
            }
        }
    });
    if let Some(e) = push_err {
        return Err(e.into());
    }

    // §5.2 reduction decisions (same rule as the in-memory assembler).
    let eta_budget = config.gamma / config.theta;
    let mut reduced = vec![false; n];
    let mut reduced_nodes = 0usize;
    if config.space_reduction {
        for v in graph.nodes() {
            if (graph.two_hop_in_cost(v) as f64) <= eta_budget {
                reduced[v.index()] = true;
                reduced_nodes += 1;
            }
        }
    }

    // Stream the sorted triples straight into the arena.
    let mut entries_before = 0usize;
    let mut stream_err: Option<io::Error> = None;
    let hp = {
        let reduced = &reduced;
        let iter = sorter
            .into_sorted_iter()?
            .filter_map(|r| match r {
                Ok(t) => Some(t),
                Err(e) => {
                    stream_err = Some(e);
                    None
                }
            })
            .inspect(|_| entries_before += 1)
            .filter(|t| !(reduced[t.owner.index()] && (t.step == 1 || t.step == 2)))
            .map(|t| (t.owner.0, HpEntry::new(t.step, t.target, t.value)));
        HpArena::from_sorted_entries(n, iter)
    };
    if let Some(e) = stream_err {
        return Err(e.into());
    }
    std::fs::remove_dir_all(&occ.temp_dir).ok();

    let marks = if config.enhance_accuracy {
        MarkArena::compute(graph, config, &hp)
    } else {
        MarkArena::empty(n)
    };
    let stats = BuildStats {
        dk_samples,
        entries_before_reduction: entries_before,
        entries_stored: hp.total_entries(),
        reduced_nodes,
        marked_entries: marks.total_marks(),
    };
    Ok(SlingIndex {
        config: config.clone(),
        num_nodes: n,
        num_edges: graph.num_edges(),
        d,
        hp,
        reduced,
        marks,
        stats,
    })
}

const ENTRY_BYTES: usize = 14; // step u16 + node u32 + value f64

/// Disk-resident HP store: entries live in a file; offsets, correction
/// factors, and the reduction bitmap stay in memory (`O(n)` total).
///
/// Supports single-pair queries with two positioned reads. Enhancement
/// marks are not persisted here — the store answers with the same
/// guarantees as a non-enhanced index.
pub struct DiskHpStore {
    file: File,
    offsets: Vec<u64>,
    pub(crate) d: Vec<f64>,
    reduced: Vec<bool>,
    pub(crate) config: SlingConfig,
    num_nodes: usize,
}

impl DiskHpStore {
    /// Write the entries of `index` to `path` and return a store reading
    /// from it.
    pub fn create(index: &SlingIndex, path: impl AsRef<Path>) -> Result<Self, SlingError> {
        let path = path.as_ref();
        {
            let mut w = BufWriter::new(File::create(path)?);
            let mut buf = Vec::with_capacity(1 << 16);
            for v in 0..index.num_nodes {
                for e in index.stored_entries(NodeId::from_index(v)) {
                    buf.put_u16_le(e.step);
                    buf.put_u32_le(e.node.0);
                    buf.put_f64_le(e.value);
                    if buf.len() >= (1 << 16) {
                        w.write_all(&buf)?;
                        buf.clear();
                    }
                }
            }
            w.write_all(&buf)?;
            w.flush()?;
        }
        Ok(DiskHpStore {
            file: File::open(path)?,
            offsets: index.hp.offsets.clone(),
            d: index.d.clone(),
            reduced: index.reduced.clone(),
            config: index.config.clone(),
            num_nodes: index.num_nodes,
        })
    }

    /// Number of nodes covered.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Memory-resident bytes (excludes the entry file) — the quantity the
    /// out-of-core mode is designed to bound.
    pub fn resident_bytes(&self) -> usize {
        self.offsets.len() * 8 + self.d.len() * 8 + self.reduced.len()
    }

    pub(crate) fn read_entries(&self, v: NodeId, out: &mut Vec<HpEntry>) -> Result<(), SlingError> {
        out.clear();
        let i = v.index();
        let (lo, hi) = (self.offsets[i], self.offsets[i + 1]);
        let count = (hi - lo) as usize;
        if count == 0 {
            return Ok(());
        }
        let mut raw = vec![0u8; count * ENTRY_BYTES];
        self.file.read_exact_at(&mut raw, lo * ENTRY_BYTES as u64)?;
        let mut slice = raw.as_slice();
        for _ in 0..count {
            let step = slice.get_u16_le();
            let node = NodeId(slice.get_u32_le());
            let value = slice.get_f64_le();
            out.push(HpEntry::new(step, node, value));
        }
        Ok(())
    }

    pub(crate) fn effective(
        &self,
        graph: &DiGraph,
        v: NodeId,
        scratch: &mut TwoHopScratch,
        out: &mut Vec<HpEntry>,
    ) -> Result<(), SlingError> {
        self.read_entries(v, out)?;
        if self.reduced[v.index()] {
            // Splice exact steps 1-2 between step 0 and steps >= 3.
            let split = out.iter().position(|e| e.step > 0).unwrap_or(out.len());
            let tail = out.split_off(split);
            two_hop_into(graph, self.config.sqrt_c(), v, scratch, out);
            out.extend(tail);
        }
        Ok(())
    }

    /// Single-pair query against the disk-resident entries: two
    /// positioned reads plus the usual merge-intersection.
    pub fn single_pair(
        &self,
        graph: &DiGraph,
        u: NodeId,
        v: NodeId,
    ) -> Result<f64, SlingError> {
        let n = self.num_nodes as u32;
        for node in [u, v] {
            if node.0 >= n {
                return Err(SlingError::NodeOutOfRange { node: node.0, n });
            }
        }
        if u == v && self.config.exact_diagonal {
            return Ok(1.0);
        }
        let mut scratch = TwoHopScratch::default();
        let mut a = Vec::new();
        let mut b = Vec::new();
        self.effective(graph, u, &mut scratch, &mut a)?;
        self.effective(graph, v, &mut scratch, &mut b)?;
        Ok(merge_intersect(&a, &b, &self.d).clamp(0.0, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sling_graph::generators::{barabasi_albert, two_cliques_bridge};

    fn cfg() -> SlingConfig {
        SlingConfig::from_epsilon(0.6, 0.1).with_seed(11)
    }

    fn tmp(tag: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!("sling_ooc_test_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&p).unwrap();
        p
    }

    #[test]
    fn out_of_core_build_matches_in_memory_build() {
        let g = barabasi_albert(200, 3, 5).unwrap();
        let config = cfg();
        let mem = SlingIndex::build(&g, &config).unwrap();
        // Tiny buffer forces many runs; result must still be identical.
        let occ = OutOfCoreConfig {
            buffer_bytes: 4 * 1024,
            temp_dir: tmp("small_buf"),
        };
        let disk = build_out_of_core(&g, &config, &occ).unwrap();
        assert_eq!(mem.d, disk.d);
        assert_eq!(mem.hp, disk.hp);
        assert_eq!(mem.reduced, disk.reduced);
        assert_eq!(
            mem.stats().entries_before_reduction,
            disk.stats().entries_before_reduction
        );
    }

    #[test]
    fn large_buffer_single_run_also_matches() {
        let g = two_cliques_bridge(5);
        let config = cfg();
        let mem = SlingIndex::build(&g, &config).unwrap();
        let occ = OutOfCoreConfig {
            buffer_bytes: 64 << 20,
            temp_dir: tmp("big_buf"),
        };
        let disk = build_out_of_core(&g, &config, &occ).unwrap();
        assert_eq!(mem.hp, disk.hp);
    }

    #[test]
    fn disk_store_answers_like_the_index() {
        let g = barabasi_albert(150, 2, 9).unwrap();
        let config = cfg();
        let idx = SlingIndex::build(&g, &config).unwrap();
        let dir = tmp("store");
        let store = DiskHpStore::create(&idx, dir.join("hp.bin")).unwrap();
        for (u, v) in [(0u32, 1u32), (3, 77), (149, 10), (5, 5)] {
            let a = idx.single_pair(&g, NodeId(u), NodeId(v));
            let b = store.single_pair(&g, NodeId(u), NodeId(v)).unwrap();
            assert!(
                (a - b).abs() < 1e-12,
                "({u},{v}): memory {a} vs disk {b}"
            );
        }
        assert!(store.resident_bytes() < idx.resident_bytes());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn disk_store_checks_node_range() {
        let g = two_cliques_bridge(3);
        let idx = SlingIndex::build(&g, &cfg()).unwrap();
        let dir = tmp("range");
        let store = DiskHpStore::create(&idx, dir.join("hp.bin")).unwrap();
        assert!(store.single_pair(&g, NodeId(0), NodeId(100)).is_err());
        std::fs::remove_dir_all(dir).ok();
    }
}
