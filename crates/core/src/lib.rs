//! # sling-core
//!
//! The **SLING** index — *SimRank via Local updates and samplING* — from
//! Tian & Xiao, *SLING: A Near-Optimal Index Structure for SimRank*,
//! SIGMOD 2016.
//!
//! SLING answers single-pair SimRank queries in `O(1/ε)` time and
//! single-source queries in `O(n/ε)` (or the practically faster
//! `O(m log² 1/ε)` Algorithm 6), using `O(n/ε)` space, while guaranteeing
//! at most `ε` additive error in every score with probability `1 − δ`.
//!
//! ## The two index components
//!
//! The index rests on the paper's reformulation of SimRank (Lemma 4):
//!
//! ```text
//! s(vi, vj) = Σ_{ℓ≥0} Σ_k  h⁽ℓ⁾(vi, vk) · d_k · h⁽ℓ⁾(vj, vk)
//! ```
//!
//! where `h⁽ℓ⁾(v, k)` is the probability that a **√c-walk** from `v` is at
//! `k` in its ℓ-th step (a reverse random walk that halts with probability
//! `1 − √c` at each step), and `d_k` is the probability that two √c-walks
//! from `k` never meet again after step 0. Correspondingly, the index
//! stores:
//!
//! * `d̃_k` per node, estimated by the adaptive sampling of **Algorithm 4**
//!   ([`correction`], [`bernoulli`]), and
//! * a truncated set `H(v)` of hitting probabilities `> θ`, built
//!   deterministically by the **Algorithm 2** local updates
//!   ([`local_update`]).
//!
//! ## Quick start
//!
//! ```
//! use sling_graph::generators::two_cliques_bridge;
//! use sling_core::{SlingConfig, SlingIndex};
//!
//! let graph = two_cliques_bridge(8);
//! let config = SlingConfig::from_epsilon(0.6, 0.05).with_seed(7);
//! let index = SlingIndex::build(&graph, &config).unwrap();
//!
//! // Single-pair query (Algorithm 3) — O(1/ε).
//! let s = index.single_pair(&graph, 0u32.into(), 1u32.into());
//! assert!(s > 0.0 && s <= 1.0);
//!
//! // Single-source query (Algorithm 6).
//! let scores = index.single_source(&graph, 0u32.into());
//! assert_eq!(scores.len(), graph.num_nodes());
//! ```
//!
//! ## Optimizations from §5 of the paper
//!
//! * adaptive correction-factor estimation with an asymptotically optimal
//!   sample count (§5.1, [`bernoulli`]);
//! * space reduction: step-1/2 hitting probabilities dropped for nodes
//!   whose two-hop in-neighborhood is small and recomputed exactly at
//!   query time (§5.2, [`two_hop`]);
//! * accuracy enhancement via on-the-fly expansion of marked entries
//!   (§5.3, [`enhance`]);
//! * embarrassingly parallel construction (§5.4, [`parallel`]) and
//!   out-of-core construction with bounded memory (§5.4, [`out_of_core`]).
//!
//! ## Architecture: storage backends, engines, and serving
//!
//! The crate is layered like a small DBMS. At the bottom sits the
//! [`store::HpStore`] trait — the read interface to the packed per-node
//! hitting-probability sets — with four backends serving the *same*
//! persisted index with **identical scores**:
//!
//! | backend | residency | open cost | format |
//! |---|---|---|---|
//! | [`hp::HpArena`] | full decode in RAM | `O(n/ε)` decode | v1 + v2 + v3 |
//! | [`store::MmapHpArena`] | page cache, zero-copy | header + offsets only | v1 |
//! | [`store::CompressedMmapArena`] | page cache + decoded-block cache | header + offsets + directory | v2 + v3 |
//! | [`out_of_core::DiskHpStore`] (+ [`disk_query::BufferedDiskStore`] LRU pool) | `O(n)` metadata | header + offsets only | v1 + v2 + v3 |
//!
//! Persistence is versioned ([`format`]): `SLNGIDX1` stores the entry
//! payload as raw fixed-width sections (14 bytes/entry, decode-free);
//! `SLNGIDX2` stores it as independently decodable compressed blocks
//! (the [`codec`] subsystem — delta-varint node ids per `(owner, step)`
//! run, run-length-coded steps, dictionary or fixed-point values behind
//! the [`codec::value::SectionCodec`] trait). `SLNGIDX3` extends the
//! block format with cross-block value compression: a file-global hub
//! dictionary for the values repeated across many owners, split
//! sign/exponent/mantissa planes for the residual f64s, and a
//! varint-delta block directory. Lossless compression (the default)
//! keeps every backend bit-identical — ~⅔ of the raw payload as v2,
//! ≤ 60% as v3 — while quantized v3 reaches ~40% with ≤ 2⁻³³ value
//! error, flagged in the header. Older generations stay readable
//! forever; `sling compact` converts between generations (`--format`
//! selects one; v3 is the default) and `sling inspect` reports the
//! geometry, including the per-section payload breakdown.
//!
//! Above the trait, every query algorithm is written **once**, generic
//! over `S: HpStore` — the §5.2/§5.3 effective-entry materialization
//! ([`index`]), Algorithm 3 ([`single_pair`]), Algorithm 6
//! ([`single_source`]), top-k ([`topk`]), joins ([`join`]), parallel
//! batches ([`batch`]), and result caching ([`cache`]). The trait also
//! carries an advisory [`store::HpStore::prefetch`] hook: the mmap
//! backends `madvise(WILLNEED)` a query's entry byte ranges so cold
//! out-of-core queries fault their pages in one batch.
//!
//! ### Streaming query kernels
//!
//! The query kernels are **zero-copy**: [`store::HpStore::entries_ref`]
//! borrows a node's entry run from backend-owned storage as a
//! [`store::EntryAccess`] — structure-of-arrays column slices from the
//! arena, raw little-endian section bytes from the `SLNGIDX1` mapping
//! (after one branch-light validation sweep), a refcounted decoded
//! block from the compressed backends — and the kernels consume it in
//! place. An entry list is materialized into a [`QueryWorkspace`]
//! buffer only when a backend must (positioned v1 disk reads,
//! block-straddling runs) or when the §5.2/§5.3 restore actually
//! rewrites it; the engine's `restore_kind` classification
//! ([`store::RestoreKind`]) costs two O(1) loads on build-time
//! artifacts (the reduction bitmap and mark offsets). §5.2-reduced
//! nodes on cache-less paths stream a **two-segment** view: the
//! recomputed steps ≤ 2 head over the borrowed steps ≥ 3 tail, so the
//! bulk of a hub's list
//! is never copied. Engines carry a sharded [`store::RestoreCache`]
//! and resolve restoring nodes to memoized full lists instead — a warm
//! hub is one lookup and a contiguous merge with zero backend traffic.
//! The single-pair
//! merge dispatches on list-length skew: ≥ 8× apart (hub-versus-leaf
//! pairs, the dominant shape on power-law graphs) switches the linear
//! pass to a galloping merge over the longer run — bit-identical by
//! construction, since both kernels visit matches in the same order.
//! The pre-streaming copy-then-linear-merge kernels survive as the
//! `*_materialized_with` reference paths on [`store::QueryEngine`],
//! pinned by the equivalence proptests (bit-equality on every backend ×
//! query type) and measured against by `sling bench-query`, which emits
//! the `BENCH_query.json` perf baseline (3–4× on hub-pair workloads at
//! the time of writing).
//!
//! Two front-ends sit on top of a backend:
//!
//! * [`store::QueryEngine`] — the borrowed, lifetime-bound *view*,
//!   bundling the store with the query-side metadata (correction
//!   factors, reduction bitmap, marks). [`SlingIndex`]'s convenience
//!   methods are thin wrappers over the same generic core.
//! * [`store::SharedEngine`] — the owned, `Send + Sync`,
//!   `Arc`-shareable engine for long-lived processes: open an index once
//!   (in-memory, mmap, or disk), share it across threads for the process
//!   lifetime, and take [`store::SharedEngine::view`] when the full view
//!   surface is needed. Workers keep per-thread workspaces, so the hot
//!   path shares only immutable state.
//!
//! For concurrent serving, [`cache::ShardedResultCache`] adds a global
//! single-pair result cache — power-of-two lock-per-shard over the same
//! intrusive-list LRU, with [`cache::AtomicCacheStats`] counters that
//! stay exact under concurrency. Pairs are canonicalized before
//! computing, so cached and uncached answers are bit-identical across
//! threads and backends ([`store::SharedEngine::single_pair_cached`],
//! [`store::SharedEngine::batch_single_pair_cached`]); identity pairs
//! and out-of-range ids memoize compact verdicts too
//! ([`cache::CachedVerdict`]), so degenerate traffic never reaches the
//! engine twice. The `sling-server` crate stands a thread-per-core
//! TCP/Unix-socket server on exactly these pieces. This is what backs
//! §5.4's claim that SLING answers queries "even when its index
//! structure does not fit in the main memory": pick the backend at open
//! time, keep the algorithms — and now, keep them warm behind a server,
//! at a fraction of the mapped footprint.
//!
//! ### Index lifecycle: generations, promotion, warm restart
//!
//! Because the index is immutable and file-backed, *reindexing* is a
//! data-release problem, not a mutation problem. The [`lifecycle`]
//! subsystem turns that into an operational layer: a
//! [`lifecycle::GenerationStore`] holds versioned `gen-NNNN` directories
//! (each an index file, an optional graph snapshot, and a checksummed
//! `MANIFEST` recording format version, build config, and the
//! source-graph fingerprint), a `CURRENT` pointer is swapped by
//! write-temp + fsync + rename after full payload verification (crash
//! safe: at every instant `CURRENT` names a valid generation), retired
//! generations are GC'd on a retention policy, and
//! [`lifecycle::warm_engine`] primes a freshly opened generation
//! (prefetch + hot-key-log replay) before it takes traffic. Both result
//! caches are **epoch-tagged** ([`ShardedResultCache`] and the
//! [`store::RestoreCache`]) so a generation swap invalidates them in
//! O(1) — a hit computed against a retired index is never served — and
//! `sling-server` holds its engine in an epoch-tagged reloadable slot
//! that hot-swaps generations under live traffic (`RELOAD`, or
//! `serve --index-root <dir> --watch`). [`dynamic::DynamicSling`]
//! rebuilds can publish-and-promote into the store
//! ([`dynamic::DynamicSling::rebuild_into`]) instead of replacing the
//! engine in place, closing the loop from graph churn to zero-downtime
//! swap.
//!
//! ### Observability: metrics registry and query tracing
//!
//! The [`obs`] layer is the single telemetry surface for all of the
//! above: a lock-free [`obs::MetricsRegistry`] of named counters,
//! gauges, and log-bucketed histograms (per-worker shards merged on
//! snapshot; stable Prometheus-text and fixed-key-order JSON
//! renderers), process-wide kernel counters ([`obs::KERNEL`]:
//! RestoreCache hit/miss, block decodes, backend bytes read,
//! gallop-vs-linear merge dispatch, frontier words swept) and
//! lifecycle counters ([`obs::LIFECYCLE`]: publishes, promotions, GC,
//! warm-ups), and a zero-cost-when-disabled [`obs::QueryTrace`] inside
//! every [`QueryWorkspace`] that charges wall time to the four kernel
//! stages (entry fetch, §5.2 restore, merge, Algorithm-6 propagation).
//! `sling-server` builds its `STATS`/`METRICS` exposition and its
//! ring-buffered [`obs::SlowQueryLog`] on exactly these pieces.
//!
//! Where `obs` reports what the server is doing, [`workload`] records
//! what the *traffic* looked like: the versioned, checksummed
//! `SLNGTRACE` traffic-trace format with streaming writer/readers
//! ([`workload::trace`]), deterministic SkyServer-shaped scenario
//! generators ([`workload::synth`]), offline cache simulation over a
//! trace ([`workload::sim`]), and the traffic-report characterization —
//! verb mix, popularity skew, burstiness, hit-rate-vs-size
//! ([`workload::report`]). The loop closes in [`cache`]: the
//! [`cache::Admission`] policy adds TinyLFU frequency-sketch admission
//! (epoch-tagged, reset on generation swap) to the LRU caches, tuned
//! and proven against exactly those traces.
//!
//! ## Extension features beyond the paper's evaluation
//!
//! * top-k single-source queries with heap selection and an
//!   early-terminating approximate variant ([`topk`]);
//! * threshold and top-k similarity joins over the index ([`join`]);
//! * incremental maintenance under edge updates with taint tracking and
//!   pluggable staleness policies ([`dynamic`]) — the paper's stated
//!   future work;
//! * parallel batch query execution ([`batch`]) and an LRU single-pair
//!   result cache ([`cache`]), both generic over the storage backend;
//! * local-update personalized PageRank ([`ppr`]), the Appendix-B
//!   relative of Algorithm 2, with the HP ↔ PPR identity under test.

pub mod batch;
pub mod bernoulli;
pub mod cache;
pub mod codec;
pub mod config;
pub mod correction;
pub mod disk_query;
pub mod dynamic;
pub mod enhance;
pub mod error;
pub mod external_sort;
pub mod faults;
pub mod format;
pub mod hp;
pub mod index;
pub mod join;
pub mod lifecycle;
pub mod local_update;
pub mod obs;
pub mod out_of_core;
pub mod parallel;
pub mod ppr;
pub mod reference;
pub mod single_pair;
pub mod single_source;
pub mod store;
pub mod topk;
pub mod two_hop;
pub mod verify;
pub mod walk;
pub mod workload;

pub use cache::{Admission, AtomicCacheStats, CacheStats, CachedVerdict, ShardedResultCache};
pub use codec::CompressOptions;
pub use config::SlingConfig;
pub use error::SlingError;
pub use format::{
    inspect_bytes, inspect_file, payload_breakdown, payload_breakdown_file, FormatVersion,
    IndexFileInfo, PayloadBreakdown,
};
pub use hp::HpEntry;
pub use index::{QueryWorkspace, SlingIndex};
pub use lifecycle::{GenId, GenerationStore, Manifest};
pub use obs::{MetricsRegistry, QueryTrace, SlowQueryLog, SlowQueryRecord, StageNanos};
pub use store::{
    CompressedMmapArena, EntryAccess, HpStore, MmapHpArena, QueryEngine, RestoreCache, SharedEngine,
};
pub use topk::select_top_k;
pub use walk::WalkEngine;
