//! §5.4 — embarrassingly parallel index construction.
//!
//! Both preprocessing phases shard perfectly by node:
//!
//! * correction factors: each `d̃_k` is an independent sampling task, and
//!   its RNG stream is keyed by `(seed, k)`, so the result is identical to
//!   the serial build regardless of scheduling;
//! * hitting probabilities: each Algorithm 2 traversal (one per target
//!   `v_k`) only reads the graph and writes its own triples; workers emit
//!   into thread-local buffers that are concatenated and sorted once at
//!   the end — the same multiset, hence (after the total `(owner, step,
//!   target)` sort) the same index the serial builder produces.
//!
//! Work is distributed in fixed-size node blocks claimed from an atomic
//! counter, which balances the degree skew of real graphs far better than
//! a static partition.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use parking_lot::Mutex;
use sling_graph::{DiGraph, NodeId};

use crate::config::SlingConfig;
use crate::correction::estimate_dk;
use crate::error::SlingError;
use crate::index::SlingIndex;
use crate::local_update::{reverse_hp_from, HpTriple};
use crate::walk::{task_rng, WalkEngine};

/// Nodes claimed per atomic fetch; small enough to balance skew, large
/// enough that contention on the counter is negligible.
const BLOCK: usize = 64;

pub(crate) fn build_parallel(
    graph: &DiGraph,
    config: &SlingConfig,
) -> Result<SlingIndex, SlingError> {
    config.validate()?;
    let n = graph.num_nodes();
    let threads = config.threads.max(1).min(n.max(1));
    let delta_d = config.delta_d(n);

    // Phase 1: correction factors.
    let cursor = AtomicUsize::new(0);
    let total_samples = AtomicU64::new(0);
    let d_parts: Mutex<Vec<(usize, Vec<f64>)>> = Mutex::new(Vec::new());
    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| {
                let engine = WalkEngine::new(graph, config.c);
                let mut samples = 0u64;
                loop {
                    let lo = cursor.fetch_add(BLOCK, Ordering::Relaxed);
                    if lo >= n {
                        break;
                    }
                    let hi = (lo + BLOCK).min(n);
                    let mut block = Vec::with_capacity(hi - lo);
                    for k in lo..hi {
                        let node = NodeId::from_index(k);
                        let mut rng = task_rng(config.seed, k as u64);
                        let est = estimate_dk(
                            graph,
                            &engine,
                            &mut rng,
                            node,
                            config.c,
                            config.eps_d,
                            delta_d,
                            config.adaptive_dk,
                        );
                        samples += est.samples;
                        block.push(est.d);
                    }
                    d_parts.lock().push((lo, block));
                }
                total_samples.fetch_add(samples, Ordering::Relaxed);
            });
        }
    })
    .expect("worker thread panicked during d_k estimation");

    let mut d = vec![0.0f64; n];
    for (lo, block) in d_parts.into_inner() {
        d[lo..lo + block.len()].copy_from_slice(&block);
    }

    // Phase 2: Algorithm 2 traversals.
    let cursor = AtomicUsize::new(0);
    let triple_parts: Mutex<Vec<Vec<HpTriple>>> = Mutex::new(Vec::new());
    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| {
                let mut local: Vec<HpTriple> = Vec::new();
                loop {
                    let lo = cursor.fetch_add(BLOCK, Ordering::Relaxed);
                    if lo >= n {
                        break;
                    }
                    let hi = (lo + BLOCK).min(n);
                    for k in lo..hi {
                        reverse_hp_from(
                            graph,
                            config.sqrt_c(),
                            config.theta,
                            NodeId::from_index(k),
                            &mut |t| local.push(t),
                        );
                    }
                }
                triple_parts.lock().push(local);
            });
        }
    })
    .expect("worker thread panicked during HP construction");

    let parts = triple_parts.into_inner();
    let total: usize = parts.iter().map(Vec::len).sum();
    let mut triples = Vec::with_capacity(total);
    for part in parts {
        triples.extend(part);
    }
    SlingIndex::from_parts(
        graph,
        config,
        d,
        triples,
        total_samples.load(Ordering::Relaxed),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SlingConfig;
    use sling_graph::generators::{barabasi_albert, two_cliques_bridge};

    #[test]
    fn parallel_build_equals_serial_build() {
        let g = barabasi_albert(300, 3, 17).unwrap();
        let serial_cfg = SlingConfig::from_epsilon(0.6, 0.1).with_seed(9);
        let parallel_cfg = serial_cfg.clone().with_threads(4);
        let a = SlingIndex::build(&g, &serial_cfg).unwrap();
        let b = SlingIndex::build(&g, &parallel_cfg).unwrap();
        assert_eq!(a.d, b.d, "correction factors must be identical");
        assert_eq!(a.hp, b.hp, "HP arenas must be identical");
        assert_eq!(a.reduced, b.reduced);
        assert_eq!(a.stats().dk_samples, b.stats().dk_samples);
    }

    #[test]
    fn parallel_build_with_enhancement_and_more_threads_than_blocks() {
        let g = two_cliques_bridge(5); // only 10 nodes, 8 threads
        let cfg = SlingConfig::from_epsilon(0.6, 0.1)
            .with_seed(4)
            .with_threads(8)
            .with_enhancement(true);
        let idx = SlingIndex::build(&g, &cfg).unwrap();
        let serial = SlingIndex::build(&g, &cfg.clone().with_threads(1)).unwrap();
        assert_eq!(idx.d, serial.d);
        assert_eq!(idx.hp, serial.hp);
        assert_eq!(idx.marks, serial.marks);
    }

    #[test]
    fn queries_agree_between_serial_and_parallel_indexes() {
        let g = barabasi_albert(200, 2, 3).unwrap();
        let cfg = SlingConfig::from_epsilon(0.6, 0.1).with_seed(5);
        let a = SlingIndex::build(&g, &cfg).unwrap();
        let b = SlingIndex::build(&g, &cfg.clone().with_threads(3)).unwrap();
        for u in [0u32, 7, 42, 199] {
            let su = a.single_source(&g, NodeId(u));
            let sv = b.single_source(&g, NodeId(u));
            assert_eq!(su, sv);
        }
    }
}
