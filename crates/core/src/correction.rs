//! Correction-factor estimation (`d_k`) — Algorithms 1 and 4.
//!
//! `d_k` is the probability that two independent √c-walks from `v_k` never
//! meet after step 0 (Lemma 4). Equation (14) decomposes it as
//!
//! ```text
//! d_k = 1 − c/|I(v_k)| − c · µ,
//! µ   = (1/|I(v_k)|²) Σ_{v_i ≠ v_j ∈ I(v_k)} s(v_i, v_j),
//! ```
//!
//! so estimating `d_k` to error `ε_d` reduces to estimating the Bernoulli
//! mean `µ` to error `ε_d / c`, where one Bernoulli sample draws `v_i, v_j`
//! uniformly from `I(v_k)` and asks whether √c-walks from them meet
//! (never counting the `v_i = v_j` draws: that probability mass is the
//! analytic `c/|I(v_k)|` term).

use rand::rngs::SmallRng;
use rand::RngExt;
use sling_graph::{DiGraph, NodeId};

use crate::bernoulli::{adaptive_mean, fixed_sample_mean, Estimate};
use crate::walk::WalkEngine;

/// Result of estimating one correction factor.
#[derive(Clone, Copy, Debug)]
pub struct DkEstimate {
    /// The estimate `d̃_k`, clamped to the feasible range `[1 − c, 1]`.
    pub d: f64,
    /// Bernoulli samples (√c-walk pairs) consumed.
    pub samples: u64,
}

/// True range of every correction factor: `1 − d_k = c/|I| + c·µ ≤ c`
/// since `µ ≤ 1 − 1/|I|`, hence `d_k ∈ [1 − c, 1]`. Clamping the estimate
/// into this range can only reduce its error.
#[inline]
pub fn dk_range(c: f64) -> (f64, f64) {
    (1.0 - c, 1.0)
}

fn estimate_mu(
    graph: &DiGraph,
    engine: &WalkEngine<'_>,
    rng: &mut SmallRng,
    k: NodeId,
    eps_star: f64,
    delta_d: f64,
    adaptive: bool,
) -> Estimate {
    let inn = graph.in_neighbors(k);
    let sampler = || {
        let vi = inn[rng.random_range(0..inn.len())];
        let vj = inn[rng.random_range(0..inn.len())];
        // v_i == v_j draws never count toward µ (Algorithm 1 line 5).
        vi != vj && engine.walks_meet(rng, vi, vj)
    };
    if adaptive {
        adaptive_mean(sampler, eps_star, delta_d)
    } else {
        fixed_sample_mean(sampler, eps_star, delta_d)
    }
}

/// Estimate `d_k` with error ≤ `eps_d` and failure probability ≤ `delta_d`.
///
/// `adaptive = true` uses Algorithm 4 (recommended); `false` uses the
/// fixed-sample Algorithm 1, kept for the §5.1 ablation.
///
/// Special cases handled exactly (no sampling):
/// * `|I(v_k)| = 0` — both walks halt at step 0, so `d_k = 1`;
/// * `|I(v_k)| = 1` — the walks meet iff both survive step 1, so
///   `d_k = 1 − c` exactly (µ has no `v_i ≠ v_j` terms).
pub fn estimate_dk(
    graph: &DiGraph,
    engine: &WalkEngine<'_>,
    rng: &mut SmallRng,
    k: NodeId,
    c: f64,
    eps_d: f64,
    delta_d: f64,
    adaptive: bool,
) -> DkEstimate {
    let deg = graph.in_degree(k);
    if deg == 0 {
        return DkEstimate { d: 1.0, samples: 0 };
    }
    if deg == 1 {
        return DkEstimate {
            d: 1.0 - c,
            samples: 0,
        };
    }
    let est = estimate_mu(graph, engine, rng, k, eps_d / c, delta_d, adaptive);
    let raw = 1.0 - c / deg as f64 - c * est.mean;
    let (lo, hi) = dk_range(c);
    DkEstimate {
        d: raw.clamp(lo, hi),
        samples: est.samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::walk::task_rng;
    use sling_graph::generators::{complete_graph, cycle_graph, star_graph, two_cliques_bridge};

    const C: f64 = 0.6;

    fn estimate(graph: &DiGraph, k: u32, eps_d: f64, adaptive: bool) -> DkEstimate {
        let engine = WalkEngine::new(graph, C);
        let mut rng = task_rng(42, k as u64);
        estimate_dk(
            graph,
            &engine,
            &mut rng,
            NodeId(k),
            C,
            eps_d,
            1e-4,
            adaptive,
        )
    }

    #[test]
    fn dangling_node_has_dk_one() {
        let g = star_graph(5);
        // Leaves 1..5 have no in-neighbors.
        let est = estimate(&g, 3, 0.01, true);
        assert_eq!(est.d, 1.0);
        assert_eq!(est.samples, 0);
    }

    #[test]
    fn single_in_neighbor_is_exact() {
        let g = cycle_graph(7);
        let est = estimate(&g, 0, 0.01, true);
        assert!((est.d - (1.0 - C)).abs() < 1e-12);
        assert_eq!(est.samples, 0);
    }

    #[test]
    fn star_hub_dk_matches_closed_form() {
        // Hub of an in-star with q leaves: every leaf is dangling, so
        // s(v_i, v_j) = 0 for distinct leaves, µ = 0, and
        // d_hub = 1 − c/q exactly.
        let q = 4;
        let g = star_graph(q + 1);
        let est = estimate(&g, 0, 0.005, true);
        let exact = 1.0 - C / q as f64;
        assert!(
            (est.d - exact).abs() <= 0.005,
            "d̃ = {} exact = {exact}",
            est.d
        );
    }

    #[test]
    fn complete_graph_dk_matches_closed_form() {
        // On K_n all off-diagonal scores equal
        // s = c(n-2)/((1-c)(n-1)^2 + c(n-2)), and I(v) = V \ {v} with
        // |I| = n-1, so µ = (1/(n-1)^2)·(n-1)(n-2)·s and
        // d = 1 − c/(n-1) − cµ.
        let n = 6usize;
        let g = complete_graph(n);
        let s = C * (n - 2) as f64 / ((1.0 - C) * ((n - 1) * (n - 1)) as f64 + C * (n - 2) as f64);
        let mu = ((n - 1) * (n - 2)) as f64 / (((n - 1) * (n - 1)) as f64) * s;
        let exact = 1.0 - C / (n - 1) as f64 - C * mu;
        for adaptive in [false, true] {
            let est = estimate(&g, 0, 0.005, adaptive);
            assert!(
                (est.d - exact).abs() <= 0.006,
                "adaptive={adaptive} d̃ = {} exact = {exact}",
                est.d
            );
        }
    }

    #[test]
    fn estimates_stay_in_feasible_range() {
        let g = two_cliques_bridge(5);
        for k in 0..g.num_nodes() as u32 {
            let est = estimate(&g, k, 0.02, true);
            let (lo, hi) = dk_range(C);
            assert!(est.d >= lo - 1e-12 && est.d <= hi + 1e-12, "d={}", est.d);
        }
    }

    #[test]
    fn adaptive_cheaper_than_fixed_on_low_mu_nodes() {
        // Clique nodes have moderately similar in-neighbors but µ is still
        // well below 1; Algorithm 4 should beat Algorithm 1 clearly.
        let g = two_cliques_bridge(6);
        let fixed = estimate(&g, 1, 0.005, false);
        let adaptive = estimate(&g, 1, 0.005, true);
        assert!(
            adaptive.samples < fixed.samples / 2,
            "adaptive {} fixed {}",
            adaptive.samples,
            fixed.samples
        );
        assert!((adaptive.d - fixed.d).abs() < 0.02);
    }
}
