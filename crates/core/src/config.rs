//! SLING configuration and the Theorem 1 error budget.

use crate::error::SlingError;

/// Configuration of a [`crate::SlingIndex`].
///
/// Theorem 1 of the paper: the index guarantees at most `ε` additive error
/// in every SimRank score (with probability ≥ 1 − δ) whenever
///
/// ```text
/// ε_d / (1 − c)  +  2√c · θ / ((1 − √c)(1 − c))  ≤  ε,     δ_d ≤ δ/n.
/// ```
///
/// [`SlingConfig::from_epsilon`] splits the budget evenly between the two
/// terms, which for `c = 0.6, ε = 0.025` reproduces the paper's §7.1
/// parameters (`ε_d = 0.005`, `θ ≈ 0.000725`).
#[derive(Clone, Debug, PartialEq)]
pub struct SlingConfig {
    /// SimRank decay factor `c ∈ (0, 1)`; the paper uses 0.6.
    pub c: f64,
    /// Target worst-case additive error `ε` of each returned score.
    pub epsilon: f64,
    /// Maximum error `ε_d` of each correction factor `d̃_k`.
    pub eps_d: f64,
    /// Hitting-probability truncation threshold `θ` of Algorithm 2.
    pub theta: f64,
    /// Overall failure probability `δ`; per-node `δ_d = δ/n` is derived at
    /// build time. The paper uses `δ_d = 1/n²`, i.e. `δ = 1/n`.
    pub delta: Option<f64>,
    /// Seed for all sampling during construction (queries are
    /// deterministic). Same seed + same graph ⇒ identical index.
    pub seed: u64,
    /// Use the adaptive Algorithm 4 estimator for `d_k` (default) instead
    /// of the fixed-sample Algorithm 1.
    pub adaptive_dk: bool,
    /// §5.2 space reduction: drop step-1/2 HPs for nodes with
    /// `η(v) ≤ γ/θ` and recompute them exactly at query time.
    pub space_reduction: bool,
    /// The constant `γ` of §5.2 (paper sets 10).
    pub gamma: f64,
    /// §5.3 accuracy enhancement: mark up to `1/√ε` HPs per node and expand
    /// them one extra step during queries.
    pub enhance_accuracy: bool,
    /// Return exactly 1.0 for `s(v, v)` instead of the Eq. (17) estimate.
    /// `s(v,v) = 1` holds by definition, so this is a free accuracy win;
    /// disable it to measure the raw estimator (Figures 5–7 do).
    pub exact_diagonal: bool,
    /// Worker threads for construction (1 = serial).
    pub threads: usize,
}

impl SlingConfig {
    /// Paper defaults: `c = 0.6`, `ε = 0.025` (§7.1).
    pub fn paper_defaults() -> Self {
        Self::from_epsilon(0.6, 0.025)
    }

    /// Derive `ε_d` and `θ` from a target `ε` by splitting the Theorem 1
    /// budget evenly between the correction-factor term and the
    /// truncation term.
    pub fn from_epsilon(c: f64, epsilon: f64) -> Self {
        let sqrt_c = c.sqrt();
        let eps_d = epsilon * (1.0 - c) / 2.0;
        let theta = epsilon * (1.0 - sqrt_c) * (1.0 - c) / (4.0 * sqrt_c);
        SlingConfig {
            c,
            epsilon,
            eps_d,
            theta,
            delta: None,
            seed: 0x511_4e6,
            adaptive_dk: true,
            space_reduction: true,
            gamma: 10.0,
            enhance_accuracy: false,
            exact_diagonal: true,
            threads: 1,
        }
    }

    /// Override the sampling seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override the number of construction threads.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Override `ε_d` and `θ` directly (must still satisfy Theorem 1 for
    /// the stated `ε`; [`SlingConfig::validate`] checks).
    pub fn with_error_split(mut self, eps_d: f64, theta: f64) -> Self {
        self.eps_d = eps_d;
        self.theta = theta;
        self
    }

    /// Toggle §5.2 space reduction.
    pub fn with_space_reduction(mut self, on: bool) -> Self {
        self.space_reduction = on;
        self
    }

    /// Toggle §5.3 accuracy enhancement.
    pub fn with_enhancement(mut self, on: bool) -> Self {
        self.enhance_accuracy = on;
        self
    }

    /// Toggle the exact-diagonal shortcut.
    pub fn with_exact_diagonal(mut self, on: bool) -> Self {
        self.exact_diagonal = on;
        self
    }

    /// Use Algorithm 1 (fixed sample size) instead of Algorithm 4.
    pub fn with_adaptive_dk(mut self, adaptive: bool) -> Self {
        self.adaptive_dk = adaptive;
        self
    }

    /// Overall failure probability δ (default `1/n` at build time).
    pub fn with_delta(mut self, delta: f64) -> Self {
        self.delta = Some(delta);
        self
    }

    /// `√c`, used everywhere by the walk machinery.
    #[inline]
    pub fn sqrt_c(&self) -> f64 {
        self.c.sqrt()
    }

    /// Left-hand side of the Theorem 1 inequality for this parameter set.
    pub fn theorem1_error_bound(&self) -> f64 {
        let sc = self.sqrt_c();
        self.eps_d / (1.0 - self.c) + 2.0 * sc * self.theta / ((1.0 - sc) * (1.0 - self.c))
    }

    /// Per-node failure probability `δ_d = δ / n`.
    pub fn delta_d(&self, n: usize) -> f64 {
        let n = n.max(2) as f64;
        match self.delta {
            Some(d) => (d / n).clamp(f64::MIN_POSITIVE, 0.5),
            // Paper default: δ = 1/n  =>  δ_d = 1/n².
            None => (1.0 / (n * n)).max(f64::MIN_POSITIVE),
        }
    }

    /// Check all parameter ranges and the Theorem 1 inequality.
    pub fn validate(&self) -> Result<(), SlingError> {
        if !(self.c > 0.0 && self.c < 1.0) {
            return Err(SlingError::InvalidConfig(format!(
                "decay factor c={} must lie in (0,1)",
                self.c
            )));
        }
        if !(self.epsilon > 0.0 && self.epsilon < 1.0) {
            return Err(SlingError::InvalidConfig(format!(
                "epsilon={} must lie in (0,1)",
                self.epsilon
            )));
        }
        if self.eps_d <= 0.0 || self.theta <= 0.0 {
            return Err(SlingError::InvalidConfig(
                "eps_d and theta must be positive".into(),
            ));
        }
        if let Some(d) = self.delta {
            if !(d > 0.0 && d < 1.0) {
                return Err(SlingError::InvalidConfig(format!(
                    "delta={d} must lie in (0,1)"
                )));
            }
        }
        let bound = self.theorem1_error_bound();
        if bound > self.epsilon * (1.0 + 1e-9) {
            return Err(SlingError::InvalidConfig(format!(
                "Theorem 1 violated: eps_d/(1-c) + 2*sqrt(c)*theta/((1-sqrt(c))(1-c)) = {bound:.6} > epsilon = {}",
                self.epsilon
            )));
        }
        if self.gamma <= 0.0 {
            return Err(SlingError::InvalidConfig("gamma must be positive".into()));
        }
        Ok(())
    }
}

impl Default for SlingConfig {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_7_1() {
        let cfg = SlingConfig::paper_defaults();
        assert!((cfg.c - 0.6).abs() < 1e-12);
        assert!((cfg.epsilon - 0.025).abs() < 1e-12);
        assert!((cfg.eps_d - 0.005).abs() < 1e-12, "eps_d = {}", cfg.eps_d);
        // Paper sets θ = 0.000725; the even split gives 0.000728.
        assert!((cfg.theta - 0.000725).abs() < 5e-6, "theta = {}", cfg.theta);
        cfg.validate().unwrap();
    }

    #[test]
    fn theorem1_budget_is_respected_by_from_epsilon() {
        for &c in &[0.4, 0.6, 0.8] {
            for &eps in &[0.3, 0.1, 0.025, 0.01] {
                let cfg = SlingConfig::from_epsilon(c, eps);
                assert!(
                    cfg.theorem1_error_bound() <= eps * (1.0 + 1e-9),
                    "c={c} eps={eps}"
                );
                cfg.validate().unwrap();
            }
        }
    }

    #[test]
    fn validate_rejects_bad_params() {
        let mut cfg = SlingConfig::paper_defaults();
        cfg.c = 1.5;
        assert!(cfg.validate().is_err());

        let mut cfg = SlingConfig::paper_defaults();
        cfg.theta *= 100.0; // breaks Theorem 1
        assert!(cfg.validate().is_err());

        let mut cfg = SlingConfig::paper_defaults();
        cfg.eps_d = -1.0;
        assert!(cfg.validate().is_err());

        let cfg = SlingConfig::paper_defaults().with_delta(2.0);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn delta_d_defaults_to_inverse_n_squared() {
        let cfg = SlingConfig::paper_defaults();
        let n = 1000;
        assert!((cfg.delta_d(n) - 1e-6).abs() < 1e-12);
        let cfg = cfg.with_delta(0.1);
        assert!((cfg.delta_d(n) - 1e-4).abs() < 1e-12);
    }

    #[test]
    fn builder_style_setters() {
        let cfg = SlingConfig::from_epsilon(0.6, 0.05)
            .with_seed(42)
            .with_threads(0)
            .with_enhancement(true)
            .with_space_reduction(false)
            .with_adaptive_dk(false)
            .with_exact_diagonal(false);
        assert_eq!(cfg.seed, 42);
        assert_eq!(cfg.threads, 1, "threads clamps to >= 1");
        assert!(cfg.enhance_accuracy);
        assert!(!cfg.space_reduction);
        assert!(!cfg.adaptive_dk);
        assert!(!cfg.exact_diagonal);
    }

    #[test]
    fn serde_round_trip_via_json_like_debug() {
        // serde derives exist for downstream persistence; check they at
        // least round-trip through the `serde_test`-free path of
        // serializing into a Vec with a hand-rolled writer is overkill —
        // instead assert Clone/PartialEq coherence.
        let cfg = SlingConfig::paper_defaults().with_seed(9);
        let clone = cfg.clone();
        assert_eq!(cfg, clone);
    }
}
