//! Value-section codecs: how a block's hitting-probability values are
//! laid out in bytes.
//!
//! The step and node columns compress with fixed schemes (run-length and
//! delta-varint — see [`crate::codec::block`]); the value column is where
//! the encodings genuinely compete, so it is behind the
//! [`SectionCodec`] trait with three implementations:
//!
//! * [`RawF64Codec`] — 8 bytes per value, bit-exact. The fallback that
//!   can never lose.
//! * [`DictF64Codec`] — per-block dictionary of distinct bit patterns
//!   plus a varint index per entry, bit-exact. Algorithm 2's local
//!   updates give every step-1 entry of a node the value `√c / |I(v)|`
//!   and step-2 entries repeat across shared in-neighborhoods, so real
//!   blocks hold far fewer distinct values than entries.
//! * [`FixedPointCodec`] — values quantized to `round(v · (2³² − 1))`,
//!   4 bytes each. Lossy (≤ 2⁻³³ absolute error — three orders of
//!   magnitude below any ε the index is built with), flagged in the file
//!   header so readers know scores are no longer bit-identical to the
//!   uncompressed index.
//!
//! The lossless encoder picks the smaller of raw/dict **per block**, so
//! a pathological block (all-distinct values) costs at most one tag byte
//! over the raw layout.
//!
//! The `SLNGIDX3` payload adds a fourth, **cross-block** scheme:
//! a file-wide [`GlobalDict`] of the hot bit patterns (every step-0
//! value is exactly `1.0`, step-1 values are `√c/|I(v)|` — one distinct
//! value per in-degree — and step-2 values repeat across shared
//! in-neighborhoods, so the same few thousand patterns recur in every
//! block), referenced by [`TAG_GLOBAL_DICT`] sections via a varint code
//! per value. Values outside the dictionary escape as **split planes**:
//! the high 16 bits of the `f64` (sign + exponent + 4 mantissa bits —
//! probabilities share a handful of exponents) behind a per-section
//! `u16` dictionary, plus the raw low 48 mantissa bits. Bit-exact, and
//! the v3 encoder still falls back to raw/per-block-dict per block, so
//! no block can regress past one tag byte.

use crate::codec::varint;
use crate::error::SlingError;

fn corrupt(what: impl Into<String>) -> SlingError {
    SlingError::CorruptIndex(what.into())
}

/// A codec for one value section of a block: encodes a `f64` column to
/// bytes and decodes it back, identified by a stable one-byte tag stored
/// in the block header.
pub trait SectionCodec {
    /// Stable on-disk tag identifying this codec.
    fn tag(&self) -> u8;

    /// Whether decoded values are bit-identical to the encoded input.
    fn exact(&self) -> bool;

    /// Append the encoding of `values` to `out`.
    fn encode(&self, values: &[f64], out: &mut Vec<u8>);

    /// Decode exactly `count` values from the front of `buf` (advancing
    /// it) into `out`. Every malformed input must surface as
    /// [`SlingError::CorruptIndex`], never a panic.
    fn decode(&self, buf: &mut &[u8], count: usize, out: &mut Vec<f64>) -> Result<(), SlingError>;
}

/// Tag of [`RawF64Codec`].
pub const TAG_RAW_F64: u8 = 0;
/// Tag of [`DictF64Codec`].
pub const TAG_DICT_F64: u8 = 1;
/// Tag of [`FixedPointCodec`].
pub const TAG_FIXED_U32: u8 = 2;
/// Tag of the `SLNGIDX3` cross-block global-dictionary section (only
/// valid inside a v3 payload, which carries the [`GlobalDict`]).
pub const TAG_GLOBAL_DICT: u8 = 3;

/// Resolve a block's value codec from its on-disk tag.
pub fn codec_for_tag(tag: u8) -> Result<&'static dyn SectionCodec, SlingError> {
    match tag {
        TAG_RAW_F64 => Ok(&RawF64Codec),
        TAG_DICT_F64 => Ok(&DictF64Codec),
        TAG_FIXED_U32 => Ok(&FixedPointCodec),
        other => Err(corrupt(format!("unknown value codec tag {other}"))),
    }
}

/// Pick the smaller lossless encoding for `values` and append it
/// (tag byte included) to `out`.
pub fn encode_values_lossless(values: &[f64], out: &mut Vec<u8>) {
    let dict_len = dict_cost(values);
    if dict_len < values.len() * 8 {
        out.push(TAG_DICT_F64);
        DictF64Codec.encode(values, out);
    } else {
        out.push(TAG_RAW_F64);
        RawF64Codec.encode(values, out);
    }
}

/// Append the quantized encoding of `values` (tag byte included).
pub fn encode_values_quantized(values: &[f64], out: &mut Vec<u8>) {
    out.push(TAG_FIXED_U32);
    FixedPointCodec.encode(values, out);
}

/// Exact byte cost of the dictionary encoding of `values` (without
/// encoding), used to choose against raw.
fn dict_cost(values: &[f64]) -> usize {
    let mut dict: sling_graph::FxHashMap<u64, u32> = sling_graph::FxHashMap::default();
    let mut index_bytes = 0usize;
    for v in values {
        let next = dict.len() as u32;
        let idx = *dict.entry(v.to_bits()).or_insert(next);
        index_bytes += varint::len_u64(idx as u64);
    }
    varint::len_u64(dict.len() as u64) + dict.len() * 8 + index_bytes
}

/// 8-byte little-endian `f64` per value; bit-exact.
pub struct RawF64Codec;

impl SectionCodec for RawF64Codec {
    fn tag(&self) -> u8 {
        TAG_RAW_F64
    }

    fn exact(&self) -> bool {
        true
    }

    fn encode(&self, values: &[f64], out: &mut Vec<u8>) {
        for v in values {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }

    fn decode(&self, buf: &mut &[u8], count: usize, out: &mut Vec<f64>) -> Result<(), SlingError> {
        let need = count
            .checked_mul(8)
            .ok_or_else(|| corrupt("value count overflows"))?;
        if buf.len() < need {
            return Err(corrupt("truncated raw value section"));
        }
        out.reserve(count);
        for chunk in buf[..need].chunks_exact(8) {
            out.push(f64::from_le_bytes(chunk.try_into().unwrap()));
        }
        *buf = &buf[need..];
        Ok(())
    }
}

/// Per-block dictionary of distinct bit patterns (in first-occurrence
/// order) plus a varint dictionary index per value; bit-exact.
///
/// Layout: `dict_len varint | dict_len × f64 | count × varint index`.
pub struct DictF64Codec;

impl SectionCodec for DictF64Codec {
    fn tag(&self) -> u8 {
        TAG_DICT_F64
    }

    fn exact(&self) -> bool {
        true
    }

    fn encode(&self, values: &[f64], out: &mut Vec<u8>) {
        let mut dict: sling_graph::FxHashMap<u64, u32> = sling_graph::FxHashMap::default();
        let mut order: Vec<u64> = Vec::new();
        let mut indices: Vec<u32> = Vec::with_capacity(values.len());
        for v in values {
            let bits = v.to_bits();
            let next = order.len() as u32;
            let idx = *dict.entry(bits).or_insert_with(|| {
                order.push(bits);
                next
            });
            indices.push(idx);
        }
        varint::write_u64(out, order.len() as u64);
        for bits in order {
            out.extend_from_slice(&bits.to_le_bytes());
        }
        for idx in indices {
            varint::write_u64(out, idx as u64);
        }
    }

    fn decode(&self, buf: &mut &[u8], count: usize, out: &mut Vec<f64>) -> Result<(), SlingError> {
        let dict_len = varint::read_u32(buf)? as usize;
        // A dictionary cannot be larger than the values it describes —
        // reject before allocating from an attacker-controlled length.
        if dict_len > count {
            return Err(corrupt(format!(
                "value dictionary of {dict_len} entries for {count} values"
            )));
        }
        if count > 0 && dict_len == 0 {
            return Err(corrupt("empty value dictionary for a non-empty block"));
        }
        let need = dict_len * 8;
        if buf.len() < need {
            return Err(corrupt("truncated value dictionary"));
        }
        let mut dict = Vec::with_capacity(dict_len);
        for chunk in buf[..need].chunks_exact(8) {
            dict.push(f64::from_le_bytes(chunk.try_into().unwrap()));
        }
        *buf = &buf[need..];
        out.reserve(count);
        for _ in 0..count {
            let idx = varint::read_u32(buf)? as usize;
            let v = dict.get(idx).ok_or_else(|| {
                corrupt(format!("value index {idx} past dictionary ({dict_len})"))
            })?;
            out.push(*v);
        }
        Ok(())
    }
}

/// Quantization scale of [`FixedPointCodec`]: the full `u32` range maps
/// the unit interval.
const FIXED_SCALE: f64 = u32::MAX as f64;

/// Quantize a probability to fixed-point `u32` (clamped to the unit
/// range, so the `1 + 1e-9` tolerance the decoders accept cannot wrap).
#[inline]
pub fn quantize(v: f64) -> u32 {
    (v.clamp(0.0, 1.0) * FIXED_SCALE).round() as u32
}

/// Inverse of [`quantize`].
#[inline]
pub fn dequantize(q: u32) -> f64 {
    q as f64 / FIXED_SCALE
}

/// 4-byte fixed-point values; lossy within `2⁻³³`, flagged file-wide.
pub struct FixedPointCodec;

impl SectionCodec for FixedPointCodec {
    fn tag(&self) -> u8 {
        TAG_FIXED_U32
    }

    fn exact(&self) -> bool {
        false
    }

    fn encode(&self, values: &[f64], out: &mut Vec<u8>) {
        for v in values {
            out.extend_from_slice(&quantize(*v).to_le_bytes());
        }
    }

    fn decode(&self, buf: &mut &[u8], count: usize, out: &mut Vec<f64>) -> Result<(), SlingError> {
        let need = count
            .checked_mul(4)
            .ok_or_else(|| corrupt("value count overflows"))?;
        if buf.len() < need {
            return Err(corrupt("truncated fixed-point value section"));
        }
        out.reserve(count);
        for chunk in buf[..need].chunks_exact(4) {
            out.push(dequantize(u32::from_le_bytes(chunk.try_into().unwrap())));
        }
        *buf = &buf[need..];
        Ok(())
    }
}

/// Cross-block value dictionary of an `SLNGIDX3` payload: the bit
/// patterns worth storing **once per file** instead of once per block.
///
/// Built from the full value column: every pattern occurring at least
/// twice enters, most-frequent first (ties broken by ascending bits, so
/// the order — and therefore the encoded file — is deterministic), which
/// hands the hottest values one-byte codes. Stored resident by the
/// compressed backends, so global-dictionary hits decode with one array
/// load and zero per-block dictionary bytes.
pub struct GlobalDict {
    values: Vec<f64>,
    index: sling_graph::FxHashMap<u64, u32>,
}

impl GlobalDict {
    /// Hard ceiling on dictionary entries: bounds the resident footprint
    /// and keeps every code a ≤ 3-byte varint.
    pub const MAX_ENTRIES: usize = 1 << 20;

    /// An empty dictionary (every value escapes — used by quantized v3
    /// payloads, whose blocks use the fixed-point codec instead).
    pub fn empty() -> GlobalDict {
        GlobalDict {
            values: Vec::new(),
            index: sling_graph::FxHashMap::default(),
        }
    }

    /// Build the dictionary from the full value column.
    pub fn build(values: &[f64]) -> GlobalDict {
        let mut counts: sling_graph::FxHashMap<u64, u64> = sling_graph::FxHashMap::default();
        for v in values {
            *counts.entry(v.to_bits()).or_insert(0) += 1;
        }
        let mut freq: Vec<(u64, u64)> = counts
            .into_iter()
            .filter(|&(_, count)| count >= 2)
            .collect();
        // Most frequent first; ascending bits on ties for determinism.
        freq.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        freq.truncate(Self::MAX_ENTRIES);
        let mut dict = GlobalDict {
            values: Vec::with_capacity(freq.len()),
            index: sling_graph::FxHashMap::default(),
        };
        for (i, (bits, _)) in freq.into_iter().enumerate() {
            dict.values.push(f64::from_bits(bits));
            dict.index.insert(bits, i as u32);
        }
        dict
    }

    /// Dictionary entries in code order (what the file stores).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    #[inline]
    fn lookup(&self, bits: u64) -> Option<u32> {
        self.index.get(&bits).copied()
    }
}

/// Pick the smallest lossless `SLNGIDX3` encoding for one block's value
/// section and append it (tag byte included) to `out`: global dictionary
/// with split-plane escapes, per-block dictionary, or raw — by exact
/// byte cost, ties to the global scheme (its dictionary bytes are
/// already paid file-wide).
pub fn encode_values_v3(values: &[f64], dict: &GlobalDict, out: &mut Vec<u8>) {
    let raw = values.len() * 8;
    let per_block = dict_cost(values);
    let global = global_cost(values, dict);
    if global <= per_block && global < raw {
        out.push(TAG_GLOBAL_DICT);
        encode_values_global(values, dict, out);
    } else if per_block < raw {
        out.push(TAG_DICT_F64);
        DictF64Codec.encode(values, out);
    } else {
        out.push(TAG_RAW_F64);
        RawF64Codec.encode(values, out);
    }
}

/// Exact byte cost of the [`TAG_GLOBAL_DICT`] encoding of `values`
/// (without encoding), used to choose against raw/per-block-dict.
fn global_cost(values: &[f64], dict: &GlobalDict) -> usize {
    let mut bytes = 0usize;
    let mut hi_seen: sling_graph::FxHashMap<u16, u32> = sling_graph::FxHashMap::default();
    for v in values {
        let bits = v.to_bits();
        match dict.lookup(bits) {
            Some(idx) => bytes += varint::len_u64(idx as u64 + 1),
            None => {
                let hi = (bits >> 48) as u16;
                let next = hi_seen.len() as u32;
                let hi_idx = *hi_seen.entry(hi).or_insert(next);
                // escape code 0 + hi-plane index + 6 low bytes.
                bytes += 1 + varint::len_u64(hi_idx as u64) + 6;
            }
        }
    }
    bytes + varint::len_u64(hi_seen.len() as u64) + hi_seen.len() * 2
}

/// Encode one [`TAG_GLOBAL_DICT`] value section (tag byte **not**
/// included).
///
/// Layout:
///
/// ```text
/// count × varint code            (0 = escape, else global index + 1)
/// hi_dict_len varint
/// hi_dict_len × u16 LE           (distinct high-16-bit planes of the
///                                 escaped values, first-occurrence order)
/// n_escapes × varint hi_idx      (per escape, into the hi dictionary)
/// n_escapes × 6 bytes LE         (low 48 mantissa bits, raw)
/// ```
///
/// `n_escapes` is implied by the zero codes. Splitting the escaped `f64`s
/// into a sign/exponent plane (the high 16 bits, drawn from a handful of
/// distinct patterns since HP values are probabilities) and a raw
/// mantissa plane keeps an escape at ~8 bytes while dictionary hits cost
/// 1–2 — and unlike [`DictF64Codec`], no per-block dictionary bytes are
/// paid for values the whole file shares.
pub(crate) fn encode_values_global(values: &[f64], dict: &GlobalDict, out: &mut Vec<u8>) {
    let mut escaped: Vec<u64> = Vec::new();
    for v in values {
        let bits = v.to_bits();
        match dict.lookup(bits) {
            Some(idx) => varint::write_u64(out, idx as u64 + 1),
            None => {
                varint::write_u64(out, 0);
                escaped.push(bits);
            }
        }
    }
    let mut hi_map: sling_graph::FxHashMap<u16, u32> = sling_graph::FxHashMap::default();
    let mut hi_order: Vec<u16> = Vec::new();
    let mut hi_indices: Vec<u32> = Vec::with_capacity(escaped.len());
    for &bits in &escaped {
        let hi = (bits >> 48) as u16;
        let next = hi_order.len() as u32;
        let idx = *hi_map.entry(hi).or_insert_with(|| {
            hi_order.push(hi);
            next
        });
        hi_indices.push(idx);
    }
    varint::write_u64(out, hi_order.len() as u64);
    for hi in &hi_order {
        out.extend_from_slice(&hi.to_le_bytes());
    }
    for idx in hi_indices {
        varint::write_u64(out, idx as u64);
    }
    for &bits in &escaped {
        out.extend_from_slice(&bits.to_le_bytes()[..6]);
    }
}

/// Decode one [`TAG_GLOBAL_DICT`] value section (tag byte already
/// consumed) against the file's resident global dictionary. Hardened
/// like every decoder here: out-of-range codes, oversized or empty hi
/// dictionaries, and truncation all surface as
/// [`SlingError::CorruptIndex`].
pub(crate) fn decode_values_global(
    buf: &mut &[u8],
    count: usize,
    dict: &[f64],
    out: &mut Vec<f64>,
) -> Result<(), SlingError> {
    let base = out.len();
    out.reserve(count);
    let mut escape_slots: Vec<usize> = Vec::new();
    for i in 0..count {
        let code = varint::read_u32(buf)? as usize;
        if code == 0 {
            escape_slots.push(base + i);
            out.push(0.0); // placeholder, patched from the planes below
        } else {
            let v = dict.get(code - 1).ok_or_else(|| {
                corrupt(format!(
                    "global dictionary code {code} past {} entries",
                    dict.len()
                ))
            })?;
            out.push(*v);
        }
    }
    let n_escapes = escape_slots.len();
    let hi_dict_len = varint::read_u32(buf)? as usize;
    if hi_dict_len > n_escapes {
        return Err(corrupt(format!(
            "hi-plane dictionary of {hi_dict_len} entries for {n_escapes} escapes"
        )));
    }
    if n_escapes > 0 && hi_dict_len == 0 {
        return Err(corrupt("empty hi-plane dictionary with escaped values"));
    }
    let need = hi_dict_len * 2;
    if buf.len() < need {
        return Err(corrupt("truncated hi-plane dictionary"));
    }
    let mut hi_dict = Vec::with_capacity(hi_dict_len);
    for chunk in buf[..need].chunks_exact(2) {
        hi_dict.push(u16::from_le_bytes(chunk.try_into().unwrap()));
    }
    *buf = &buf[need..];
    let mut highs = Vec::with_capacity(n_escapes);
    for _ in 0..n_escapes {
        let idx = varint::read_u32(buf)? as usize;
        let hi = hi_dict.get(idx).ok_or_else(|| {
            corrupt(format!(
                "hi-plane index {idx} past dictionary ({hi_dict_len})"
            ))
        })?;
        highs.push(*hi);
    }
    let need = n_escapes * 6;
    if buf.len() < need {
        return Err(corrupt("truncated mantissa plane"));
    }
    for ((&slot, chunk), hi) in escape_slots
        .iter()
        .zip(buf[..need].chunks_exact(6))
        .zip(highs)
    {
        let mut low = [0u8; 8];
        low[..6].copy_from_slice(chunk);
        let bits = u64::from_le_bytes(low) | ((hi as u64) << 48);
        out[slot] = f64::from_bits(bits);
    }
    *buf = &buf[need..];
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(codec: &dyn SectionCodec, values: &[f64]) -> Vec<f64> {
        let mut bytes = Vec::new();
        codec.encode(values, &mut bytes);
        let mut buf = bytes.as_slice();
        let mut out = Vec::new();
        codec.decode(&mut buf, values.len(), &mut out).unwrap();
        assert!(buf.is_empty(), "decoder left bytes behind");
        out
    }

    #[test]
    fn raw_and_dict_are_bit_exact() {
        let values = [1.0, 1.0 / 3.0, 0.25, 1.0 / 3.0, 1e-300, 0.0, 1.0];
        for codec in [&RawF64Codec as &dyn SectionCodec, &DictF64Codec] {
            let back = round_trip(codec, &values);
            assert!(codec.exact());
            assert_eq!(
                values.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                back.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn dict_wins_on_repetitive_blocks_raw_on_distinct() {
        let repetitive: Vec<f64> = (0..256).map(|i| [0.5, 0.25, 0.125][i % 3]).collect();
        let mut lossless = Vec::new();
        encode_values_lossless(&repetitive, &mut lossless);
        assert_eq!(lossless[0], TAG_DICT_F64);
        assert!(
            lossless.len() < repetitive.len() * 8 / 2,
            "{}",
            lossless.len()
        );

        let distinct: Vec<f64> = (0..256).map(|i| 1.0 / (i as f64 + 3.0)).collect();
        let mut lossless = Vec::new();
        encode_values_lossless(&distinct, &mut lossless);
        assert_eq!(lossless[0], TAG_RAW_F64);
        assert_eq!(lossless.len(), 1 + distinct.len() * 8);
    }

    #[test]
    fn fixed_point_error_is_negligible_and_flagged() {
        let values = [0.0, 1.0, 1.0 / 3.0, 0.999_999_9, 1e-12];
        let back = round_trip(&FixedPointCodec, &values);
        assert!(!FixedPointCodec.exact());
        for (a, b) in values.iter().zip(&back) {
            assert!((a - b).abs() <= 0.5 / (u32::MAX as f64), "{a} vs {b}");
            assert!((0.0..=1.0).contains(b));
        }
        // Exactly representable endpoints survive.
        assert_eq!(back[0], 0.0);
        assert_eq!(back[1], 1.0);
        // Values outside the unit range clamp instead of wrapping.
        assert_eq!(quantize(1.0 + 1e-9), u32::MAX);
        assert_eq!(quantize(-0.5), 0);
    }

    fn global_round_trip(values: &[f64], dict: &GlobalDict) -> Vec<f64> {
        let mut bytes = Vec::new();
        encode_values_global(values, dict, &mut bytes);
        let mut buf = bytes.as_slice();
        let mut out = Vec::new();
        decode_values_global(&mut buf, values.len(), dict.values(), &mut out).unwrap();
        assert!(buf.is_empty(), "global decoder left bytes behind");
        out
    }

    #[test]
    fn global_dict_is_bit_exact_with_and_without_escapes() {
        // Hot values (repeated — enter the dict) mixed with singletons
        // (escape through the split planes).
        let mut values = Vec::new();
        for i in 0..64 {
            values.push([1.0, 0.5, 1.0 / 3.0][i % 3]);
            values.push(1.0 / (i as f64 + 3.0)); // distinct: escapes
        }
        let dict = GlobalDict::build(&values);
        assert!(dict.len() >= 3);
        let back = global_round_trip(&values, &dict);
        assert_eq!(
            values.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            back.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        // All-hit and all-miss sections round-trip too.
        let hits = [1.0, 0.5, 0.5, 1.0 / 3.0];
        assert_eq!(global_round_trip(&hits, &dict), hits);
        let misses = [0.123_456_789, 0.987_654_321e-3];
        assert_eq!(global_round_trip(&misses, &dict), misses);
        // And against an empty dictionary everything escapes.
        assert_eq!(global_round_trip(&misses, &GlobalDict::empty()), misses);
    }

    #[test]
    fn global_dict_orders_by_frequency_deterministically() {
        let mut values = vec![0.25; 10];
        values.extend(std::iter::repeat_n(0.5, 20));
        values.push(0.75); // singleton: excluded
        let dict = GlobalDict::build(&values);
        assert_eq!(dict.values(), &[0.5, 0.25]);
    }

    #[test]
    fn v3_chooser_prefers_global_on_shared_values_raw_on_distinct() {
        let shared: Vec<f64> = (0..256).map(|i| [0.5, 0.25, 0.125][i % 3]).collect();
        let dict = GlobalDict::build(&shared);
        let mut out = Vec::new();
        encode_values_v3(&shared, &dict, &mut out);
        assert_eq!(out[0], TAG_GLOBAL_DICT);
        // ~1 byte per value + the tiny hi-plane header: far below the
        // per-block dict cost (3 × 8 dict bytes + indices).
        assert!(out.len() < shared.len() + 16, "{}", out.len());

        let distinct: Vec<f64> = (0..256).map(|i| 1.0 / (i as f64 + 3.0)).collect();
        let mut out = Vec::new();
        encode_values_v3(&distinct, &GlobalDict::build(&distinct), &mut out);
        // All singletons: empty global dict; escapes cost ≥ raw, so the
        // chooser must fall back to raw.
        assert_eq!(out[0], TAG_RAW_F64);
        assert_eq!(out.len(), 1 + distinct.len() * 8);
    }

    #[test]
    fn global_decoder_rejects_malformed_input() {
        let dict = vec![0.5, 0.25];
        // Code past the dictionary.
        let mut bytes = Vec::new();
        varint::write_u64(&mut bytes, 3); // index 2 into a 2-entry dict
        let mut buf = bytes.as_slice();
        assert!(decode_values_global(&mut buf, 1, &dict, &mut Vec::new()).is_err());
        // Truncated mid-codes.
        let mut buf: &[u8] = &[];
        assert!(decode_values_global(&mut buf, 1, &dict, &mut Vec::new()).is_err());
        // Escape with an empty hi-plane dictionary.
        let mut bytes = Vec::new();
        varint::write_u64(&mut bytes, 0); // escape
        varint::write_u64(&mut bytes, 0); // hi_dict_len = 0
        let mut buf = bytes.as_slice();
        assert!(decode_values_global(&mut buf, 1, &dict, &mut Vec::new()).is_err());
        // Hi-plane dictionary bigger than the escape count.
        let mut bytes = Vec::new();
        varint::write_u64(&mut bytes, 0); // escape
        varint::write_u64(&mut bytes, 5); // hi_dict_len = 5 > 1 escape
        let mut buf = bytes.as_slice();
        assert!(decode_values_global(&mut buf, 1, &dict, &mut Vec::new()).is_err());
        // Hi-plane index past its dictionary.
        let mut bytes = Vec::new();
        varint::write_u64(&mut bytes, 0); // escape
        varint::write_u64(&mut bytes, 1); // hi_dict_len = 1
        bytes.extend_from_slice(&0x3fe0u16.to_le_bytes());
        varint::write_u64(&mut bytes, 9); // hi index 9 past the 1-entry dict
        let mut buf = bytes.as_slice();
        assert!(decode_values_global(&mut buf, 1, &dict, &mut Vec::new()).is_err());
        // Truncated mantissa plane.
        let mut bytes = Vec::new();
        varint::write_u64(&mut bytes, 0);
        varint::write_u64(&mut bytes, 1);
        bytes.extend_from_slice(&0x3fe0u16.to_le_bytes());
        varint::write_u64(&mut bytes, 0);
        bytes.extend_from_slice(&[0u8; 3]); // needs 6
        let mut buf = bytes.as_slice();
        assert!(decode_values_global(&mut buf, 1, &dict, &mut Vec::new()).is_err());
    }

    #[test]
    fn decoders_reject_malformed_input() {
        // Truncated raw section.
        let mut buf: &[u8] = &[0u8; 15];
        assert!(RawF64Codec.decode(&mut buf, 2, &mut Vec::new()).is_err());
        // Dict larger than the block.
        let mut bytes = Vec::new();
        varint::write_u64(&mut bytes, 100);
        let mut buf = bytes.as_slice();
        assert!(DictF64Codec.decode(&mut buf, 3, &mut Vec::new()).is_err());
        // Empty dict for a non-empty block.
        let mut buf: &[u8] = &[0u8];
        assert!(DictF64Codec.decode(&mut buf, 3, &mut Vec::new()).is_err());
        // Index past the dictionary.
        let mut bytes = Vec::new();
        varint::write_u64(&mut bytes, 1);
        bytes.extend_from_slice(&0.5f64.to_le_bytes());
        varint::write_u64(&mut bytes, 7); // index 7 into a 1-entry dict
        let mut buf = bytes.as_slice();
        assert!(DictF64Codec.decode(&mut buf, 1, &mut Vec::new()).is_err());
        // Unknown tag.
        assert!(codec_for_tag(200).is_err());
    }
}
