//! Value-section codecs: how a block's hitting-probability values are
//! laid out in bytes.
//!
//! The step and node columns compress with fixed schemes (run-length and
//! delta-varint — see [`crate::codec::block`]); the value column is where
//! the encodings genuinely compete, so it is behind the
//! [`SectionCodec`] trait with three implementations:
//!
//! * [`RawF64Codec`] — 8 bytes per value, bit-exact. The fallback that
//!   can never lose.
//! * [`DictF64Codec`] — per-block dictionary of distinct bit patterns
//!   plus a varint index per entry, bit-exact. Algorithm 2's local
//!   updates give every step-1 entry of a node the value `√c / |I(v)|`
//!   and step-2 entries repeat across shared in-neighborhoods, so real
//!   blocks hold far fewer distinct values than entries.
//! * [`FixedPointCodec`] — values quantized to `round(v · (2³² − 1))`,
//!   4 bytes each. Lossy (≤ 2⁻³³ absolute error — three orders of
//!   magnitude below any ε the index is built with), flagged in the file
//!   header so readers know scores are no longer bit-identical to the
//!   uncompressed index.
//!
//! The lossless encoder picks the smaller of raw/dict **per block**, so
//! a pathological block (all-distinct values) costs at most one tag byte
//! over the raw layout.

use crate::codec::varint;
use crate::error::SlingError;

fn corrupt(what: impl Into<String>) -> SlingError {
    SlingError::CorruptIndex(what.into())
}

/// A codec for one value section of a block: encodes a `f64` column to
/// bytes and decodes it back, identified by a stable one-byte tag stored
/// in the block header.
pub trait SectionCodec {
    /// Stable on-disk tag identifying this codec.
    fn tag(&self) -> u8;

    /// Whether decoded values are bit-identical to the encoded input.
    fn exact(&self) -> bool;

    /// Append the encoding of `values` to `out`.
    fn encode(&self, values: &[f64], out: &mut Vec<u8>);

    /// Decode exactly `count` values from the front of `buf` (advancing
    /// it) into `out`. Every malformed input must surface as
    /// [`SlingError::CorruptIndex`], never a panic.
    fn decode(&self, buf: &mut &[u8], count: usize, out: &mut Vec<f64>) -> Result<(), SlingError>;
}

/// Tag of [`RawF64Codec`].
pub const TAG_RAW_F64: u8 = 0;
/// Tag of [`DictF64Codec`].
pub const TAG_DICT_F64: u8 = 1;
/// Tag of [`FixedPointCodec`].
pub const TAG_FIXED_U32: u8 = 2;

/// Resolve a block's value codec from its on-disk tag.
pub fn codec_for_tag(tag: u8) -> Result<&'static dyn SectionCodec, SlingError> {
    match tag {
        TAG_RAW_F64 => Ok(&RawF64Codec),
        TAG_DICT_F64 => Ok(&DictF64Codec),
        TAG_FIXED_U32 => Ok(&FixedPointCodec),
        other => Err(corrupt(format!("unknown value codec tag {other}"))),
    }
}

/// Pick the smaller lossless encoding for `values` and append it
/// (tag byte included) to `out`.
pub fn encode_values_lossless(values: &[f64], out: &mut Vec<u8>) {
    let dict_len = dict_cost(values);
    if dict_len < values.len() * 8 {
        out.push(TAG_DICT_F64);
        DictF64Codec.encode(values, out);
    } else {
        out.push(TAG_RAW_F64);
        RawF64Codec.encode(values, out);
    }
}

/// Append the quantized encoding of `values` (tag byte included).
pub fn encode_values_quantized(values: &[f64], out: &mut Vec<u8>) {
    out.push(TAG_FIXED_U32);
    FixedPointCodec.encode(values, out);
}

/// Exact byte cost of the dictionary encoding of `values` (without
/// encoding), used to choose against raw.
fn dict_cost(values: &[f64]) -> usize {
    let mut dict: sling_graph::FxHashMap<u64, u32> = sling_graph::FxHashMap::default();
    let mut index_bytes = 0usize;
    for v in values {
        let next = dict.len() as u32;
        let idx = *dict.entry(v.to_bits()).or_insert(next);
        index_bytes += varint::len_u64(idx as u64);
    }
    varint::len_u64(dict.len() as u64) + dict.len() * 8 + index_bytes
}

/// 8-byte little-endian `f64` per value; bit-exact.
pub struct RawF64Codec;

impl SectionCodec for RawF64Codec {
    fn tag(&self) -> u8 {
        TAG_RAW_F64
    }

    fn exact(&self) -> bool {
        true
    }

    fn encode(&self, values: &[f64], out: &mut Vec<u8>) {
        for v in values {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }

    fn decode(&self, buf: &mut &[u8], count: usize, out: &mut Vec<f64>) -> Result<(), SlingError> {
        let need = count
            .checked_mul(8)
            .ok_or_else(|| corrupt("value count overflows"))?;
        if buf.len() < need {
            return Err(corrupt("truncated raw value section"));
        }
        out.reserve(count);
        for chunk in buf[..need].chunks_exact(8) {
            out.push(f64::from_le_bytes(chunk.try_into().unwrap()));
        }
        *buf = &buf[need..];
        Ok(())
    }
}

/// Per-block dictionary of distinct bit patterns (in first-occurrence
/// order) plus a varint dictionary index per value; bit-exact.
///
/// Layout: `dict_len varint | dict_len × f64 | count × varint index`.
pub struct DictF64Codec;

impl SectionCodec for DictF64Codec {
    fn tag(&self) -> u8 {
        TAG_DICT_F64
    }

    fn exact(&self) -> bool {
        true
    }

    fn encode(&self, values: &[f64], out: &mut Vec<u8>) {
        let mut dict: sling_graph::FxHashMap<u64, u32> = sling_graph::FxHashMap::default();
        let mut order: Vec<u64> = Vec::new();
        let mut indices: Vec<u32> = Vec::with_capacity(values.len());
        for v in values {
            let bits = v.to_bits();
            let next = order.len() as u32;
            let idx = *dict.entry(bits).or_insert_with(|| {
                order.push(bits);
                next
            });
            indices.push(idx);
        }
        varint::write_u64(out, order.len() as u64);
        for bits in order {
            out.extend_from_slice(&bits.to_le_bytes());
        }
        for idx in indices {
            varint::write_u64(out, idx as u64);
        }
    }

    fn decode(&self, buf: &mut &[u8], count: usize, out: &mut Vec<f64>) -> Result<(), SlingError> {
        let dict_len = varint::read_u32(buf)? as usize;
        // A dictionary cannot be larger than the values it describes —
        // reject before allocating from an attacker-controlled length.
        if dict_len > count {
            return Err(corrupt(format!(
                "value dictionary of {dict_len} entries for {count} values"
            )));
        }
        if count > 0 && dict_len == 0 {
            return Err(corrupt("empty value dictionary for a non-empty block"));
        }
        let need = dict_len * 8;
        if buf.len() < need {
            return Err(corrupt("truncated value dictionary"));
        }
        let mut dict = Vec::with_capacity(dict_len);
        for chunk in buf[..need].chunks_exact(8) {
            dict.push(f64::from_le_bytes(chunk.try_into().unwrap()));
        }
        *buf = &buf[need..];
        out.reserve(count);
        for _ in 0..count {
            let idx = varint::read_u32(buf)? as usize;
            let v = dict.get(idx).ok_or_else(|| {
                corrupt(format!("value index {idx} past dictionary ({dict_len})"))
            })?;
            out.push(*v);
        }
        Ok(())
    }
}

/// Quantization scale of [`FixedPointCodec`]: the full `u32` range maps
/// the unit interval.
const FIXED_SCALE: f64 = u32::MAX as f64;

/// Quantize a probability to fixed-point `u32` (clamped to the unit
/// range, so the `1 + 1e-9` tolerance the decoders accept cannot wrap).
#[inline]
pub fn quantize(v: f64) -> u32 {
    (v.clamp(0.0, 1.0) * FIXED_SCALE).round() as u32
}

/// Inverse of [`quantize`].
#[inline]
pub fn dequantize(q: u32) -> f64 {
    q as f64 / FIXED_SCALE
}

/// 4-byte fixed-point values; lossy within `2⁻³³`, flagged file-wide.
pub struct FixedPointCodec;

impl SectionCodec for FixedPointCodec {
    fn tag(&self) -> u8 {
        TAG_FIXED_U32
    }

    fn exact(&self) -> bool {
        false
    }

    fn encode(&self, values: &[f64], out: &mut Vec<u8>) {
        for v in values {
            out.extend_from_slice(&quantize(*v).to_le_bytes());
        }
    }

    fn decode(&self, buf: &mut &[u8], count: usize, out: &mut Vec<f64>) -> Result<(), SlingError> {
        let need = count
            .checked_mul(4)
            .ok_or_else(|| corrupt("value count overflows"))?;
        if buf.len() < need {
            return Err(corrupt("truncated fixed-point value section"));
        }
        out.reserve(count);
        for chunk in buf[..need].chunks_exact(4) {
            out.push(dequantize(u32::from_le_bytes(chunk.try_into().unwrap())));
        }
        *buf = &buf[need..];
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(codec: &dyn SectionCodec, values: &[f64]) -> Vec<f64> {
        let mut bytes = Vec::new();
        codec.encode(values, &mut bytes);
        let mut buf = bytes.as_slice();
        let mut out = Vec::new();
        codec.decode(&mut buf, values.len(), &mut out).unwrap();
        assert!(buf.is_empty(), "decoder left bytes behind");
        out
    }

    #[test]
    fn raw_and_dict_are_bit_exact() {
        let values = [1.0, 1.0 / 3.0, 0.25, 1.0 / 3.0, 1e-300, 0.0, 1.0];
        for codec in [&RawF64Codec as &dyn SectionCodec, &DictF64Codec] {
            let back = round_trip(codec, &values);
            assert!(codec.exact());
            assert_eq!(
                values.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                back.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn dict_wins_on_repetitive_blocks_raw_on_distinct() {
        let repetitive: Vec<f64> = (0..256).map(|i| [0.5, 0.25, 0.125][i % 3]).collect();
        let mut lossless = Vec::new();
        encode_values_lossless(&repetitive, &mut lossless);
        assert_eq!(lossless[0], TAG_DICT_F64);
        assert!(
            lossless.len() < repetitive.len() * 8 / 2,
            "{}",
            lossless.len()
        );

        let distinct: Vec<f64> = (0..256).map(|i| 1.0 / (i as f64 + 3.0)).collect();
        let mut lossless = Vec::new();
        encode_values_lossless(&distinct, &mut lossless);
        assert_eq!(lossless[0], TAG_RAW_F64);
        assert_eq!(lossless.len(), 1 + distinct.len() * 8);
    }

    #[test]
    fn fixed_point_error_is_negligible_and_flagged() {
        let values = [0.0, 1.0, 1.0 / 3.0, 0.999_999_9, 1e-12];
        let back = round_trip(&FixedPointCodec, &values);
        assert!(!FixedPointCodec.exact());
        for (a, b) in values.iter().zip(&back) {
            assert!((a - b).abs() <= 0.5 / (u32::MAX as f64), "{a} vs {b}");
            assert!((0.0..=1.0).contains(b));
        }
        // Exactly representable endpoints survive.
        assert_eq!(back[0], 0.0);
        assert_eq!(back[1], 1.0);
        // Values outside the unit range clamp instead of wrapping.
        assert_eq!(quantize(1.0 + 1e-9), u32::MAX);
        assert_eq!(quantize(-0.5), 0);
    }

    #[test]
    fn decoders_reject_malformed_input() {
        // Truncated raw section.
        let mut buf: &[u8] = &[0u8; 15];
        assert!(RawF64Codec.decode(&mut buf, 2, &mut Vec::new()).is_err());
        // Dict larger than the block.
        let mut bytes = Vec::new();
        varint::write_u64(&mut bytes, 100);
        let mut buf = bytes.as_slice();
        assert!(DictF64Codec.decode(&mut buf, 3, &mut Vec::new()).is_err());
        // Empty dict for a non-empty block.
        let mut buf: &[u8] = &[0u8];
        assert!(DictF64Codec.decode(&mut buf, 3, &mut Vec::new()).is_err());
        // Index past the dictionary.
        let mut bytes = Vec::new();
        varint::write_u64(&mut bytes, 1);
        bytes.extend_from_slice(&0.5f64.to_le_bytes());
        varint::write_u64(&mut bytes, 7); // index 7 into a 1-entry dict
        let mut buf = bytes.as_slice();
        assert!(DictF64Codec.decode(&mut buf, 1, &mut Vec::new()).is_err());
        // Unknown tag.
        assert!(codec_for_tag(200).is_err());
    }
}
