//! LEB128 variable-length integers — the primitive every block encoding
//! in this subsystem is built from.
//!
//! Little-endian base-128: each byte carries 7 payload bits, the high bit
//! flags continuation. Values the payload actually stores — node-id
//! deltas inside a run, run lengths, walk steps, dictionary indices —
//! are overwhelmingly small, so most encode to a single byte; the worst
//! case for a `u64` is 10 bytes.
//!
//! The decoder is hardened for untrusted input: it rejects truncation,
//! overlong encodings past 10 bytes, and overflow of the 64-bit value,
//! always as [`SlingError::CorruptIndex`] — never a panic.

use crate::error::SlingError;

/// Maximum encoded length of a `u64` (⌈64 / 7⌉ bytes).
pub const MAX_VARINT_LEN: usize = 10;

/// Append the LEB128 encoding of `v` to `out`.
#[inline]
pub fn write_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Encoded length of `v` in bytes (without encoding it).
#[inline]
pub fn len_u64(v: u64) -> usize {
    // bits needed, rounded up to 7-bit groups; zero still takes one byte.
    (64 - v.leading_zeros() as usize).max(1).div_ceil(7)
}

/// Decode one LEB128 `u64` from the front of `buf`, advancing it.
#[inline]
pub fn read_u64(buf: &mut &[u8]) -> Result<u64, SlingError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    for (i, &byte) in buf.iter().enumerate() {
        if i >= MAX_VARINT_LEN {
            break;
        }
        let payload = (byte & 0x7f) as u64;
        // The 10th byte may only carry the single remaining bit.
        if shift == 63 && payload > 1 {
            return Err(SlingError::CorruptIndex(
                "varint overflows 64 bits".to_string(),
            ));
        }
        value |= payload << shift;
        if byte & 0x80 == 0 {
            *buf = &buf[i + 1..];
            return Ok(value);
        }
        shift += 7;
    }
    Err(SlingError::CorruptIndex(
        if buf.len() >= MAX_VARINT_LEN {
            "varint longer than 10 bytes"
        } else {
            "truncated varint"
        }
        .to_string(),
    ))
}

/// Decode a varint that must fit `u32` (node ids, run lengths, counts).
#[inline]
pub fn read_u32(buf: &mut &[u8]) -> Result<u32, SlingError> {
    let v = read_u64(buf)?;
    u32::try_from(v)
        .map_err(|_| SlingError::CorruptIndex(format!("varint {v} exceeds the u32 field range")))
}

/// Decode a varint that must fit `u16` (walk steps).
#[inline]
pub fn read_u16(buf: &mut &[u8]) -> Result<u16, SlingError> {
    let v = read_u64(buf)?;
    u16::try_from(v)
        .map_err(|_| SlingError::CorruptIndex(format!("varint {v} exceeds the u16 field range")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_edge_values() {
        for v in [
            0u64,
            1,
            127,
            128,
            255,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut out = Vec::new();
            write_u64(&mut out, v);
            assert_eq!(out.len(), len_u64(v), "length of {v}");
            let mut buf = out.as_slice();
            assert_eq!(read_u64(&mut buf).unwrap(), v);
            assert!(buf.is_empty(), "decoder left bytes behind for {v}");
        }
    }

    #[test]
    fn small_values_take_one_byte() {
        for v in 0..128u64 {
            let mut out = Vec::new();
            write_u64(&mut out, v);
            assert_eq!(out, vec![v as u8]);
        }
    }

    #[test]
    fn rejects_truncation() {
        let mut out = Vec::new();
        write_u64(&mut out, u64::MAX);
        for cut in 0..out.len() {
            let mut buf = &out[..cut];
            assert!(read_u64(&mut buf).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn rejects_overlong_and_overflow() {
        // 11 continuation bytes: too long even if it would terminate.
        let mut buf: &[u8] = &[0x80u8; 11];
        assert!(read_u64(&mut buf).is_err());
        // 10 bytes whose last carries more than the 1 remaining bit.
        let overflow: &[u8] = &[0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x02];
        let mut buf = overflow;
        assert!(read_u64(&mut buf).is_err());
        // The same prefix with a legal final byte is u64::MAX.
        let max: &[u8] = &[0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01];
        let mut buf = max;
        assert_eq!(read_u64(&mut buf).unwrap(), u64::MAX);
    }

    #[test]
    fn narrow_reads_enforce_their_range() {
        let mut out = Vec::new();
        write_u64(&mut out, u16::MAX as u64 + 1);
        assert!(read_u16(&mut out.as_slice()).is_err());
        assert_eq!(read_u32(&mut out.as_slice()).unwrap(), 65_536);
        let mut out = Vec::new();
        write_u64(&mut out, u32::MAX as u64 + 1);
        assert!(read_u32(&mut out.as_slice()).is_err());
    }
}
