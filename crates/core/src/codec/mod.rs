//! Compressed index payloads: light-weight block encodings for the
//! hitting-probability entry sections.
//!
//! The `SLNGIDX1` payload stores three raw parallel arrays — `u16`
//! steps, `u32` node ids, `f64` values — at 14 bytes per entry. That is
//! decode-free but wasteful: within one `(owner, step)` run node ids are
//! a strictly increasing sequence of small gaps, steps repeat for whole
//! runs, and Algorithm 2's local updates hand entire runs the same value
//! (`√c / |I(v)|` for every step-1 entry). This module exploits all
//! three, block-wise, so the out-of-core backends can still decode just
//! the entries a query touches:
//!
//! * [`varint`] — LEB128 integers, the shared primitive;
//! * [`block`] — the independently decodable entry block: steps
//!   run-length coded, node ids delta-coded per run, plus a tagged value
//!   section;
//! * [`value`] — the [`value::SectionCodec`] trait and its three value
//!   codecs (raw `f64`, per-block dictionary, lossy fixed-point `u32`).
//!
//! [`encode_payload`] / [`decode_payload`] turn a whole
//! [`HpArena`](crate::hp::HpArena) payload into blocks and back; the
//! `SLNGIDX2` container around them (header, directory) lives in
//! [`crate::format`], and the query-time block readers in
//! [`crate::store`] ([`crate::store::CompressedMmapArena`]) and
//! [`crate::out_of_core`].
//!
//! Lossless mode (the default) is **bit-exact**: every backend serving a
//! compressed index returns scores bit-identical to the uncompressed
//! one. Quantized mode trades that for 4-byte values (error ≤ 2⁻³³,
//! negligible against any build-time ε) and is flagged in the header.

pub mod block;
pub mod value;
pub mod varint;

pub use block::{
    decode_block, decode_block_with_dict, encode_block, DecodedBlock, ValueMode,
    DEFAULT_BLOCK_ENTRIES,
};
pub use value::{GlobalDict, SectionCodec};

use crate::error::SlingError;

/// Knobs of the `SLNGIDX2` encoder.
#[derive(Clone, Debug)]
pub struct CompressOptions {
    /// Entries per block (the last block may be short). Clamped to
    /// `1..=`[`block::MAX_BLOCK_ENTRIES`] when encoding.
    pub block_entries: usize,
    /// Quantize values to fixed-point `u32` (lossy, ≤ 2⁻³³ absolute
    /// error, flagged in the header). Default `false`: bit-exact.
    pub quantize_values: bool,
}

impl Default for CompressOptions {
    fn default() -> Self {
        CompressOptions {
            block_entries: DEFAULT_BLOCK_ENTRIES,
            quantize_values: false,
        }
    }
}

impl CompressOptions {
    /// Effective entries-per-block after clamping.
    pub fn effective_block_entries(&self) -> usize {
        self.block_entries.clamp(1, block::MAX_BLOCK_ENTRIES)
    }
}

/// Encoded payload: concatenated blocks plus their byte directory.
pub struct EncodedPayload {
    /// Entries per block used by the encoder.
    pub block_entries: usize,
    /// `num_blocks + 1` byte offsets into `bytes`, monotone from 0.
    pub block_offsets: Vec<u64>,
    /// The concatenated encoded blocks.
    pub bytes: Vec<u8>,
}

/// `SLNGIDX3` payload: concatenated blocks, their byte directory, and
/// the cross-block value dictionary every [`block::decode_block_with_dict`]
/// call resolves against (empty under quantization).
pub struct EncodedPayloadV3 {
    /// Entries per block used by the encoder.
    pub block_entries: usize,
    /// `num_blocks + 1` byte offsets into `bytes`, monotone from 0.
    pub block_offsets: Vec<u64>,
    /// The file-wide value dictionary, most frequent first.
    pub global_dict: Vec<f64>,
    /// The concatenated encoded blocks.
    pub bytes: Vec<u8>,
}

/// Encode the three entry columns into blocks. `owner_offsets` is the
/// `(n + 1)`-entry per-node offset table (the run structure every block
/// encoder needs to know where owners change).
pub fn encode_payload(
    steps: &[u16],
    nodes: &[u32],
    values: &[f64],
    owner_offsets: &[u64],
    opts: &CompressOptions,
) -> EncodedPayload {
    let mode = if opts.quantize_values {
        ValueMode::Quantized
    } else {
        ValueMode::Lossless
    };
    encode_payload_with(
        steps,
        nodes,
        values,
        owner_offsets,
        opts.effective_block_entries(),
        mode,
    )
}

/// Encode the three entry columns into an `SLNGIDX3` payload: lossless
/// blocks share one cross-block value dictionary (built here from the
/// whole value column); quantized mode keeps the v2 fixed-point codec
/// and an empty dictionary.
pub fn encode_payload_v3(
    steps: &[u16],
    nodes: &[u32],
    values: &[f64],
    owner_offsets: &[u64],
    opts: &CompressOptions,
) -> EncodedPayloadV3 {
    let dict = if opts.quantize_values {
        GlobalDict::empty()
    } else {
        GlobalDict::build(values)
    };
    let mode = if opts.quantize_values {
        ValueMode::Quantized
    } else {
        ValueMode::Global(&dict)
    };
    let enc = encode_payload_with(
        steps,
        nodes,
        values,
        owner_offsets,
        opts.effective_block_entries(),
        mode,
    );
    EncodedPayloadV3 {
        block_entries: enc.block_entries,
        block_offsets: enc.block_offsets,
        global_dict: dict.values().to_vec(),
        bytes: enc.bytes,
    }
}

fn encode_payload_with(
    steps: &[u16],
    nodes: &[u32],
    values: &[f64],
    owner_offsets: &[u64],
    be: usize,
    mode: ValueMode<'_>,
) -> EncodedPayload {
    let entries = steps.len();
    let num_blocks = entries.div_ceil(be);
    let mut bytes = Vec::new();
    let mut block_offsets = Vec::with_capacity(num_blocks + 1);
    block_offsets.push(0);

    // Owner of each entry, tracked by a cursor over the offset table —
    // O(entries + n) over the whole payload.
    let mut owner = 0usize;
    let mut owners_buf: Vec<u32> = Vec::with_capacity(be);
    for b in 0..num_blocks {
        let lo = b * be;
        let hi = (lo + be).min(entries);
        owners_buf.clear();
        for i in lo..hi {
            while owner + 1 < owner_offsets.len() && owner_offsets[owner + 1] as usize <= i {
                owner += 1;
            }
            owners_buf.push(owner as u32);
        }
        let starts = block::run_starts(&owners_buf, &steps[lo..hi]);
        block::encode_block_with(
            &steps[lo..hi],
            &nodes[lo..hi],
            &values[lo..hi],
            &starts,
            mode,
            &mut bytes,
        );
        block_offsets.push(bytes.len() as u64);
    }
    EncodedPayload {
        block_entries: be,
        block_offsets,
        bytes,
    }
}

/// Decode a whole blocked payload back into the three entry columns
/// (the eager path used by [`crate::SlingIndex::from_bytes`] and the
/// v2 → v1 direction of `sling compact`).
pub fn decode_payload(
    payload: &[u8],
    block_offsets: &[u64],
    block_entries: usize,
    entries: usize,
) -> Result<(Vec<u16>, Vec<u32>, Vec<f64>), SlingError> {
    decode_payload_ctx(payload, block_offsets, block_entries, entries, None)
}

/// Decode a whole `SLNGIDX3` payload back into the three entry columns,
/// resolving global-dictionary value sections against `global_dict`.
pub fn decode_payload_v3(
    payload: &[u8],
    block_offsets: &[u64],
    block_entries: usize,
    entries: usize,
    global_dict: &[f64],
) -> Result<(Vec<u16>, Vec<u32>, Vec<f64>), SlingError> {
    decode_payload_ctx(
        payload,
        block_offsets,
        block_entries,
        entries,
        Some(global_dict),
    )
}

fn decode_payload_ctx(
    payload: &[u8],
    block_offsets: &[u64],
    block_entries: usize,
    entries: usize,
    global_dict: Option<&[f64]>,
) -> Result<(Vec<u16>, Vec<u32>, Vec<f64>), SlingError> {
    let num_blocks = block_offsets.len().saturating_sub(1);
    let mut steps = Vec::with_capacity(entries);
    let mut nodes = Vec::with_capacity(entries);
    let mut values = Vec::with_capacity(entries);
    let mut block = DecodedBlock::default();
    for b in 0..num_blocks {
        let (lo, hi) = (block_offsets[b] as usize, block_offsets[b + 1] as usize);
        if lo > hi || hi > payload.len() {
            return Err(SlingError::CorruptIndex(format!(
                "block {b} byte range {lo}..{hi} escapes the payload ({} bytes)",
                payload.len()
            )));
        }
        let expected = expected_block_len(b, num_blocks, block_entries, entries)?;
        match global_dict {
            Some(dict) => decode_block_with_dict(&payload[lo..hi], expected, dict, &mut block)?,
            None => decode_block(&payload[lo..hi], expected, &mut block)?,
        }
        steps.extend_from_slice(&block.steps);
        nodes.extend_from_slice(&block.nodes);
        values.extend_from_slice(&block.values);
    }
    if steps.len() != entries {
        return Err(SlingError::CorruptIndex(format!(
            "blocks decode to {} entries, header says {entries}",
            steps.len()
        )));
    }
    Ok((steps, nodes, values))
}

/// Entry count block `b` must hold given the file geometry.
pub(crate) fn expected_block_len(
    b: usize,
    num_blocks: usize,
    block_entries: usize,
    entries: usize,
) -> Result<usize, SlingError> {
    if block_entries == 0 || b >= num_blocks {
        return Err(SlingError::CorruptIndex(format!(
            "block index {b} outside the {num_blocks}-block directory"
        )));
    }
    let lo = b * block_entries;
    let hi = (lo + block_entries).min(entries);
    if lo >= hi {
        return Err(SlingError::CorruptIndex(format!(
            "block {b} covers no entries ({entries} total, {block_entries} per block)"
        )));
    }
    Ok(hi - lo)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A payload shaped like real index data: several owners, step runs,
    /// repeated values.
    fn sample_columns() -> (Vec<u16>, Vec<u32>, Vec<f64>, Vec<u64>) {
        let mut steps = Vec::new();
        let mut nodes = Vec::new();
        let mut values = Vec::new();
        let mut offsets = vec![0u64];
        for v in 0..40u32 {
            // step 0: self entry.
            steps.push(0);
            nodes.push(v);
            values.push(1.0);
            // step 1: a few in-neighbours sharing one value.
            let deg = 1 + (v % 4);
            for j in 0..deg {
                steps.push(1);
                nodes.push((v + j * 3) % 40);
                values.push(0.774_596_669_241_483_4 / deg as f64);
            }
            // sort the step-1 nodes we just pushed (they must ascend).
            let lo = steps.len() - deg as usize;
            let mut run: Vec<u32> = nodes[lo..].to_vec();
            run.sort_unstable();
            run.dedup();
            // Rebuild the run without duplicates.
            steps.truncate(lo);
            nodes.truncate(lo);
            values.truncate(lo);
            for &nd in &run {
                steps.push(1);
                nodes.push(nd);
                values.push(0.774_596_669_241_483_4 / deg as f64);
            }
            offsets.push(steps.len() as u64);
        }
        (steps, nodes, values, offsets)
    }

    #[test]
    fn payload_round_trips_across_block_sizes() {
        let (steps, nodes, values, offsets) = sample_columns();
        for be in [1usize, 3, 16, 64, 100_000] {
            let opts = CompressOptions {
                block_entries: be,
                quantize_values: false,
            };
            let enc = encode_payload(&steps, &nodes, &values, &offsets, &opts);
            assert_eq!(
                enc.block_offsets.len(),
                steps.len().div_ceil(enc.block_entries) + 1
            );
            let (s2, n2, v2) = decode_payload(
                &enc.bytes,
                &enc.block_offsets,
                enc.block_entries,
                steps.len(),
            )
            .unwrap();
            assert_eq!(s2, steps, "block_entries = {be}");
            assert_eq!(n2, nodes);
            assert_eq!(
                v2.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                values.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn empty_payload_encodes_to_zero_blocks() {
        let enc = encode_payload(&[], &[], &[], &[0, 0, 0], &CompressOptions::default());
        assert_eq!(enc.block_offsets, vec![0]);
        assert!(enc.bytes.is_empty());
        let (s, n, v) = decode_payload(&[], &enc.block_offsets, enc.block_entries, 0).unwrap();
        assert!(s.is_empty() && n.is_empty() && v.is_empty());
    }

    #[test]
    fn compressed_payload_is_smaller_than_raw() {
        let (steps, nodes, values, offsets) = sample_columns();
        let enc = encode_payload(
            &steps,
            &nodes,
            &values,
            &offsets,
            &CompressOptions::default(),
        );
        let raw = steps.len() * 14;
        assert!(
            enc.bytes.len() * 2 < raw,
            "compressed {} vs raw {raw}",
            enc.bytes.len()
        );
    }

    #[test]
    fn v3_payload_round_trips_bit_exactly_and_is_no_larger_than_v2() {
        let (steps, nodes, values, offsets) = sample_columns();
        let opts = CompressOptions {
            block_entries: 16,
            quantize_values: false,
        };
        let v2 = encode_payload(&steps, &nodes, &values, &offsets, &opts);
        let v3 = encode_payload_v3(&steps, &nodes, &values, &offsets, &opts);
        assert!(
            v3.bytes.len() <= v2.bytes.len(),
            "v3 {} vs v2 {}",
            v3.bytes.len(),
            v2.bytes.len()
        );
        assert!(!v3.global_dict.is_empty());
        let (s, n, v) = decode_payload_v3(
            &v3.bytes,
            &v3.block_offsets,
            v3.block_entries,
            steps.len(),
            &v3.global_dict,
        )
        .unwrap();
        assert_eq!(s, steps);
        assert_eq!(n, nodes);
        assert_eq!(
            v.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            values.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
        // At least one block leans on the shared dictionary, and a v2
        // decoder (no dictionary in scope) refuses that block.
        let num_blocks = v3.block_offsets.len() - 1;
        let mut saw_global = false;
        for b in 0..num_blocks {
            let (lo, hi) = (
                v3.block_offsets[b] as usize,
                v3.block_offsets[b + 1] as usize,
            );
            let expected =
                expected_block_len(b, num_blocks, v3.block_entries, steps.len()).unwrap();
            let sections = block::block_section_sizes(&v3.bytes[lo..hi], expected).unwrap();
            if sections.value_tag == value::TAG_GLOBAL_DICT {
                saw_global = true;
                let mut block = DecodedBlock::default();
                let err = decode_block(&v3.bytes[lo..hi], expected, &mut block).unwrap_err();
                assert!(err.to_string().contains("SLNGIDX3"), "{err}");
            }
        }
        assert!(saw_global, "no block chose the global dictionary");
    }

    #[test]
    fn quantized_v3_payload_matches_v2_block_bytes() {
        let (steps, nodes, values, offsets) = sample_columns();
        let opts = CompressOptions {
            block_entries: 16,
            quantize_values: true,
        };
        let v2 = encode_payload(&steps, &nodes, &values, &offsets, &opts);
        let v3 = encode_payload_v3(&steps, &nodes, &values, &offsets, &opts);
        assert_eq!(v3.bytes, v2.bytes);
        assert!(v3.global_dict.is_empty());
    }

    #[test]
    fn decode_rejects_inconsistent_directories() {
        let (steps, nodes, values, offsets) = sample_columns();
        let opts = CompressOptions {
            block_entries: 16,
            quantize_values: false,
        };
        let enc = encode_payload(&steps, &nodes, &values, &offsets, &opts);
        // Directory escaping the payload.
        let mut bad = enc.block_offsets.clone();
        *bad.last_mut().unwrap() = enc.bytes.len() as u64 + 40;
        assert!(decode_payload(&enc.bytes, &bad, 16, steps.len()).is_err());
        // Wrong total entry count.
        assert!(decode_payload(&enc.bytes, &enc.block_offsets, 16, steps.len() + 1).is_err());
        // Wrong block size.
        assert!(decode_payload(&enc.bytes, &enc.block_offsets, 15, steps.len()).is_err());
    }
}
