//! Independently decodable entry blocks — the unit of the `SLNGIDX2`
//! payload.
//!
//! The global entry array (sorted by `(owner, step, node)`) is cut into
//! fixed-size blocks of [`DEFAULT_BLOCK_ENTRIES`] entries (the last may
//! be short). Each block is self-contained: decoding needs only the
//! block's bytes and its expected entry count, never a neighbouring
//! block — which is what lets the mmap and disk backends decode exactly
//! the blocks a query touches.
//!
//! ## Block layout
//!
//! ```text
//! num_entries  varint                (== expected count, validated)
//! num_runs     varint
//! runs:        num_runs × (step varint, len varint ≥ 1), Σ len == num_entries
//! nodes:       per run: first node absolute varint, then (delta − 1) varints
//! value_tag    u8                    (see crate::codec::value)
//! values:      codec-specific payload, num_entries values
//! ```
//!
//! A *run* is a maximal span of entries sharing one `(owner, step)` key —
//! node ids are strictly increasing inside it, so consecutive deltas are
//! ≥ 1 and `delta − 1` packs the common +1 case into a zero byte. The
//! encoder breaks runs at owner boundaries (two owners may store the same
//! step) and at block boundaries (independence), which is why run
//! boundaries are an encoder input rather than derived from the step
//! column.
//!
//! The decoder validates everything: counts against the directory,
//! run-length sums, node-id overflow, value-section length, and that the
//! block's bytes are consumed exactly. Any violation is
//! [`SlingError::CorruptIndex`]; no input may panic.

use crate::codec::value::{
    codec_for_tag, decode_values_global, encode_values_lossless, encode_values_quantized,
    encode_values_v3, GlobalDict, TAG_GLOBAL_DICT,
};
use crate::codec::varint;
use crate::error::SlingError;

/// Default entries per block: big enough that the per-block dictionary
/// and directory overhead amortize, small enough that decoding a block
/// to serve one `O(1/ε)` entry run stays cheap.
pub const DEFAULT_BLOCK_ENTRIES: usize = 1024;

/// Hard ceiling on entries per block, bounding what a corrupt directory
/// can make a decoder allocate.
pub const MAX_BLOCK_ENTRIES: usize = 1 << 20;

fn corrupt(what: impl Into<String>) -> SlingError {
    SlingError::CorruptIndex(what.into())
}

/// Lane width of the chunked validation sweeps ([`max_node`],
/// [`values_all_probabilities`] and the raw-section sweep in
/// `crate::store::validate_raw_le`): the folds process this many
/// independent accumulators per stripe so the compiler can keep them in
/// vector registers, with a scalar tail for the remainder.
pub(crate) const SWEEP_LANES: usize = 8;

/// Upper probability bound the validators accept: the exact tolerance of
/// `crate::store::check_value`, shared so the wide sweeps and the
/// per-entry rescans can never disagree on what passes.
pub(crate) const MAX_PROBABILITY: f64 = 1.0 + 1e-9;

/// Maximum node id in a decoded node column — a lane-parallel max fold.
/// Callers compare the result against `n` once and only a failing column
/// pays a per-entry rescan to name the offending entry.
pub(crate) fn max_node(nodes: &[u32]) -> u32 {
    let mut lanes = [0u32; SWEEP_LANES];
    let mut chunks = nodes.chunks_exact(SWEEP_LANES);
    for stripe in &mut chunks {
        for (m, &v) in lanes.iter_mut().zip(stripe) {
            *m = (*m).max(v);
        }
    }
    let mut max = lanes.into_iter().max().unwrap_or(0);
    for &v in chunks.remainder() {
        max = max.max(v);
    }
    max
}

/// Whether every value is a finite probability in
/// `0.0..=`[`MAX_PROBABILITY`] — a lane-parallel boolean fold.
///
/// The per-lane predicate `(v >= 0.0) & (v <= MAX_PROBABILITY)` is
/// exactly `v.is_finite() && (0.0..=MAX_PROBABILITY).contains(&v)`:
/// NaN fails both comparisons and ±∞ fails one, so the explicit
/// finiteness test is redundant and the fold stays two branchless
/// compares per lane.
// The two non-short-circuit compares are the point; `contains` is `&&`.
#[allow(clippy::manual_range_contains)]
pub(crate) fn values_all_probabilities(values: &[f64]) -> bool {
    let mut lanes = [true; SWEEP_LANES];
    let mut chunks = values.chunks_exact(SWEEP_LANES);
    for stripe in &mut chunks {
        for (ok, &v) in lanes.iter_mut().zip(stripe) {
            *ok &= (v >= 0.0) & (v <= MAX_PROBABILITY);
        }
    }
    let mut all = lanes.into_iter().all(|ok| ok);
    for &v in chunks.remainder() {
        all &= (v >= 0.0) & (v <= MAX_PROBABILITY);
    }
    all
}

/// One decoded block: the three entry columns, parallel and
/// `num_entries` long. Reused across decodes (buffers are cleared, not
/// reallocated) and shared via `Arc` by the block caches.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DecodedBlock {
    pub steps: Vec<u16>,
    pub nodes: Vec<u32>,
    pub values: Vec<f64>,
}

impl DecodedBlock {
    /// Entries held.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the block holds no entries.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    fn clear(&mut self) {
        self.steps.clear();
        self.nodes.clear();
        self.values.clear();
    }
}

/// Value-section encoding mode of [`encode_block_with`].
#[derive(Clone, Copy)]
pub enum ValueMode<'a> {
    /// v2 lossless: the smaller of raw/per-block-dictionary.
    Lossless,
    /// Lossy fixed-point `u32` (flagged file-wide).
    Quantized,
    /// v3 lossless: cross-block [`GlobalDict`] with split-plane escapes,
    /// falling back to raw/per-block-dictionary per block by exact cost.
    Global(&'a GlobalDict),
}

/// Encode one block. `run_starts` lists the local indices (ascending,
/// starting with 0) where a new `(owner, step)` run begins; the columns
/// must be equally long and non-empty.
///
/// `quantize_values` selects the lossy fixed-point value codec; the
/// default lossless path picks the smaller of raw/dictionary per block.
/// (The v3 encoder calls [`encode_block_with`] directly.)
pub fn encode_block(
    steps: &[u16],
    nodes: &[u32],
    values: &[f64],
    run_starts: &[usize],
    quantize_values: bool,
    out: &mut Vec<u8>,
) {
    let mode = if quantize_values {
        ValueMode::Quantized
    } else {
        ValueMode::Lossless
    };
    encode_block_with(steps, nodes, values, run_starts, mode, out)
}

/// Encode one block with an explicit value-section mode (see
/// [`ValueMode`]); the step/node column encodings are identical across
/// modes and format generations.
pub fn encode_block_with(
    steps: &[u16],
    nodes: &[u32],
    values: &[f64],
    run_starts: &[usize],
    mode: ValueMode<'_>,
    out: &mut Vec<u8>,
) {
    let count = steps.len();
    debug_assert!(count > 0, "empty blocks are never written");
    debug_assert_eq!(nodes.len(), count);
    debug_assert_eq!(values.len(), count);
    debug_assert_eq!(run_starts.first(), Some(&0));

    varint::write_u64(out, count as u64);
    varint::write_u64(out, run_starts.len() as u64);

    // Run directory: (step, length) per run.
    for (i, &start) in run_starts.iter().enumerate() {
        let end = run_starts.get(i + 1).copied().unwrap_or(count);
        debug_assert!(start < end, "empty run at {start}");
        varint::write_u64(out, steps[start] as u64);
        varint::write_u64(out, (end - start) as u64);
    }

    // Node column: absolute first id per run, then gap − 1 deltas.
    for (i, &start) in run_starts.iter().enumerate() {
        let end = run_starts.get(i + 1).copied().unwrap_or(count);
        varint::write_u64(out, nodes[start] as u64);
        for j in start + 1..end {
            debug_assert!(nodes[j] > nodes[j - 1], "run not strictly increasing");
            varint::write_u64(out, (nodes[j] - nodes[j - 1] - 1) as u64);
        }
    }

    // Value column, behind its codec tag.
    match mode {
        ValueMode::Quantized => encode_values_quantized(values, out),
        ValueMode::Lossless => encode_values_lossless(values, out),
        ValueMode::Global(dict) => encode_values_v3(values, dict, out),
    }
}

/// Decode one block into `out` (cleared first), validating it holds
/// exactly `expected_entries` entries and consumes `bytes` exactly.
/// v1/v2 context: a [`TAG_GLOBAL_DICT`] value section is rejected.
pub fn decode_block(
    bytes: &[u8],
    expected_entries: usize,
    out: &mut DecodedBlock,
) -> Result<(), SlingError> {
    decode_block_ctx(bytes, expected_entries, None, out)
}

/// Decode one block of an `SLNGIDX3` payload: like [`decode_block`],
/// additionally resolving [`TAG_GLOBAL_DICT`] value sections against the
/// file's resident global dictionary.
pub fn decode_block_with_dict(
    bytes: &[u8],
    expected_entries: usize,
    global_dict: &[f64],
    out: &mut DecodedBlock,
) -> Result<(), SlingError> {
    decode_block_ctx(bytes, expected_entries, Some(global_dict), out)
}

fn decode_block_ctx(
    bytes: &[u8],
    expected_entries: usize,
    global_dict: Option<&[f64]>,
    out: &mut DecodedBlock,
) -> Result<(), SlingError> {
    out.clear();
    if expected_entries == 0 || expected_entries > MAX_BLOCK_ENTRIES {
        return Err(corrupt(format!(
            "block directory expects {expected_entries} entries (valid: 1..={MAX_BLOCK_ENTRIES})"
        )));
    }
    let mut buf = bytes;
    let count = varint::read_u32(&mut buf)? as usize;
    if count != expected_entries {
        return Err(corrupt(format!(
            "block holds {count} entries, directory says {expected_entries}"
        )));
    }
    let num_runs = varint::read_u32(&mut buf)? as usize;
    if num_runs == 0 || num_runs > count {
        return Err(corrupt(format!(
            "block of {count} entries claims {num_runs} runs"
        )));
    }

    // Run directory.
    let mut run_lens = Vec::with_capacity(num_runs);
    out.steps.reserve(count);
    let mut total = 0usize;
    for _ in 0..num_runs {
        let step = varint::read_u16(&mut buf)?;
        let len = varint::read_u32(&mut buf)? as usize;
        if len == 0 {
            return Err(corrupt("zero-length run"));
        }
        total += len;
        if total > count {
            return Err(corrupt("run lengths exceed the block entry count"));
        }
        for _ in 0..len {
            out.steps.push(step);
        }
        run_lens.push(len);
    }
    if total != count {
        return Err(corrupt(format!(
            "run lengths cover {total} of {count} entries"
        )));
    }

    // Node column.
    out.nodes.reserve(count);
    for &len in &run_lens {
        let mut node = varint::read_u32(&mut buf)?;
        out.nodes.push(node);
        for _ in 1..len {
            let gap = varint::read_u32(&mut buf)? as u64;
            let next = node as u64 + gap + 1;
            node = u32::try_from(next)
                .map_err(|_| corrupt(format!("node delta overflows u32 ({next})")))?;
            out.nodes.push(node);
        }
    }

    // Value column.
    if buf.is_empty() {
        return Err(corrupt("block truncated before the value section"));
    }
    let tag = buf[0];
    buf = &buf[1..];
    match (tag, global_dict) {
        (TAG_GLOBAL_DICT, Some(dict)) => {
            decode_values_global(&mut buf, count, dict, &mut out.values)?
        }
        (TAG_GLOBAL_DICT, None) => {
            return Err(corrupt(
                "global-dictionary value section outside an SLNGIDX3 payload",
            ));
        }
        _ => codec_for_tag(tag)?.decode(&mut buf, count, &mut out.values)?,
    }

    if !buf.is_empty() {
        return Err(corrupt(format!(
            "{} trailing bytes after the block payload",
            buf.len()
        )));
    }
    Ok(())
}

/// Per-section byte sizes of one encoded block, as reported by
/// [`block_section_sizes`] for `sling inspect` attribution.
#[derive(Clone, Copy, Debug, Default)]
pub struct BlockSections {
    /// Entry/run counts plus the run directory.
    pub header_bytes: usize,
    /// Delta-coded node column.
    pub node_bytes: usize,
    /// Codec tag of the value section (see `crate::codec::value`).
    pub value_tag: u8,
    /// Value section, including its tag byte.
    pub value_bytes: usize,
}

/// Measure where a block's bytes go, section by section, without
/// materializing its columns. Framing (counts, run shapes, varint
/// truncation) is validated; node-id ranges and value payloads are not —
/// callers wanting full validation decode the block instead.
pub fn block_section_sizes(
    bytes: &[u8],
    expected_entries: usize,
) -> Result<BlockSections, SlingError> {
    if expected_entries == 0 || expected_entries > MAX_BLOCK_ENTRIES {
        return Err(corrupt(format!(
            "block directory expects {expected_entries} entries (valid: 1..={MAX_BLOCK_ENTRIES})"
        )));
    }
    let mut buf = bytes;
    let count = varint::read_u32(&mut buf)? as usize;
    if count != expected_entries {
        return Err(corrupt(format!(
            "block holds {count} entries, directory says {expected_entries}"
        )));
    }
    let num_runs = varint::read_u32(&mut buf)? as usize;
    if num_runs == 0 || num_runs > count {
        return Err(corrupt(format!(
            "block of {count} entries claims {num_runs} runs"
        )));
    }
    let mut run_lens = Vec::with_capacity(num_runs);
    let mut total = 0usize;
    for _ in 0..num_runs {
        let _step = varint::read_u16(&mut buf)?;
        let len = varint::read_u32(&mut buf)? as usize;
        if len == 0 {
            return Err(corrupt("zero-length run"));
        }
        total += len;
        if total > count {
            return Err(corrupt("run lengths exceed the block entry count"));
        }
        run_lens.push(len);
    }
    if total != count {
        return Err(corrupt(format!(
            "run lengths cover {total} of {count} entries"
        )));
    }
    let header_bytes = bytes.len() - buf.len();

    // Node column: per run one absolute id plus len − 1 deltas.
    for &len in &run_lens {
        for _ in 0..len {
            varint::read_u64(&mut buf)?;
        }
    }
    let node_bytes = bytes.len() - buf.len() - header_bytes;

    if buf.is_empty() {
        return Err(corrupt("block truncated before the value section"));
    }
    Ok(BlockSections {
        header_bytes,
        node_bytes,
        value_tag: buf[0],
        value_bytes: buf.len(),
    })
}

/// Compute the local run-start indices for a block slice, given the
/// owner of each entry. `owners` and `steps` are the block's columns; a
/// run breaks when either changes (and implicitly at the block start).
pub fn run_starts(owners: &[u32], steps: &[u16]) -> Vec<usize> {
    let mut starts = Vec::new();
    for i in 0..steps.len() {
        if i == 0 || owners[i] != owners[i - 1] || steps[i] != steps[i - 1] {
            starts.push(i);
        }
    }
    starts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(steps: &[u16], nodes: &[u32], values: &[f64], owners: &[u32], quantize: bool) {
        let starts = run_starts(owners, steps);
        let mut bytes = Vec::new();
        encode_block(steps, nodes, values, &starts, quantize, &mut bytes);
        let mut block = DecodedBlock::default();
        decode_block(&bytes, steps.len(), &mut block).unwrap();
        assert_eq!(block.steps, steps);
        assert_eq!(block.nodes, nodes);
        if quantize {
            for (a, b) in values.iter().zip(&block.values) {
                assert!((a - b).abs() <= 0.5 / (u32::MAX as f64));
            }
        } else {
            assert_eq!(
                block.values.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                values.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn round_trips_multi_owner_multi_step_blocks() {
        // Owner 3: step 0 {3}, step 1 {0, 1, 9}; owner 4: step 1 {2, 7}.
        let owners = [3u32, 3, 3, 3, 4, 4];
        let steps = [0u16, 1, 1, 1, 1, 1];
        let nodes = [3u32, 0, 1, 9, 2, 7];
        let values = [1.0, 0.5, 0.5, 0.5, 1.0 / 3.0, 1.0 / 3.0];
        round_trip(&steps, &nodes, &values, &owners, false);
        round_trip(&steps, &nodes, &values, &owners, true);
    }

    #[test]
    fn adjacent_owners_with_equal_steps_stay_separate_runs() {
        let owners = [1u32, 1, 2, 2];
        let steps = [1u16, 1, 1, 1];
        let starts = run_starts(&owners, &steps);
        assert_eq!(starts, vec![0, 2]);
        // Node ids may go *backwards* across the owner boundary; the
        // absolute restart per run makes that legal.
        let nodes = [5u32, 9, 2, 3];
        let values = [0.1, 0.2, 0.3, 0.4];
        round_trip(&steps, &nodes, &values, &owners, false);
    }

    #[test]
    fn max_delta_ids_round_trip() {
        let owners = [0u32, 0, 0];
        let steps = [2u16, 2, 2];
        let nodes = [0u32, 1, u32::MAX];
        let values = [0.5, 0.25, 0.125];
        round_trip(&steps, &nodes, &values, &owners, false);
    }

    #[test]
    fn single_entry_block() {
        round_trip(&[7], &[42], &[0.125], &[9], false);
    }

    #[test]
    fn rejects_count_mismatch_and_zero_expectation() {
        let mut bytes = Vec::new();
        encode_block(&[0, 0], &[1, 2], &[0.5, 0.5], &[0], false, &mut bytes);
        let mut block = DecodedBlock::default();
        assert!(decode_block(&bytes, 3, &mut block).is_err());
        assert!(decode_block(&bytes, 0, &mut block).is_err());
        assert!(decode_block(&bytes, MAX_BLOCK_ENTRIES + 1, &mut block).is_err());
        assert!(decode_block(&bytes, 2, &mut block).is_ok());
    }

    #[test]
    fn rejects_trailing_garbage_and_truncation() {
        let mut bytes = Vec::new();
        encode_block(&[0, 1], &[4, 4], &[1.0, 0.5], &[0, 1], false, &mut bytes);
        let mut block = DecodedBlock::default();
        decode_block(&bytes, 2, &mut block).unwrap();
        // Every truncation errors.
        for cut in 0..bytes.len() {
            assert!(
                decode_block(&bytes[..cut], 2, &mut block).is_err(),
                "cut {cut} accepted"
            );
        }
        // Trailing garbage errors.
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(decode_block(&extended, 2, &mut block).is_err());
    }

    #[test]
    fn rejects_node_overflow() {
        // One run of two entries whose delta pushes past u32::MAX.
        let mut bytes = Vec::new();
        varint::write_u64(&mut bytes, 2); // entries
        varint::write_u64(&mut bytes, 1); // runs
        varint::write_u64(&mut bytes, 0); // step
        varint::write_u64(&mut bytes, 2); // run len
        varint::write_u64(&mut bytes, u32::MAX as u64); // first node
        varint::write_u64(&mut bytes, 0); // delta-1 = 0 -> node u32::MAX + 1
        bytes.push(super::super::value::TAG_RAW_F64);
        bytes.extend_from_slice(&0.5f64.to_le_bytes());
        bytes.extend_from_slice(&0.5f64.to_le_bytes());
        let mut block = DecodedBlock::default();
        let err = decode_block(&bytes, 2, &mut block).unwrap_err();
        assert!(err.to_string().contains("overflow"), "{err}");
    }

    #[test]
    fn rejects_bad_run_shapes() {
        let mut block = DecodedBlock::default();
        // Zero runs for a non-empty block.
        let mut bytes = Vec::new();
        varint::write_u64(&mut bytes, 1);
        varint::write_u64(&mut bytes, 0);
        assert!(decode_block(&bytes, 1, &mut block).is_err());
        // Zero-length run.
        let mut bytes = Vec::new();
        varint::write_u64(&mut bytes, 1);
        varint::write_u64(&mut bytes, 1);
        varint::write_u64(&mut bytes, 0); // step
        varint::write_u64(&mut bytes, 0); // len 0
        assert!(decode_block(&bytes, 1, &mut block).is_err());
        // Run lengths overshooting the count.
        let mut bytes = Vec::new();
        varint::write_u64(&mut bytes, 2);
        varint::write_u64(&mut bytes, 1);
        varint::write_u64(&mut bytes, 0);
        varint::write_u64(&mut bytes, 5);
        assert!(decode_block(&bytes, 2, &mut block).is_err());
    }
}
