//! Parallel batch query execution.
//!
//! Index construction is not the only embarrassingly parallel part of
//! SLING: queries share the immutable store and graph, so a batch of
//! single-pair or single-source queries shards across threads with zero
//! synchronization beyond an atomic work cursor. This is the engine the
//! accuracy experiments (Figures 5–7 compute all-pairs scores) and any
//! bulk-scoring application (link-prediction sweeps, offline
//! recommendation refreshes) want.
//!
//! Work is claimed in fixed blocks from an atomic counter — the same
//! skew-balancing scheme as [`crate::parallel`] — and every output slot
//! is written by exactly one worker, so results are deterministic and
//! identical to the serial path. The cores are generic over
//! [`HpStore`]`: Sync`, so batches run against the in-memory arena, the
//! mmap backend, or a buffer-pooled disk store alike; a failing store
//! read aborts the batch with the first error observed.

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;
use sling_graph::{DiGraph, NodeId};

use crate::cache::ShardedResultCache;
use crate::error::SlingError;
use crate::index::{QueryWorkspace, SlingIndex};
use crate::single_pair::single_pair_core;
use crate::single_source::{single_source_core, SingleSourceWorkspace};
use crate::store::{EngineRef, HpStore, SharedEngine};

/// Pairs/sources claimed per atomic fetch.
const BLOCK: usize = 32;

/// Disjoint mutable block views over an output slice, handed to workers.
/// Safe because blocks are claimed exactly once from the atomic cursor.
struct SlotWriter<T> {
    base: *mut T,
    len: usize,
}
unsafe impl<T: Send> Sync for SlotWriter<T> {}

impl<T> SlotWriter<T> {
    fn new(slice: &mut [T]) -> Self {
        SlotWriter {
            base: slice.as_mut_ptr(),
            len: slice.len(),
        }
    }

    /// # Safety
    /// Each index must be written by at most one thread, which the
    /// block-claiming cursor guarantees.
    unsafe fn write(&self, i: usize, value: T) {
        debug_assert!(i < self.len);
        unsafe { self.base.add(i).write(value) };
    }
}

/// Record the first store error a worker hit; later errors are dropped.
fn record_error(slot: &Mutex<Option<SlingError>>, err: SlingError) {
    let mut guard = slot.lock();
    if guard.is_none() {
        *guard = Some(err);
    }
}

/// Batched Algorithm 3 over any `Sync` storage backend.
pub(crate) fn batch_single_pair_core<S: HpStore + Sync>(
    e: EngineRef<'_, S>,
    graph: &DiGraph,
    pairs: &[(NodeId, NodeId)],
    threads: usize,
) -> Result<Vec<f64>, SlingError> {
    let mut out = vec![0.0; pairs.len()];
    let threads = threads.max(1).min(pairs.len().max(1));
    if threads == 1 {
        let mut ws = QueryWorkspace::new();
        for (slot, &(u, v)) in out.iter_mut().zip(pairs) {
            *slot = single_pair_core(e, graph, &mut ws, u, v)?;
        }
        return Ok(out);
    }
    let cursor = AtomicUsize::new(0);
    let first_error: Mutex<Option<SlingError>> = Mutex::new(None);
    let writer = SlotWriter::new(&mut out);
    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| {
                let mut ws = QueryWorkspace::new();
                'outer: loop {
                    let lo = cursor.fetch_add(BLOCK, Ordering::Relaxed);
                    if lo >= pairs.len() {
                        break;
                    }
                    let hi = (lo + BLOCK).min(pairs.len());
                    // Advise the backend about the whole claimed block up
                    // front: out-of-core stores stage all 2·BLOCK entry
                    // ranges with batched readahead instead of faulting
                    // them in one query at a time (no-op for resident
                    // backends).
                    for &(u, v) in &pairs[lo..hi] {
                        e.store.prefetch(u);
                        e.store.prefetch(v);
                    }
                    for (i, &(u, v)) in pairs[lo..hi].iter().enumerate() {
                        match single_pair_core(e, graph, &mut ws, u, v) {
                            // SAFETY: block [lo, hi) is claimed exactly once.
                            Ok(s) => unsafe { writer.write(lo + i, s) },
                            Err(err) => {
                                record_error(&first_error, err);
                                break 'outer;
                            }
                        }
                    }
                }
            });
        }
    })
    .expect("batch query worker panicked");
    match first_error.into_inner() {
        Some(err) => Err(err),
        None => Ok(out),
    }
}

/// Batched Algorithm 6 over any `Sync` storage backend.
pub(crate) fn batch_single_source_core<S: HpStore + Sync>(
    e: EngineRef<'_, S>,
    graph: &DiGraph,
    sources: &[NodeId],
    threads: usize,
) -> Result<Vec<Vec<f64>>, SlingError> {
    let mut out: Vec<Vec<f64>> = vec![Vec::new(); sources.len()];
    let threads = threads.max(1).min(sources.len().max(1));
    if threads == 1 {
        let mut ws = SingleSourceWorkspace::new();
        for (slot, &u) in out.iter_mut().zip(sources) {
            single_source_core(e, graph, &mut ws, u, slot)?;
        }
        return Ok(out);
    }
    let cursor = AtomicUsize::new(0);
    let first_error: Mutex<Option<SlingError>> = Mutex::new(None);
    let writer = SlotWriter::new(&mut out);
    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| {
                let mut ws = SingleSourceWorkspace::new();
                'outer: loop {
                    let lo = cursor.fetch_add(BLOCK, Ordering::Relaxed);
                    if lo >= sources.len() {
                        break;
                    }
                    let hi = (lo + BLOCK).min(sources.len());
                    for (i, &u) in sources[lo..hi].iter().enumerate() {
                        let mut scores = Vec::new();
                        match single_source_core(e, graph, &mut ws, u, &mut scores) {
                            // SAFETY: block [lo, hi) is claimed exactly once.
                            Ok(()) => unsafe { writer.write(lo + i, scores) },
                            Err(err) => {
                                record_error(&first_error, err);
                                break 'outer;
                            }
                        }
                    }
                }
            });
        }
    })
    .expect("batch query worker panicked");
    match first_error.into_inner() {
        Some(err) => Err(err),
        None => Ok(out),
    }
}

impl<S: HpStore + Sync> SharedEngine<S> {
    /// Batched Algorithm 3 memoized through a shared
    /// [`ShardedResultCache`] — the bulk analogue of
    /// [`SharedEngine::single_pair_cached`], and the path the CLI batch
    /// and server workloads share. Each pair is canonicalized before
    /// computing, so results are positionally aligned with `pairs` and
    /// bit-identical to the serial canonical answers regardless of
    /// thread count, cache state, or which worker populated an entry.
    ///
    /// Node ids are validated per pair inside the query path (no
    /// duplicate up-front sweep); an out-of-range pair aborts the batch
    /// with the first error observed, possibly after earlier pairs have
    /// populated the cache — harmless, since entries are immutable.
    pub fn batch_single_pair_cached(
        &self,
        graph: &DiGraph,
        pairs: &[(NodeId, NodeId)],
        threads: usize,
        cache: &ShardedResultCache,
    ) -> Result<Vec<f64>, SlingError> {
        let mut out = vec![0.0; pairs.len()];
        let threads = threads.max(1).min(pairs.len().max(1));
        let run_one = |ws: &mut QueryWorkspace, u: NodeId, v: NodeId| {
            self.single_pair_cached(graph, ws, cache, u, v)
        };
        if threads == 1 {
            let mut ws = QueryWorkspace::new();
            for (slot, &(u, v)) in out.iter_mut().zip(pairs) {
                *slot = run_one(&mut ws, u, v)?;
            }
            return Ok(out);
        }
        let cursor = AtomicUsize::new(0);
        let first_error: Mutex<Option<SlingError>> = Mutex::new(None);
        let writer = SlotWriter::new(&mut out);
        crossbeam::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|_| {
                    let mut ws = QueryWorkspace::new();
                    'outer: loop {
                        let lo = cursor.fetch_add(BLOCK, Ordering::Relaxed);
                        if lo >= pairs.len() {
                            break;
                        }
                        let hi = (lo + BLOCK).min(pairs.len());
                        for (i, &(u, v)) in pairs[lo..hi].iter().enumerate() {
                            match run_one(&mut ws, u, v) {
                                // SAFETY: block [lo, hi) is claimed exactly once.
                                Ok(s) => unsafe { writer.write(lo + i, s) },
                                Err(err) => {
                                    record_error(&first_error, err);
                                    break 'outer;
                                }
                            }
                        }
                    }
                });
            }
        })
        .expect("batch query worker panicked");
        match first_error.into_inner() {
            Some(err) => Err(err),
            None => Ok(out),
        }
    }
}

impl SlingIndex {
    /// Evaluate a batch of single-pair queries on `threads` workers.
    /// Results are positionally aligned with `pairs` and identical to
    /// the serial answers.
    pub fn batch_single_pair(
        &self,
        graph: &DiGraph,
        pairs: &[(NodeId, NodeId)],
        threads: usize,
    ) -> Vec<f64> {
        batch_single_pair_core(self.engine_ref(), graph, pairs, threads)
            .expect("in-memory HP store cannot fail")
    }

    /// Evaluate single-source queries from every node in `sources` on
    /// `threads` workers; `result[i]` is the full score vector of
    /// `sources[i]`.
    pub fn batch_single_source(
        &self,
        graph: &DiGraph,
        sources: &[NodeId],
        threads: usize,
    ) -> Vec<Vec<f64>> {
        batch_single_source_core(self.engine_ref(), graph, sources, threads)
            .expect("in-memory HP store cannot fail")
    }

    /// All-pairs scores as `n` single-source rows (the Figures 5–7
    /// protocol), parallelized over sources.
    pub fn all_pairs(&self, graph: &DiGraph, threads: usize) -> Vec<Vec<f64>> {
        let sources: Vec<NodeId> = graph.nodes().collect();
        self.batch_single_source(graph, &sources, threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SlingConfig;
    use sling_graph::generators::{barabasi_albert, two_cliques_bridge};

    const C: f64 = 0.6;

    fn build(g: &DiGraph) -> SlingIndex {
        SlingIndex::build(g, &SlingConfig::from_epsilon(C, 0.1).with_seed(21)).unwrap()
    }

    #[test]
    fn batch_pairs_match_serial_for_any_thread_count() {
        let g = barabasi_albert(300, 3, 3).unwrap();
        let idx = build(&g);
        let pairs: Vec<(NodeId, NodeId)> = (0..257u32)
            .map(|i| (NodeId(i % 300), NodeId((i * 7 + 1) % 300)))
            .collect();
        let serial = idx.batch_single_pair(&g, &pairs, 1);
        for threads in [2, 3, 8] {
            let parallel = idx.batch_single_pair(&g, &pairs, threads);
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn batch_sources_match_serial() {
        let g = two_cliques_bridge(6);
        let idx = build(&g);
        let sources: Vec<NodeId> = g.nodes().collect();
        let serial = idx.batch_single_source(&g, &sources, 1);
        let parallel = idx.batch_single_source(&g, &sources, 4);
        assert_eq!(serial, parallel);
        // And each row matches the direct query.
        for (i, &u) in sources.iter().enumerate() {
            assert_eq!(serial[i], idx.single_source(&g, u));
        }
    }

    #[test]
    fn all_pairs_is_square_and_diagonal_one() {
        let g = two_cliques_bridge(4);
        let idx = build(&g);
        let all = idx.all_pairs(&g, 3);
        assert_eq!(all.len(), 8);
        for (i, row) in all.iter().enumerate() {
            assert_eq!(row.len(), 8);
            assert_eq!(row[i], 1.0);
        }
    }

    #[test]
    fn empty_batches_are_fine() {
        let g = two_cliques_bridge(3);
        let idx = build(&g);
        assert!(idx.batch_single_pair(&g, &[], 4).is_empty());
        assert!(idx.batch_single_source(&g, &[], 4).is_empty());
    }

    #[test]
    fn cached_batch_matches_canonical_serial_for_any_thread_count() {
        let g = barabasi_albert(200, 3, 9).unwrap();
        let idx = build(&g);
        let pairs: Vec<(NodeId, NodeId)> = (0..300u32)
            .map(|i| (NodeId(i % 200), NodeId((i * 13 + 5) % 200)))
            .collect();
        // Reference: canonical-order serial answers.
        let want: Vec<f64> = pairs
            .iter()
            .map(|&(u, v)| {
                let (a, b) = (u.0.min(v.0), u.0.max(v.0));
                idx.single_pair(&g, NodeId(a), NodeId(b))
            })
            .collect();
        let engine: SharedEngine<crate::hp::HpArena> = idx.into();
        for threads in [1, 4, 8] {
            let cache = ShardedResultCache::new(128, 8);
            let got = engine
                .batch_single_pair_cached(&g, &pairs, threads, &cache)
                .unwrap();
            assert_eq!(got, want, "threads = {threads}");
            // Run the same batch again: now dominated by hits, same bits.
            let again = engine
                .batch_single_pair_cached(&g, &pairs, threads, &cache)
                .unwrap();
            assert_eq!(again, want, "threads = {threads} (warm)");
            let s = cache.stats();
            assert!(s.hits > 0, "threads = {threads}: {s:?}");
        }
        assert!(matches!(
            engine.batch_single_pair_cached(
                &g,
                &[(NodeId(0), NodeId(9999))],
                2,
                &ShardedResultCache::with_capacity(8)
            ),
            Err(SlingError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn oversubscribed_threads_clamp() {
        let g = two_cliques_bridge(3);
        let idx = build(&g);
        let pairs = vec![(NodeId(0), NodeId(1))];
        let got = idx.batch_single_pair(&g, &pairs, 64);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0], idx.single_pair(&g, NodeId(0), NodeId(1)));
    }
}
