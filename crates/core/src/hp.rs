//! Hitting-probability entries and their packed arena storage.

use sling_graph::NodeId;

/// One approximate hitting probability `h̃⁽ˢᵗᵉᵖ⁾(owner, node) = value`,
/// stored in the owner's `H(owner)` set.
///
/// Entries are ordered by `(step, node)`; single-pair queries intersect
/// two sorted entry runs with a linear merge.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HpEntry {
    /// Walk step ℓ ≥ 0. √c-walks decay geometrically, so ℓ never exceeds
    /// `log_{√c} θ` (≈ 28 for the paper parameters) — `u16` is plenty.
    pub step: u16,
    /// The node hit at step ℓ.
    pub node: NodeId,
    /// The approximate probability, in `(θ, 1]` for stored entries.
    pub value: f64,
}

impl HpEntry {
    /// Construct an entry.
    #[inline]
    pub fn new(step: u16, node: NodeId, value: f64) -> Self {
        HpEntry { step, node, value }
    }

    /// The `(step, node)` sort key.
    #[inline(always)]
    pub fn key(&self) -> (u16, NodeId) {
        (self.step, self.node)
    }
}

/// Packed per-node HP sets: a CSR-style arena over all nodes.
///
/// `offsets` has `n + 1` entries; node `v`'s set occupies index range
/// `offsets[v] .. offsets[v+1]` of the three parallel arrays. Parallel
/// arrays (instead of an array of structs) avoid padding: 14 bytes per
/// entry instead of 24.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HpArena {
    pub(crate) offsets: Vec<u64>,
    pub(crate) steps: Vec<u16>,
    pub(crate) nodes: Vec<u32>,
    pub(crate) values: Vec<f64>,
}

impl HpArena {
    /// Build from per-node entry lists already sorted by `(step, node)`.
    pub fn from_sorted_entries(n: usize, entries: impl Iterator<Item = (u32, HpEntry)>) -> Self {
        let mut arena = HpArena {
            offsets: Vec::with_capacity(n + 1),
            steps: Vec::new(),
            nodes: Vec::new(),
            values: Vec::new(),
        };
        arena.offsets.push(0);
        let mut current = 0u32;
        for (owner, e) in entries {
            debug_assert!(owner >= current, "entries must arrive grouped by owner");
            while current < owner {
                arena.offsets.push(arena.steps.len() as u64);
                current += 1;
            }
            arena.steps.push(e.step);
            arena.nodes.push(e.node.0);
            arena.values.push(e.value);
        }
        while arena.offsets.len() < n + 1 {
            arena.offsets.push(arena.steps.len() as u64);
        }
        arena
    }

    /// Number of nodes covered.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Total entries across all nodes.
    #[inline]
    pub fn total_entries(&self) -> usize {
        self.steps.len()
    }

    /// Entry index range of node `v`.
    #[inline(always)]
    pub fn range(&self, v: NodeId) -> std::ops::Range<usize> {
        let i = v.index();
        self.offsets[i] as usize..self.offsets[i + 1] as usize
    }

    /// Number of entries in `H(v)`.
    #[inline]
    pub fn len_of(&self, v: NodeId) -> usize {
        let r = self.range(v);
        r.end - r.start
    }

    /// Iterate `H(v)` in `(step, node)` order.
    pub fn entries(&self, v: NodeId) -> impl Iterator<Item = HpEntry> + '_ {
        self.range(v).map(move |i| HpEntry {
            step: self.steps[i],
            node: NodeId(self.nodes[i]),
            value: self.values[i],
        })
    }

    /// Copy `H(v)` into a buffer (reused across queries by workspaces).
    pub fn fill(&self, v: NodeId, out: &mut Vec<HpEntry>) {
        out.clear();
        out.extend(self.entries(v));
    }

    /// Whether `H(v)` contains an entry with this exact `(step, node)` key
    /// (binary search on the sorted run).
    pub fn contains_key(&self, v: NodeId, step: u16, node: NodeId) -> bool {
        let r = self.range(v);
        let steps = &self.steps[r.clone()];
        let nodes = &self.nodes[r];
        let mut lo = 0usize;
        let mut hi = steps.len();
        while lo < hi {
            let mid = (lo + hi) / 2;
            match (steps[mid], nodes[mid]).cmp(&(step, node.0)) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }

    /// Estimated resident bytes of the arena (for the Figure 4 space
    /// report): offsets + steps + nodes + values.
    pub fn resident_bytes(&self) -> usize {
        self.offsets.len() * 8 + self.steps.len() * 2 + self.nodes.len() * 4 + self.values.len() * 8
    }

    /// Full structural check: parallel-array lengths agree, offsets are
    /// monotone and in bounds, and every per-node run is strictly
    /// `(step, node)`-ordered. Used by tests and by the binary-format
    /// decoder (a corrupted file must never yield an arena that panics
    /// at query time).
    pub fn validate(&self) -> bool {
        if self.steps.len() != self.nodes.len() || self.steps.len() != self.values.len() {
            return false;
        }
        if self.offsets.first() != Some(&0)
            || *self.offsets.last().unwrap_or(&0) as usize != self.steps.len()
        {
            return false;
        }
        if self
            .offsets
            .windows(2)
            .any(|w| w[0] > w[1] || w[1] as usize > self.steps.len())
        {
            return false;
        }
        for v in 0..self.num_nodes() {
            let r = self.range(NodeId::from_index(v));
            for i in r.clone().skip(1) {
                if (self.steps[i - 1], self.nodes[i - 1]) >= (self.steps[i], self.nodes[i]) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arena() -> HpArena {
        // node 0: (0,0,1.0), (1,2,0.3); node 1: empty; node 2: (0,2,1.0)
        HpArena::from_sorted_entries(
            3,
            vec![
                (0, HpEntry::new(0, NodeId(0), 1.0)),
                (0, HpEntry::new(1, NodeId(2), 0.3)),
                (2, HpEntry::new(0, NodeId(2), 1.0)),
            ]
            .into_iter(),
        )
    }

    #[test]
    fn construction_and_ranges() {
        let a = arena();
        assert_eq!(a.num_nodes(), 3);
        assert_eq!(a.total_entries(), 3);
        assert_eq!(a.len_of(NodeId(0)), 2);
        assert_eq!(a.len_of(NodeId(1)), 0);
        assert_eq!(a.len_of(NodeId(2)), 1);
        assert!(a.validate());
    }

    #[test]
    fn entry_iteration() {
        let a = arena();
        let e: Vec<_> = a.entries(NodeId(0)).collect();
        assert_eq!(e.len(), 2);
        assert_eq!(e[0].key(), (0, NodeId(0)));
        assert_eq!(e[1].key(), (1, NodeId(2)));
        assert_eq!(e[1].value, 0.3);
    }

    #[test]
    fn contains_key_binary_search() {
        let a = arena();
        assert!(a.contains_key(NodeId(0), 1, NodeId(2)));
        assert!(!a.contains_key(NodeId(0), 1, NodeId(1)));
        assert!(!a.contains_key(NodeId(1), 0, NodeId(1)));
    }

    #[test]
    fn fill_reuses_buffer() {
        let a = arena();
        let mut buf = vec![HpEntry::new(9, NodeId(9), 9.0)];
        a.fill(NodeId(2), &mut buf);
        assert_eq!(buf.len(), 1);
        assert_eq!(buf[0].node, NodeId(2));
    }

    #[test]
    fn trailing_empty_nodes_get_offsets() {
        let a =
            HpArena::from_sorted_entries(4, vec![(1, HpEntry::new(0, NodeId(1), 1.0))].into_iter());
        assert_eq!(a.num_nodes(), 4);
        assert_eq!(a.len_of(NodeId(0)), 0);
        assert_eq!(a.len_of(NodeId(3)), 0);
        assert!(a.validate());
    }

    #[test]
    fn validate_catches_disorder() {
        let mut a = arena();
        a.nodes.swap(0, 1); // break (step,node) order within node 0
        a.steps.swap(0, 1);
        assert!(!a.validate());
    }

    #[test]
    fn resident_bytes_counts_all_arrays() {
        let a = arena();
        assert_eq!(a.resident_bytes(), 4 * 8 + 3 * 2 + 3 * 4 + 3 * 8);
    }
}
