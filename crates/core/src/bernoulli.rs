//! Bernoulli-mean estimation (§4.3 and §5.1 of the paper).
//!
//! Estimating a correction factor `d_k` reduces to estimating the mean `µ`
//! of a Bernoulli variable ("do two √c-walks from random in-neighbors
//! meet?") with additive error `ε` and failure probability `δ`. Two
//! estimators are provided:
//!
//! * [`fixed_sample_mean`] — the Chernoff-bound sample count of
//!   **Algorithm 1**: `(2 + ε)/ε² · ln(2/δ)` samples, always.
//! * [`adaptive_mean`] — **Algorithm 4** generalized to any Bernoulli
//!   source: a cheap first phase of `14/(3ε) · ln(4/δ)` samples; if the
//!   empirical mean is ≤ ε the estimate is already good enough, otherwise
//!   a second phase sized by the empirical upper bound `µ* = µ̂ + √(µ̂ε)`
//!   brings the total to `O((µ + ε)/ε² · ln(1/δ))` — asymptotically
//!   optimal by Lemma 11 (via the Dagum et al. lower bound).
//!
//! Both return the estimate and the exact number of samples drawn so
//! callers (and the ablation benchmarks) can compare their costs.

/// Outcome of a mean estimation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Estimate {
    /// The estimated mean `µ̃ ∈ [0, 1]`.
    pub mean: f64,
    /// Number of Bernoulli samples consumed.
    pub samples: u64,
}

/// Algorithm 1's estimator: a fixed `⌈(2 + ε)/ε² · ln(2/δ)⌉` samples.
///
/// Guarantees `|µ̃ − µ| ≤ ε` with probability ≥ `1 − δ` (Chernoff bound,
/// Lemma 13 of the paper).
pub fn fixed_sample_mean<F>(mut sample: F, eps: f64, delta: f64) -> Estimate
where
    F: FnMut() -> bool,
{
    assert!(eps > 0.0 && eps < 1.0, "eps must lie in (0,1)");
    assert!(delta > 0.0 && delta < 1.0, "delta must lie in (0,1)");
    let n = (((2.0 + eps) / (eps * eps)) * (2.0 / delta).ln()).ceil() as u64;
    let n = n.max(1);
    let mut cnt = 0u64;
    for _ in 0..n {
        if sample() {
            cnt += 1;
        }
    }
    Estimate {
        mean: cnt as f64 / n as f64,
        samples: n,
    }
}

/// Algorithm 4's adaptive estimator (generalized form described after
/// Lemma 10 in §5.1).
///
/// Guarantees `|µ̃ − µ| ≤ ε` with probability ≥ `1 − δ`, drawing an
/// expected `O((µ + ε)/ε² · ln(1/δ))` samples — far fewer than
/// [`fixed_sample_mean`] whenever `µ ≪ 1`, which is the common case for
/// SimRank correction factors.
pub fn adaptive_mean<F>(mut sample: F, eps: f64, delta: f64) -> Estimate
where
    F: FnMut() -> bool,
{
    assert!(eps > 0.0 && eps < 1.0, "eps must lie in (0,1)");
    assert!(delta > 0.0 && delta < 1.0, "delta must lie in (0,1)");
    let log_term = (4.0 / delta).ln();

    // Phase 1 (Algorithm 4 lines 1–9).
    let nr = ((14.0 / (3.0 * eps)) * log_term).ceil() as u64;
    let nr = nr.max(1);
    let mut cnt = 0u64;
    for _ in 0..nr {
        if sample() {
            cnt += 1;
        }
    }
    let mu_hat = cnt as f64 / nr as f64;
    if mu_hat <= eps {
        // Lines 10–11: the mean is tiny; phase 1 already gives ε accuracy.
        return Estimate {
            mean: mu_hat,
            samples: nr,
        };
    }

    // Phase 2 (lines 12–21): size by the high-probability upper bound µ*.
    let mu_star = mu_hat + (mu_hat * eps).sqrt();
    let n_star = (((2.0 * mu_star + 2.0 / 3.0 * eps) / (eps * eps)) * log_term).ceil() as u64;
    let n_star = n_star.max(nr);
    for _ in 0..(n_star - nr) {
        if sample() {
            cnt += 1;
        }
    }
    Estimate {
        mean: cnt as f64 / n_star as f64,
        samples: n_star,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    fn bernoulli_source(p: f64, seed: u64) -> impl FnMut() -> bool {
        let mut rng = SmallRng::seed_from_u64(seed);
        move || rng.random::<f64>() < p
    }

    #[test]
    fn fixed_estimator_hits_tolerance() {
        for (i, &p) in [0.0, 0.02, 0.3, 0.97].iter().enumerate() {
            let est = fixed_sample_mean(bernoulli_source(p, 100 + i as u64), 0.02, 1e-4);
            assert!(
                (est.mean - p).abs() <= 0.02,
                "p={p} est={} after {} samples",
                est.mean,
                est.samples
            );
        }
    }

    #[test]
    fn adaptive_estimator_hits_tolerance() {
        for (i, &p) in [0.0, 0.005, 0.05, 0.4, 0.9].iter().enumerate() {
            let est = adaptive_mean(bernoulli_source(p, 7 + i as u64), 0.02, 1e-4);
            assert!(
                (est.mean - p).abs() <= 0.02,
                "p={p} est={} after {} samples",
                est.mean,
                est.samples
            );
        }
    }

    #[test]
    fn adaptive_uses_far_fewer_samples_for_small_means() {
        let eps = 0.01;
        let delta = 1e-6;
        let fixed = fixed_sample_mean(bernoulli_source(0.001, 1), eps, delta);
        let adaptive = adaptive_mean(bernoulli_source(0.001, 1), eps, delta);
        assert!(
            adaptive.samples * 10 < fixed.samples,
            "adaptive {} vs fixed {}",
            adaptive.samples,
            fixed.samples
        );
    }

    #[test]
    fn adaptive_phase2_triggers_for_large_means() {
        let eps = 0.01;
        let delta = 1e-4;
        let est = adaptive_mean(bernoulli_source(0.5, 2), eps, delta);
        // Phase 1 alone draws 14/(3ε)·ln(4/δ) ≈ 4.9k samples; phase 2 for
        // µ≈0.5 requires ~µ/ε² ≈ 100k+.
        let phase1 = ((14.0 / (3.0 * eps)) * (4.0f64 / delta).ln()).ceil() as u64;
        assert!(est.samples > phase1, "phase 2 should have run");
        assert!((est.mean - 0.5).abs() <= eps);
    }

    #[test]
    fn sample_counts_match_formulas() {
        // Deterministic all-false source: phase 1 only.
        let est = adaptive_mean(|| false, 0.05, 0.01);
        let expected = ((14.0 / (3.0 * 0.05)) * (4.0f64 / 0.01).ln()).ceil() as u64;
        assert_eq!(est.samples, expected);
        assert_eq!(est.mean, 0.0);

        let est = fixed_sample_mean(|| true, 0.1, 0.01);
        let expected = (((2.0 + 0.1) / 0.01) * (2.0f64 / 0.01).ln()).ceil() as u64;
        assert_eq!(est.samples, expected);
        assert_eq!(est.mean, 1.0);
    }

    #[test]
    #[should_panic]
    fn rejects_eps_out_of_range() {
        let _ = adaptive_mean(|| true, 0.0, 0.1);
    }

    #[test]
    #[should_panic]
    fn rejects_delta_out_of_range() {
        let _ = fixed_sample_mean(|| true, 0.1, 0.0);
    }
}
