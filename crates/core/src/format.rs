//! Binary persistence of a [`SlingIndex`] — the `SLNGIDX1`, `SLNGIDX2`
//! and `SLNGIDX3` formats.
//!
//! A small hand-rolled format (magic + version + little-endian sections)
//! rather than a serde backend: the index is dominated by four large
//! primitive arrays, which serialize as flat byte runs with no
//! per-element overhead. The graph itself is *not* stored — on load the
//! caller passes the graph and the header's `(n, m)` fingerprint is
//! verified against it.
//!
//! Three payload layouts share one metadata prefix; the magic doubles as
//! the version tag and **every shipped generation stays readable
//! forever**:
//!
//! ## Shared metadata prefix (all versions)
//!
//! ```text
//! magic "SLNGIDX1" | "SLNGIDX2" | "SLNGIDX3" | n u64 | m u64
//! config: c, epsilon, eps_d, theta, delta f64 | seed u64 | gamma f64 | flags u8
//! stats: 5 × u64
//! d:        n × f64
//! reduced:  n × u8
//! marks:    (n+1) × u64 offsets | len u64 | len × u32 locals
//! hp:       (n+1) × u64 offsets | entries u64
//! ```
//!
//! ## `SLNGIDX1` payload: raw sections
//!
//! ```text
//! steps:  entries × u16
//! nodes:  entries × u32
//! values: entries × f64
//! ```
//!
//! The three entry arrays are stored as contiguous *sections* (not
//! interleaved records) so the out-of-core backends can address them
//! directly with per-entry arithmetic — 14 bytes per entry, no decode.
//!
//! ## `SLNGIDX2` payload: compressed blocks
//!
//! ```text
//! flags          u8     (bit 0: values are bit-exact / lossless)
//! block_entries  u64    (entries per block; the last block may be short)
//! num_blocks     u64    (== ceil(entries / block_entries))
//! directory:     (num_blocks + 1) × u64 byte offsets into the block
//!                area, monotone from 0; the last offset is the total
//!                payload byte length
//! blocks:        concatenated [`crate::codec::block`] encodings — steps
//!                run-length coded, node ids delta-varint coded per
//!                (owner, step) run, values behind a per-block
//!                [`crate::codec::value::SectionCodec`] tag (raw f64 /
//!                dictionary, both bit-exact; or fixed-point u32 when
//!                the exactness flag is clear)
//! ```
//!
//! ## `SLNGIDX3` payload: compressed blocks + cross-block value dictionary
//!
//! ```text
//! flags          u8     (bit 0: values are bit-exact / lossless)
//! block_entries  u64    (entries per block; the last block may be short)
//! num_blocks     u64    (== ceil(entries / block_entries))
//! global_dict:   len varint, then len × f64 LE — the file-wide value
//!                dictionary, most frequent value first (empty when
//!                quantized)
//! directory:     num_blocks × varint byte *lengths*, one per block
//!                (each ≥ 1); prefix sums reconstruct the v2-style
//!                monotone offset table
//! blocks:        same [`crate::codec::block`] encodings as v2, plus
//!                one extra value codec: tag 3 codes each value as a
//!                varint index into `global_dict` (offset by one), with
//!                index 0 escaping to split-plane residual storage — a
//!                shared table of the escapes' upper 16 bits
//!                (sign + exponent + mantissa head) followed by each
//!                escape's low 48 mantissa bits, bit-exact
//! ```
//!
//! The v3 encoder picks the cheapest of raw / per-block dictionary /
//! global dictionary per block by exact byte cost, so a v3 file is never
//! larger than its v2 equivalent; quantized v3 blocks are byte-identical
//! to v2's.
//!
//! Each block is independently decodable (given the resident global
//! dictionary for v3), so the compressed mmap and disk backends
//! ([`crate::store::CompressedMmapArena`],
//! [`crate::out_of_core::DiskHpStore`]) decode only the blocks a query's
//! entry range touches. [`decode_meta`] validates everything **up to**
//! the entry payload — including the block directory and the v3 global
//! dictionary — and reports the payload geometry, which is all the
//! zero-copy backends need; none ever decodes the full payload at open.
//!
//! Every malformed input — truncation, bad magic, non-monotone offsets,
//! out-of-range ids, overflowing section sizes, inconsistent block
//! directories — surfaces as [`SlingError::CorruptIndex`]; no input may
//! panic the decoder.

use std::fs::File;
use std::io::{Read, Write};
use std::path::Path;

use bytes::{Buf, BufMut};
use sling_graph::DiGraph;

use crate::codec::block::MAX_BLOCK_ENTRIES;
use crate::codec::{
    decode_payload, decode_payload_v3, encode_payload, encode_payload_v3, varint, CompressOptions,
};
use crate::config::SlingConfig;
use crate::enhance::MarkArena;
use crate::error::SlingError;
use crate::hp::HpArena;
use crate::index::{BuildStats, SlingIndex};

const MAGIC_V1: &[u8; 8] = b"SLNGIDX1";
const MAGIC_V2: &[u8; 8] = b"SLNGIDX2";
const MAGIC_V3: &[u8; 8] = b"SLNGIDX3";

/// Bit 0 of the v2 payload flags: values decode bit-identical to the
/// encoded index.
const FLAG_VALUES_EXACT: u8 = 1;

/// On-disk format generation of a persisted index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FormatVersion {
    /// `SLNGIDX1`: raw fixed-width payload sections.
    V1,
    /// `SLNGIDX2`: block-compressed payload.
    V2,
    /// `SLNGIDX3`: block-compressed payload with a cross-block value
    /// dictionary and a varint-delta block directory.
    V3,
}

impl std::fmt::Display for FormatVersion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FormatVersion::V1 => write!(f, "SLNGIDX1"),
            FormatVersion::V2 => write!(f, "SLNGIDX2"),
            FormatVersion::V3 => write!(f, "SLNGIDX3"),
        }
    }
}

/// Identify the format generation of an index byte image by its magic.
pub fn detect_version(bytes: &[u8]) -> Result<FormatVersion, SlingError> {
    if bytes.len() < 8 {
        return Err(corrupt("truncated while reading magic"));
    }
    match &bytes[..8] {
        m if m == MAGIC_V1 => Ok(FormatVersion::V1),
        m if m == MAGIC_V2 => Ok(FormatVersion::V2),
        m if m == MAGIC_V3 => Ok(FormatVersion::V3),
        _ => Err(corrupt("bad magic")),
    }
}

/// True when any HP value is non-finite or wildly out of the unit range
/// (corruption detector; legitimate values are probabilities).
fn values_corrupt(values: &[f64]) -> bool {
    values
        .iter()
        .any(|v| !v.is_finite() || *v < 0.0 || *v > 1.0 + 1e-9)
}

/// Where a file's entry payload lives and how it is laid out.
pub(crate) enum PayloadGeometry {
    /// `SLNGIDX1`: three raw fixed-width sections.
    Raw {
        steps_base: usize,
        nodes_base: usize,
        values_base: usize,
    },
    /// `SLNGIDX2` / `SLNGIDX3`: a validated block directory.
    Blocked(BlockedGeometry),
}

/// Validated v2/v3 payload geometry (see the module docs for the
/// layouts).
pub(crate) struct BlockedGeometry {
    /// Entries per block (the last block may be short).
    pub block_entries: usize,
    /// Byte offset of the first block within the file.
    pub blocks_base: usize,
    /// `num_blocks + 1` byte offsets relative to `blocks_base`,
    /// validated monotone; the last equals the payload byte length.
    /// (For v3 these are reconstructed from the varint length
    /// directory.)
    pub block_offsets: Vec<u64>,
    /// Whether value decoding is bit-exact (lossless codecs only).
    pub values_exact: bool,
    /// The file-wide value dictionary: `Some` exactly for `SLNGIDX3`
    /// images (possibly empty under quantization). `None` marks a v2
    /// context, where a global-dictionary value section is corrupt.
    pub global_dict: Option<Vec<f64>>,
    /// Bytes the directory (and, for v3, the global dictionary) occupy
    /// between the payload flags and the first block — the container
    /// overhead charged to the compressed payload by `inspect`.
    pub aux_bytes: usize,
}

impl BlockedGeometry {
    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.block_offsets.len() - 1
    }

    /// Total encoded payload bytes.
    pub fn payload_len(&self) -> usize {
        *self.block_offsets.last().unwrap() as usize
    }
}

/// Everything in a persisted index *except* the entry payload: the
/// query-side metadata plus the payload geometry. Produced by
/// [`decode_meta`], shared by the full decoder and the out-of-core
/// backends.
pub(crate) struct DecodedMeta {
    pub version: FormatVersion,
    pub config: SlingConfig,
    pub stats: BuildStats,
    pub num_nodes: usize,
    pub num_edges: usize,
    pub d: Vec<f64>,
    pub reduced: Vec<bool>,
    pub marks: MarkArena,
    /// Per-node entry offsets; `n + 1` values, validated monotone with
    /// `hp_offsets[0] = 0` and `hp_offsets[n] = entries`.
    pub hp_offsets: Vec<u64>,
    /// Total stored entries.
    pub entries: usize,
    /// Byte offset of the on-file HP offset table.
    pub offsets_base: usize,
    /// Layout of the entry payload.
    pub payload: PayloadGeometry,
    /// Expected total file size; validated `<=` the available bytes.
    pub total_len: usize,
}

fn corrupt(what: impl Into<String>) -> SlingError {
    SlingError::CorruptIndex(what.into())
}

fn need(buf: &[u8], n: usize, what: &str) -> Result<(), SlingError> {
    if buf.remaining() < n {
        Err(corrupt(format!("truncated while reading {what}")))
    } else {
        Ok(())
    }
}

/// Decode and validate the metadata prefix of a persisted index image
/// (either format generation).
///
/// Cost is `O(n + entries / block_entries)` and **independent of the
/// number of stored entries**: the payload sections are bound-checked
/// against the image length but never read.
pub(crate) fn decode_meta(bytes: &[u8]) -> Result<DecodedMeta, SlingError> {
    let version = detect_version(bytes)?;
    let mut buf = &bytes[8..];
    need(buf, 16, "header")?;
    let n = buf.get_u64_le() as usize;
    let m = buf.get_u64_le() as usize;
    // A file with n nodes stores at least n reduction bytes, so n can
    // never exceed the image size; rejecting early keeps every later
    // `n`-sized allocation and loop bounded by the input length.
    if n > bytes.len() {
        return Err(corrupt(format!("node count {n} exceeds file size")));
    }

    need(buf, 7 * 8 + 1, "config")?;
    let c = buf.get_f64_le();
    let epsilon = buf.get_f64_le();
    let eps_d = buf.get_f64_le();
    let theta = buf.get_f64_le();
    let delta_raw = buf.get_f64_le();
    let seed = buf.get_u64_le();
    let gamma = buf.get_f64_le();
    let flags = buf.get_u8();
    let config = SlingConfig {
        c,
        epsilon,
        eps_d,
        theta,
        delta: if delta_raw.is_nan() {
            None
        } else {
            Some(delta_raw)
        },
        seed,
        adaptive_dk: flags & 1 != 0,
        space_reduction: flags & 2 != 0,
        gamma,
        enhance_accuracy: flags & 4 != 0,
        exact_diagonal: flags & 8 != 0,
        threads: 1,
    };

    need(buf, 5 * 8, "stats")?;
    let stats = BuildStats {
        dk_samples: buf.get_u64_le(),
        entries_before_reduction: buf.get_u64_le() as usize,
        entries_stored: buf.get_u64_le() as usize,
        reduced_nodes: buf.get_u64_le() as usize,
        marked_entries: buf.get_u64_le() as usize,
    };

    need(buf, n * 8 + n, "correction factors")?;
    let mut d = Vec::with_capacity(n);
    for _ in 0..n {
        d.push(buf.get_f64_le());
    }
    let mut reduced = Vec::with_capacity(n);
    for _ in 0..n {
        reduced.push(buf.get_u8() != 0);
    }

    need(buf, (n + 1) * 8 + 8, "mark offsets")?;
    let mut mark_offsets = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        mark_offsets.push(buf.get_u64_le());
    }
    let mark_len = buf.get_u64_le() as usize;
    if mark_len > buf.remaining() / 4 {
        return Err(corrupt("truncated while reading mark entries"));
    }
    let mut mark_local = Vec::with_capacity(mark_len);
    for _ in 0..mark_len {
        mark_local.push(buf.get_u32_le());
    }

    let offsets_base = bytes.len() - buf.remaining();
    need(buf, (n + 1) * 8 + 8, "hp offsets")?;
    let mut hp_offsets = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        hp_offsets.push(buf.get_u64_le());
    }
    let entries = buf.get_u64_le() as usize;

    // Offset-table validation: monotone from 0 to `entries`. This is the
    // invariant every backend's `range(v)` relies on for in-bounds entry
    // access.
    if hp_offsets.first() != Some(&0) || *hp_offsets.last().unwrap() as usize != entries {
        return Err(corrupt("hp offsets mismatch"));
    }
    if hp_offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(corrupt("hp offsets not monotone"));
    }

    let marks = MarkArena {
        offsets: mark_offsets,
        local: mark_local,
    };
    if !marks.validate_runs(&hp_offsets) {
        return Err(corrupt("mark arena fails validation"));
    }
    if d.iter().any(|x| !x.is_finite()) {
        return Err(corrupt("non-finite correction factor"));
    }
    config.validate()?;

    let (payload, total_len) = match version {
        FormatVersion::V1 => {
            // Payload section geometry, overflow-checked against the
            // image size.
            let steps_base = bytes.len() - buf.remaining();
            let section = |base: usize, width: usize| -> Result<usize, SlingError> {
                entries
                    .checked_mul(width)
                    .and_then(|sz| base.checked_add(sz))
                    .ok_or_else(|| corrupt("entry section size overflows"))
            };
            let nodes_base = section(steps_base, 2)?;
            let values_base = section(nodes_base, 4)?;
            let total_len = section(values_base, 8)?;
            (
                PayloadGeometry::Raw {
                    steps_base,
                    nodes_base,
                    values_base,
                },
                total_len,
            )
        }
        FormatVersion::V2 | FormatVersion::V3 => {
            need(buf, 1 + 16, "block header")?;
            let payload_flags = buf.get_u8();
            let block_entries = buf.get_u64_le() as usize;
            let num_blocks = buf.get_u64_le() as usize;
            if !(1..=MAX_BLOCK_ENTRIES).contains(&block_entries) {
                return Err(corrupt(format!(
                    "block size {block_entries} outside 1..={MAX_BLOCK_ENTRIES}"
                )));
            }
            if num_blocks != entries.div_ceil(block_entries) {
                return Err(corrupt(format!(
                    "directory holds {num_blocks} blocks; {entries} entries at {block_entries} \
                     per block need {}",
                    entries.div_ceil(block_entries)
                )));
            }
            // One more `n`-class bound before allocating the directory.
            if num_blocks > bytes.len() {
                return Err(corrupt(format!(
                    "block count {num_blocks} exceeds file size"
                )));
            }
            let aux_base = bytes.len() - buf.remaining();
            let (block_offsets, global_dict) = match version {
                FormatVersion::V2 => {
                    need(buf, (num_blocks + 1) * 8, "block directory")?;
                    let mut block_offsets = Vec::with_capacity(num_blocks + 1);
                    for _ in 0..=num_blocks {
                        block_offsets.push(buf.get_u64_le());
                    }
                    if block_offsets.first() != Some(&0) {
                        return Err(corrupt("block directory does not start at 0"));
                    }
                    // Strictly monotone: every block holds at least one
                    // entry, so it encodes to at least one byte.
                    if block_offsets.windows(2).any(|w| w[0] >= w[1]) {
                        return Err(corrupt("block directory not strictly monotone"));
                    }
                    (block_offsets, None)
                }
                FormatVersion::V3 => {
                    // Global value dictionary.
                    let dict_len = varint::read_u64(&mut buf)? as usize;
                    if dict_len > buf.remaining() / 8 {
                        return Err(corrupt("truncated while reading the global dictionary"));
                    }
                    let mut dict = Vec::with_capacity(dict_len);
                    for _ in 0..dict_len {
                        dict.push(buf.get_f64_le());
                    }
                    if values_corrupt(&dict) {
                        return Err(corrupt("non-probability value in the global dictionary"));
                    }
                    // Varint-delta directory: per-block byte lengths,
                    // prefix-summed into the monotone offset table every
                    // blocked reader consumes. Length ≥ 1 per block
                    // keeps the reconstruction strictly monotone.
                    let mut block_offsets = Vec::with_capacity(num_blocks + 1);
                    block_offsets.push(0u64);
                    let mut total = 0u64;
                    for b in 0..num_blocks {
                        let len = varint::read_u64(&mut buf)?;
                        if len == 0 {
                            return Err(corrupt(format!("block {b} claims zero bytes")));
                        }
                        total = total
                            .checked_add(len)
                            .ok_or_else(|| corrupt("block directory lengths overflow"))?;
                        block_offsets.push(total);
                    }
                    (block_offsets, Some(dict))
                }
                FormatVersion::V1 => unreachable!(),
            };
            let blocks_base = bytes.len() - buf.remaining();
            let aux_bytes = blocks_base - aux_base;
            let payload_len = *block_offsets.last().unwrap() as usize;
            // Bound the entry count by the payload bytes (every encoded
            // entry costs at least one node-column byte) — the v2
            // analogue of v1's `total_len` section check, and the bound
            // that keeps the eager decoder's `entries`-sized allocations
            // proportional to the input. Without it a ~100 KB file could
            // claim ~10¹⁰ entries (a tiny directory of `MAX_BLOCK_ENTRIES`
            // blocks) and drive the decoder into a huge allocation before
            // any block-level validation can fire.
            if entries > payload_len {
                return Err(corrupt(format!(
                    "{entries} entries cannot fit a {payload_len}-byte block payload"
                )));
            }
            let total_len = blocks_base
                .checked_add(payload_len)
                .ok_or_else(|| corrupt("block payload size overflows"))?;
            (
                PayloadGeometry::Blocked(BlockedGeometry {
                    block_entries,
                    blocks_base,
                    block_offsets,
                    values_exact: payload_flags & FLAG_VALUES_EXACT != 0,
                    global_dict,
                    aux_bytes,
                }),
                total_len,
            )
        }
    };
    if total_len > bytes.len() {
        return Err(corrupt("truncated while reading hp entries"));
    }

    Ok(DecodedMeta {
        version,
        config,
        stats,
        num_nodes: n,
        num_edges: m,
        d,
        reduced,
        marks,
        hp_offsets,
        entries,
        offsets_base,
        payload,
        total_len,
    })
}

/// Summary of a persisted index file, for `sling inspect` and the
/// `sling compact` before/after report.
#[derive(Clone, Debug)]
pub struct IndexFileInfo {
    /// Format generation.
    pub version: FormatVersion,
    /// Node count recorded in the header.
    pub num_nodes: usize,
    /// Edge count recorded in the header.
    pub num_edges: usize,
    /// Stored HP entries.
    pub entries: usize,
    /// Total file bytes (header through payload).
    pub total_bytes: usize,
    /// Bytes of the entry payload sections. For `SLNGIDX3` this
    /// includes the global dictionary and the varint directory (the
    /// container bytes its compression depends on), so the reported
    /// ratio is honest about where the payload's information lives.
    pub payload_bytes: usize,
    /// Bytes of the block byte directory (0 for v1; counted inside
    /// `payload_bytes` for v3 only).
    pub directory_bytes: usize,
    /// Bytes of the v3 global value dictionary (0 for v1/v2; counted
    /// inside `payload_bytes`).
    pub global_dict_bytes: usize,
    /// Bytes the same entries occupy in the raw v1 layout (14/entry) —
    /// the denominator of the compression ratio.
    pub raw_payload_bytes: usize,
    /// Blocks in the payload (0 for v1).
    pub num_blocks: usize,
    /// Entries per block (0 for v1).
    pub block_entries: usize,
    /// Whether values decode bit-identical to the index that was saved
    /// (always true for v1; false for quantized v2).
    pub values_exact: bool,
}

impl IndexFileInfo {
    /// Payload bytes relative to the raw v1 layout (1.0 = no change).
    pub fn compression_ratio(&self) -> f64 {
        if self.raw_payload_bytes == 0 {
            1.0
        } else {
            self.payload_bytes as f64 / self.raw_payload_bytes as f64
        }
    }
}

/// Inspect a persisted index image: version, sizes, block geometry.
/// Validates the metadata prefix but never decodes the payload.
pub fn inspect_bytes(bytes: &[u8]) -> Result<IndexFileInfo, SlingError> {
    let meta = decode_meta(bytes)?;
    let (
        payload_bytes,
        directory_bytes,
        global_dict_bytes,
        num_blocks,
        block_entries,
        values_exact,
    ) = match &meta.payload {
        PayloadGeometry::Raw { steps_base, .. } => (meta.total_len - steps_base, 0, 0, 0, 0, true),
        PayloadGeometry::Blocked(geo) => {
            let dict_bytes = geo
                .global_dict
                .as_ref()
                .map_or(0, |d| varint::len_u64(d.len() as u64) + d.len() * 8);
            let dir_bytes = geo.aux_bytes - dict_bytes;
            // v2's fixed-width directory predates the per-section
            // accounting and stays outside payload_bytes for
            // continuity; v3's aux bytes are part of the payload's
            // information and are charged to it.
            let payload = match geo.global_dict {
                Some(_) => geo.payload_len() + geo.aux_bytes,
                None => geo.payload_len(),
            };
            (
                payload,
                dir_bytes,
                dict_bytes,
                geo.num_blocks(),
                geo.block_entries,
                geo.values_exact,
            )
        }
    };
    Ok(IndexFileInfo {
        version: meta.version,
        num_nodes: meta.num_nodes,
        num_edges: meta.num_edges,
        entries: meta.entries,
        total_bytes: meta.total_len,
        payload_bytes,
        directory_bytes,
        global_dict_bytes,
        raw_payload_bytes: meta.entries * 14,
        num_blocks,
        block_entries,
        values_exact,
    })
}

/// Inspect a persisted index file (see [`inspect_bytes`]).
pub fn inspect_file(path: impl AsRef<Path>) -> Result<IndexFileInfo, SlingError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    inspect_bytes(&bytes)
}

/// Where a payload's bytes go, section by section — the attribution
/// report behind `sling inspect`. For blocked formats the per-block
/// numbers come from [`crate::codec::block::block_section_sizes`]
/// (framing-validated scans, no column materialization).
#[derive(Clone, Debug, Default)]
pub struct PayloadBreakdown {
    /// v1: the raw step section. v2/v3: block headers — entry/run
    /// counts plus the run-length-coded step directory.
    pub step_bytes: usize,
    /// Node id column (raw `u32`s for v1, per-run delta varints after).
    pub node_bytes: usize,
    /// Value sections, including their codec tag bytes.
    pub value_bytes: usize,
    /// Block byte directory (fixed `u64`s for v2, varint deltas for v3;
    /// 0 for v1).
    pub directory_bytes: usize,
    /// v3 global value dictionary (0 otherwise).
    pub global_dict_bytes: usize,
    /// Value bytes grouped by codec tag: `(tag, blocks, bytes)`,
    /// ascending by tag. Empty for v1 (no tags).
    pub value_codecs: Vec<(u8, usize, usize)>,
}

/// Compute the per-section byte attribution of an index image's payload.
pub fn payload_breakdown(bytes: &[u8]) -> Result<PayloadBreakdown, SlingError> {
    use crate::codec::block::block_section_sizes;
    use crate::codec::expected_block_len;

    let meta = decode_meta(bytes)?;
    match &meta.payload {
        PayloadGeometry::Raw { .. } => Ok(PayloadBreakdown {
            step_bytes: meta.entries * 2,
            node_bytes: meta.entries * 4,
            value_bytes: meta.entries * 8,
            ..PayloadBreakdown::default()
        }),
        PayloadGeometry::Blocked(geo) => {
            let dict_bytes = geo
                .global_dict
                .as_ref()
                .map_or(0, |d| varint::len_u64(d.len() as u64) + d.len() * 8);
            let mut out = PayloadBreakdown {
                directory_bytes: geo.aux_bytes - dict_bytes,
                global_dict_bytes: dict_bytes,
                ..PayloadBreakdown::default()
            };
            let num_blocks = geo.num_blocks();
            let mut by_tag: std::collections::BTreeMap<u8, (usize, usize)> =
                std::collections::BTreeMap::new();
            for b in 0..num_blocks {
                let (lo, hi) = (
                    geo.blocks_base + geo.block_offsets[b] as usize,
                    geo.blocks_base + geo.block_offsets[b + 1] as usize,
                );
                let expected = expected_block_len(b, num_blocks, geo.block_entries, meta.entries)?;
                let s = block_section_sizes(&bytes[lo..hi], expected)?;
                out.step_bytes += s.header_bytes;
                out.node_bytes += s.node_bytes;
                out.value_bytes += s.value_bytes;
                let slot = by_tag.entry(s.value_tag).or_default();
                slot.0 += 1;
                slot.1 += s.value_bytes;
            }
            out.value_codecs = by_tag
                .into_iter()
                .map(|(tag, (blocks, bytes))| (tag, blocks, bytes))
                .collect();
            Ok(out)
        }
    }
}

/// Compute the per-section byte attribution of a persisted index file.
pub fn payload_breakdown_file(path: impl AsRef<Path>) -> Result<PayloadBreakdown, SlingError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    payload_breakdown(&bytes)
}

impl SlingIndex {
    /// Serialize the shared metadata prefix (everything up to the entry
    /// payload) under `magic`.
    fn write_prefix(&self, magic: &[u8; 8], out: &mut Vec<u8>) {
        let n = self.num_nodes;
        out.put_slice(magic);
        out.put_u64_le(n as u64);
        out.put_u64_le(self.num_edges as u64);

        // Config.
        out.put_f64_le(self.config.c);
        out.put_f64_le(self.config.epsilon);
        out.put_f64_le(self.config.eps_d);
        out.put_f64_le(self.config.theta);
        out.put_f64_le(self.config.delta.unwrap_or(f64::NAN));
        out.put_u64_le(self.config.seed);
        out.put_f64_le(self.config.gamma);
        let flags = (self.config.adaptive_dk as u8)
            | (self.config.space_reduction as u8) << 1
            | (self.config.enhance_accuracy as u8) << 2
            | (self.config.exact_diagonal as u8) << 3;
        out.put_u8(flags);

        // Stats.
        out.put_u64_le(self.stats.dk_samples);
        out.put_u64_le(self.stats.entries_before_reduction as u64);
        out.put_u64_le(self.stats.entries_stored as u64);
        out.put_u64_le(self.stats.reduced_nodes as u64);
        out.put_u64_le(self.stats.marked_entries as u64);

        // Correction factors and reduction bitmap.
        for &x in &self.d {
            out.put_f64_le(x);
        }
        for &r in &self.reduced {
            out.put_u8(r as u8);
        }

        // Marks.
        for &o in &self.marks.offsets {
            out.put_u64_le(o);
        }
        out.put_u64_le(self.marks.local.len() as u64);
        for &l in &self.marks.local {
            out.put_u32_le(l);
        }

        // HP offset table.
        for &o in &self.hp.offsets {
            out.put_u64_le(o);
        }
        out.put_u64_le(self.hp.total_entries() as u64);
    }

    /// Serialize the full index into a byte vector (`SLNGIDX1`, the raw
    /// decode-free layout).
    pub fn to_bytes(&self) -> Vec<u8> {
        let n = self.num_nodes;
        let entries = self.hp.total_entries();
        let mut out = Vec::with_capacity(64 + n * 9 + entries * 14 + self.marks.local.len() * 4);
        self.write_prefix(MAGIC_V1, &mut out);
        for &s in &self.hp.steps {
            out.put_u16_le(s);
        }
        for &nd in &self.hp.nodes {
            out.put_u32_le(nd);
        }
        for &v in &self.hp.values {
            out.put_f64_le(v);
        }
        out
    }

    /// Serialize into the block-compressed `SLNGIDX2` layout. With
    /// default (lossless) options every backend serving the result
    /// returns scores bit-identical to this index; with
    /// [`CompressOptions::quantize_values`] the values carry ≤ 2⁻³³
    /// absolute quantization error and the file is flagged inexact.
    pub fn to_bytes_v2(&self, opts: &CompressOptions) -> Vec<u8> {
        let n = self.num_nodes;
        let mut out = Vec::with_capacity(64 + n * 9 + self.marks.local.len() * 4);
        self.write_prefix(MAGIC_V2, &mut out);
        let payload = encode_payload(
            &self.hp.steps,
            &self.hp.nodes,
            &self.hp.values,
            &self.hp.offsets,
            opts,
        );
        out.put_u8(if opts.quantize_values {
            0
        } else {
            FLAG_VALUES_EXACT
        });
        out.put_u64_le(payload.block_entries as u64);
        out.put_u64_le((payload.block_offsets.len() - 1) as u64);
        for &o in &payload.block_offsets {
            out.put_u64_le(o);
        }
        out.extend_from_slice(&payload.bytes);
        out
    }

    /// Serialize into the `SLNGIDX3` layout: v2's blocks plus a
    /// cross-block value dictionary and a varint-delta block directory.
    /// Lossless by default (bit-identical round trip and never larger
    /// than v2); [`CompressOptions::quantize_values`] behaves as in
    /// [`SlingIndex::to_bytes_v2`].
    pub fn to_bytes_v3(&self, opts: &CompressOptions) -> Vec<u8> {
        let n = self.num_nodes;
        let mut out = Vec::with_capacity(64 + n * 9 + self.marks.local.len() * 4);
        self.write_prefix(MAGIC_V3, &mut out);
        let payload = encode_payload_v3(
            &self.hp.steps,
            &self.hp.nodes,
            &self.hp.values,
            &self.hp.offsets,
            opts,
        );
        out.put_u8(if opts.quantize_values {
            0
        } else {
            FLAG_VALUES_EXACT
        });
        out.put_u64_le(payload.block_entries as u64);
        out.put_u64_le((payload.block_offsets.len() - 1) as u64);
        varint::write_u64(&mut out, payload.global_dict.len() as u64);
        for &v in &payload.global_dict {
            out.put_f64_le(v);
        }
        for w in payload.block_offsets.windows(2) {
            varint::write_u64(&mut out, w[1] - w[0]);
        }
        out.extend_from_slice(&payload.bytes);
        out
    }

    /// Decode a persisted index image of any format generation
    /// **without** a graph fingerprint check (the header's `(n, m)` are
    /// retained). Used by format-conversion tools; queries should go
    /// through [`SlingIndex::from_bytes`], which verifies the graph.
    pub fn decode(bytes: &[u8]) -> Result<Self, SlingError> {
        let meta = decode_meta(bytes)?;
        debug_assert!(meta.total_len <= bytes.len());
        let entries = meta.entries;

        let (steps, nodes, values) = match &meta.payload {
            PayloadGeometry::Raw {
                steps_base,
                nodes_base,
                values_base,
            } => {
                let mut steps = Vec::with_capacity(entries);
                let mut buf = &bytes[*steps_base..];
                for _ in 0..entries {
                    steps.push(buf.get_u16_le());
                }
                let mut nodes = Vec::with_capacity(entries);
                let mut buf = &bytes[*nodes_base..];
                for _ in 0..entries {
                    nodes.push(buf.get_u32_le());
                }
                let mut values = Vec::with_capacity(entries);
                let mut buf = &bytes[*values_base..];
                for _ in 0..entries {
                    values.push(buf.get_f64_le());
                }
                (steps, nodes, values)
            }
            PayloadGeometry::Blocked(geo) => match &geo.global_dict {
                Some(dict) => decode_payload_v3(
                    &bytes[geo.blocks_base..meta.total_len],
                    &geo.block_offsets,
                    geo.block_entries,
                    entries,
                    dict,
                )?,
                None => decode_payload(
                    &bytes[geo.blocks_base..meta.total_len],
                    &geo.block_offsets,
                    geo.block_entries,
                    entries,
                )?,
            },
        };

        let hp = HpArena {
            offsets: meta.hp_offsets,
            steps,
            nodes,
            values,
        };
        if !hp.validate() {
            return Err(corrupt("hp arena fails validation"));
        }
        if hp.nodes.iter().any(|&k| k as usize >= meta.num_nodes) {
            return Err(corrupt("hp entry references a node past n"));
        }
        if values_corrupt(&hp.values) {
            return Err(corrupt("non-finite payload in HP values"));
        }
        Ok(SlingIndex {
            config: meta.config,
            num_nodes: meta.num_nodes,
            num_edges: meta.num_edges,
            d: meta.d,
            hp,
            reduced: meta.reduced,
            marks: meta.marks,
            stats: meta.stats,
        })
    }

    /// Deserialize an index previously produced by
    /// [`SlingIndex::to_bytes`] or [`SlingIndex::to_bytes_v2`],
    /// verifying it matches `graph`. The fingerprint is checked against
    /// the `O(n)` metadata *before* the entry payload is decoded, so a
    /// wrong-graph load fails fast without touching the payload.
    pub fn from_bytes(graph: &DiGraph, bytes: &[u8]) -> Result<Self, SlingError> {
        let meta = decode_meta(bytes)?;
        if meta.num_nodes != graph.num_nodes() || meta.num_edges != graph.num_edges() {
            return Err(SlingError::GraphMismatch {
                expected_nodes: meta.num_nodes,
                found_nodes: graph.num_nodes(),
            });
        }
        Self::decode(bytes)
    }

    /// Persist to a file (`SLNGIDX1`).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), SlingError> {
        let mut f = File::create(path)?;
        f.write_all(&self.to_bytes())?;
        Ok(())
    }

    /// Persist to a file in the block-compressed `SLNGIDX2` layout.
    pub fn save_v2(
        &self,
        path: impl AsRef<Path>,
        opts: &CompressOptions,
    ) -> Result<(), SlingError> {
        let mut f = File::create(path)?;
        f.write_all(&self.to_bytes_v2(opts))?;
        Ok(())
    }

    /// Persist to a file in the `SLNGIDX3` layout.
    pub fn save_v3(
        &self,
        path: impl AsRef<Path>,
        opts: &CompressOptions,
    ) -> Result<(), SlingError> {
        let mut f = File::create(path)?;
        f.write_all(&self.to_bytes_v3(opts))?;
        Ok(())
    }

    /// Load from a file (any format generation), verifying against
    /// `graph`.
    pub fn load(graph: &DiGraph, path: impl AsRef<Path>) -> Result<Self, SlingError> {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        Self::from_bytes(graph, &bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sling_graph::generators::{barabasi_albert, two_cliques_bridge};
    use sling_graph::NodeId;

    fn cfg() -> SlingConfig {
        SlingConfig::from_epsilon(0.6, 0.1)
            .with_seed(21)
            .with_enhancement(true)
    }

    #[test]
    fn byte_round_trip_preserves_everything() {
        let g = barabasi_albert(120, 2, 4).unwrap();
        let idx = SlingIndex::build(&g, &cfg()).unwrap();
        let bytes = idx.to_bytes();
        let back = SlingIndex::from_bytes(&g, &bytes).unwrap();
        assert_eq!(idx.d, back.d);
        assert_eq!(idx.hp, back.hp);
        assert_eq!(idx.reduced, back.reduced);
        assert_eq!(idx.marks, back.marks);
        assert_eq!(idx.config, back.config);
        // Queries agree exactly.
        for (u, v) in [(0u32, 1u32), (5, 80), (119, 3)] {
            assert_eq!(
                idx.single_pair(&g, NodeId(u), NodeId(v)),
                back.single_pair(&g, NodeId(u), NodeId(v))
            );
        }
    }

    #[test]
    fn v2_byte_round_trip_is_bit_identical_and_smaller() {
        let g = barabasi_albert(150, 3, 8).unwrap();
        let idx = SlingIndex::build(&g, &cfg()).unwrap();
        let v1 = idx.to_bytes();
        let v2 = idx.to_bytes_v2(&CompressOptions::default());
        assert!(v2.len() < v1.len(), "v2 {} vs v1 {}", v2.len(), v1.len());
        let back = SlingIndex::from_bytes(&g, &v2).unwrap();
        assert_eq!(idx.d, back.d);
        assert_eq!(idx.hp, back.hp, "lossless v2 must be bit-identical");
        assert_eq!(idx.reduced, back.reduced);
        assert_eq!(idx.marks, back.marks);
        assert_eq!(idx.config, back.config);
    }

    #[test]
    fn v2_quantized_round_trip_is_close_and_flagged() {
        let g = two_cliques_bridge(5);
        let idx = SlingIndex::build(&g, &cfg()).unwrap();
        let opts = CompressOptions {
            quantize_values: true,
            ..CompressOptions::default()
        };
        let v2 = idx.to_bytes_v2(&opts);
        let info = inspect_bytes(&v2).unwrap();
        assert!(!info.values_exact);
        let back = SlingIndex::from_bytes(&g, &v2).unwrap();
        assert_eq!(idx.hp.steps, back.hp.steps);
        assert_eq!(idx.hp.nodes, back.hp.nodes);
        for (a, b) in idx.hp.values.iter().zip(&back.hp.values) {
            assert!((a - b).abs() <= 0.5 / (u32::MAX as f64), "{a} vs {b}");
        }
    }

    #[test]
    fn v3_byte_round_trip_is_bit_identical_and_no_larger_than_v2() {
        let g = barabasi_albert(150, 3, 8).unwrap();
        let idx = SlingIndex::build(&g, &cfg()).unwrap();
        let v2 = idx.to_bytes_v2(&CompressOptions::default());
        let v3 = idx.to_bytes_v3(&CompressOptions::default());
        assert!(v3.len() <= v2.len(), "v3 {} vs v2 {}", v3.len(), v2.len());
        assert_eq!(detect_version(&v3).unwrap(), FormatVersion::V3);
        let back = SlingIndex::from_bytes(&g, &v3).unwrap();
        assert_eq!(idx.d, back.d);
        assert_eq!(idx.hp, back.hp, "lossless v3 must be bit-identical");
        assert_eq!(idx.reduced, back.reduced);
        assert_eq!(idx.marks, back.marks);
        assert_eq!(idx.config, back.config);
    }

    #[test]
    fn v3_quantized_round_trip_is_close_and_flagged() {
        let g = two_cliques_bridge(5);
        let idx = SlingIndex::build(&g, &cfg()).unwrap();
        let opts = CompressOptions {
            quantize_values: true,
            ..CompressOptions::default()
        };
        let v3 = idx.to_bytes_v3(&opts);
        let info = inspect_bytes(&v3).unwrap();
        assert!(!info.values_exact);
        assert_eq!(info.global_dict_bytes, varint::len_u64(0));
        let back = SlingIndex::from_bytes(&g, &v3).unwrap();
        assert_eq!(idx.hp.steps, back.hp.steps);
        assert_eq!(idx.hp.nodes, back.hp.nodes);
        for (a, b) in idx.hp.values.iter().zip(&back.hp.values) {
            assert!((a - b).abs() <= 0.5 / (u32::MAX as f64), "{a} vs {b}");
        }
    }

    #[test]
    fn v3_extreme_block_sizes_round_trip() {
        let g = two_cliques_bridge(4);
        let idx = SlingIndex::build(&g, &cfg()).unwrap();
        for block_entries in [1usize, 7, 1 << 20] {
            let opts = CompressOptions {
                block_entries,
                quantize_values: false,
            };
            let back = SlingIndex::from_bytes(&g, &idx.to_bytes_v3(&opts)).unwrap();
            assert_eq!(idx.hp, back.hp, "block_entries = {block_entries}");
        }
    }

    #[test]
    fn v3_meta_reports_dictionary_and_compact_directory() {
        let g = barabasi_albert(120, 3, 9).unwrap();
        let idx = SlingIndex::build(&g, &cfg()).unwrap();
        let opts = CompressOptions {
            block_entries: 64,
            quantize_values: false,
        };
        let bytes = idx.to_bytes_v3(&opts);
        let meta = decode_meta(&bytes).unwrap();
        assert_eq!(meta.version, FormatVersion::V3);
        assert_eq!(meta.total_len, bytes.len());
        let PayloadGeometry::Blocked(geo) = meta.payload else {
            panic!("v3 image decoded to a raw geometry");
        };
        assert_eq!(geo.block_entries, 64);
        assert_eq!(geo.num_blocks(), meta.entries.div_ceil(64));
        assert!(geo.values_exact);
        assert!(geo.global_dict.as_ref().is_some_and(|d| !d.is_empty()));
        assert_eq!(geo.blocks_base + geo.payload_len(), bytes.len());
        // The varint directory beats v2's fixed (num_blocks + 1) × u64.
        let dict_bytes = geo
            .global_dict
            .as_ref()
            .map(|d| varint::len_u64(d.len() as u64) + d.len() * 8)
            .unwrap();
        assert!(geo.aux_bytes - dict_bytes < (geo.num_blocks() + 1) * 8);
        // Reconstructed offsets are strictly monotone from 0.
        assert_eq!(geo.block_offsets.first(), Some(&0));
        assert!(geo.block_offsets.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn v2_extreme_block_sizes_round_trip() {
        let g = two_cliques_bridge(4);
        let idx = SlingIndex::build(&g, &cfg()).unwrap();
        for block_entries in [1usize, 7, 1 << 20] {
            let opts = CompressOptions {
                block_entries,
                quantize_values: false,
            };
            let back = SlingIndex::from_bytes(&g, &idx.to_bytes_v2(&opts)).unwrap();
            assert_eq!(idx.hp, back.hp, "block_entries = {block_entries}");
        }
    }

    #[test]
    fn file_round_trip() {
        let g = two_cliques_bridge(4);
        let idx = SlingIndex::build(&g, &cfg()).unwrap();
        let path = std::env::temp_dir().join(format!("sling_fmt_{}.idx", std::process::id()));
        idx.save(&path).unwrap();
        let back = SlingIndex::load(&g, &path).unwrap();
        assert_eq!(idx.hp, back.hp);
        // The v2 file loads through the same entry point.
        idx.save_v2(&path, &CompressOptions::default()).unwrap();
        let back = SlingIndex::load(&g, &path).unwrap();
        assert_eq!(idx.hp, back.hp);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_wrong_graph() {
        let g = two_cliques_bridge(4);
        let idx = SlingIndex::build(&g, &cfg()).unwrap();
        let other = two_cliques_bridge(5);
        let err = SlingIndex::from_bytes(&other, &idx.to_bytes()).unwrap_err();
        assert!(matches!(err, SlingError::GraphMismatch { .. }));
        let err = SlingIndex::from_bytes(&other, &idx.to_bytes_v2(&CompressOptions::default()))
            .unwrap_err();
        assert!(matches!(err, SlingError::GraphMismatch { .. }));
    }

    #[test]
    fn rejects_truncation_and_corruption() {
        let g = two_cliques_bridge(4);
        let idx = SlingIndex::build(&g, &cfg()).unwrap();
        for bytes in [
            idx.to_bytes(),
            idx.to_bytes_v2(&CompressOptions::default()),
            idx.to_bytes_v3(&CompressOptions::default()),
        ] {
            // Truncations at various prefixes must all error, never panic.
            for cut in [0, 4, 8, 20, 60, bytes.len() / 2, bytes.len() - 1] {
                assert!(
                    SlingIndex::from_bytes(&g, &bytes[..cut]).is_err(),
                    "cut {cut} accepted"
                );
            }
            // Corrupt magic.
            let mut bad = bytes.clone();
            bad[0] ^= 0xff;
            assert!(SlingIndex::from_bytes(&g, &bad).is_err());
        }
    }

    #[test]
    fn meta_decode_reports_section_geometry() {
        let g = two_cliques_bridge(5);
        let idx = SlingIndex::build(&g, &cfg()).unwrap();
        let bytes = idx.to_bytes();
        let meta = decode_meta(&bytes).unwrap();
        assert_eq!(meta.version, FormatVersion::V1);
        assert_eq!(meta.num_nodes, g.num_nodes());
        assert_eq!(meta.num_edges, g.num_edges());
        assert_eq!(meta.entries, idx.hp.total_entries());
        assert_eq!(meta.hp_offsets, idx.hp.offsets);
        assert_eq!(meta.total_len, bytes.len());
        let PayloadGeometry::Raw {
            steps_base,
            nodes_base,
            values_base,
        } = meta.payload
        else {
            panic!("v1 image decoded to a blocked geometry");
        };
        assert_eq!(nodes_base - steps_base, meta.entries * 2);
        assert_eq!(values_base - nodes_base, meta.entries * 4);
        // The payload sections hold exactly the arena arrays.
        let steps_raw = &bytes[steps_base..nodes_base];
        assert_eq!(
            steps_raw
                .chunks(2)
                .map(|c| u16::from_le_bytes(c.try_into().unwrap()))
                .collect::<Vec<_>>(),
            idx.hp.steps
        );
    }

    #[test]
    fn meta_decode_reports_block_geometry() {
        let g = two_cliques_bridge(5);
        let idx = SlingIndex::build(&g, &cfg()).unwrap();
        let opts = CompressOptions {
            block_entries: 32,
            quantize_values: false,
        };
        let bytes = idx.to_bytes_v2(&opts);
        let meta = decode_meta(&bytes).unwrap();
        assert_eq!(meta.version, FormatVersion::V2);
        assert_eq!(meta.total_len, bytes.len());
        let PayloadGeometry::Blocked(geo) = meta.payload else {
            panic!("v2 image decoded to a raw geometry");
        };
        assert_eq!(geo.block_entries, 32);
        assert_eq!(geo.num_blocks(), meta.entries.div_ceil(32));
        assert!(geo.values_exact);
        assert_eq!(geo.blocks_base + geo.payload_len(), bytes.len());
    }

    #[test]
    fn meta_decode_rejects_oversized_counts() {
        let g = two_cliques_bridge(4);
        let idx = SlingIndex::build(&g, &cfg()).unwrap();
        for mut bytes in [idx.to_bytes(), idx.to_bytes_v2(&CompressOptions::default())] {
            // Blow up the node count field: must be rejected before any
            // n-sized allocation happens.
            bytes[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
            assert!(SlingIndex::from_bytes(&g, &bytes).is_err());
            assert!(decode_meta(&bytes).is_err());
        }
    }

    #[test]
    fn v2_rejects_entry_counts_larger_than_the_payload() {
        let g = two_cliques_bridge(4);
        let idx = SlingIndex::build(&g, &cfg()).unwrap();
        let opts = CompressOptions {
            block_entries: MAX_BLOCK_ENTRIES,
            quantize_values: false,
        };
        let mut bytes = idx.to_bytes_v2(&opts);
        let meta = decode_meta(&bytes).unwrap();
        let n = meta.num_nodes;
        // Claim MAX_BLOCK_ENTRIES entries: still consistent with the
        // one-block directory, but far beyond the payload bytes. The
        // decoder must reject this *in decode_meta* — before any
        // entries-sized allocation — or a ~100 KB file could demand a
        // multi-gigabyte decode.
        let claimed = (MAX_BLOCK_ENTRIES as u64).to_le_bytes();
        let last_off = meta.offsets_base + n * 8;
        bytes[last_off..last_off + 8].copy_from_slice(&claimed);
        bytes[last_off + 8..last_off + 16].copy_from_slice(&claimed);
        let Err(err) = decode_meta(&bytes) else {
            panic!("oversized entry claim accepted");
        };
        assert!(err.to_string().contains("cannot fit"), "{err}");
        assert!(SlingIndex::decode(&bytes).is_err());
    }

    #[test]
    fn inspect_reports_both_generations() {
        let g = barabasi_albert(100, 3, 5).unwrap();
        let idx = SlingIndex::build(&g, &cfg()).unwrap();
        let v1 = inspect_bytes(&idx.to_bytes()).unwrap();
        assert_eq!(v1.version, FormatVersion::V1);
        assert_eq!(v1.entries, idx.hp.total_entries());
        assert_eq!(v1.payload_bytes, v1.raw_payload_bytes);
        assert_eq!(v1.compression_ratio(), 1.0);
        assert!(v1.values_exact);

        let v2 = inspect_bytes(&idx.to_bytes_v2(&CompressOptions::default())).unwrap();
        assert_eq!(v2.version, FormatVersion::V2);
        assert_eq!(v2.entries, v1.entries);
        assert!(v2.payload_bytes < v1.payload_bytes);
        assert!(v2.compression_ratio() < 1.0);
        assert!(v2.values_exact);
        assert!(v2.num_blocks > 0);
        assert_eq!(v2.block_entries, crate::codec::DEFAULT_BLOCK_ENTRIES);
        assert_eq!(v2.directory_bytes, (v2.num_blocks + 1) * 8);
        assert_eq!(v2.global_dict_bytes, 0);

        let v3 = inspect_bytes(&idx.to_bytes_v3(&CompressOptions::default())).unwrap();
        assert_eq!(v3.version, FormatVersion::V3);
        assert_eq!(v3.entries, v1.entries);
        // v3 payload_bytes charges the dictionary + directory and still
        // beats v2's block bytes alone.
        assert!(v3.payload_bytes < v2.payload_bytes);
        assert!(v3.global_dict_bytes > 0);
        assert!(v3.directory_bytes > 0);
        assert!(v3.values_exact);
    }
}
