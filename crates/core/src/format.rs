//! Binary persistence of a [`SlingIndex`].
//!
//! A small hand-rolled format (magic + version + little-endian sections)
//! rather than a serde backend: the index is dominated by four large
//! primitive arrays, which serialize as flat byte runs with no per-element
//! overhead. The graph itself is *not* stored — on load the caller passes
//! the graph and the header's `(n, m)` fingerprint is verified against it.

use std::fs::File;
use std::io::{Read, Write};
use std::path::Path;

use bytes::{Buf, BufMut};
use sling_graph::DiGraph;

use crate::config::SlingConfig;
use crate::enhance::MarkArena;
use crate::error::SlingError;
use crate::hp::HpArena;
use crate::index::{BuildStats, SlingIndex};

const MAGIC: &[u8; 8] = b"SLNGIDX1";

/// True when any HP value is non-finite or wildly out of the unit range
/// (corruption detector; legitimate values are probabilities).
fn values_corrupt(values: &[f64]) -> bool {
    values.iter().any(|v| !v.is_finite() || *v < 0.0 || *v > 1.0 + 1e-9)
}

impl SlingIndex {
    /// Serialize the full index into a byte vector.
    pub fn to_bytes(&self) -> Vec<u8> {
        let n = self.num_nodes;
        let entries = self.hp.total_entries();
        let mut out = Vec::with_capacity(64 + n * 9 + entries * 14 + self.marks.local.len() * 4);
        out.put_slice(MAGIC);
        out.put_u64_le(n as u64);
        out.put_u64_le(self.num_edges as u64);

        // Config.
        out.put_f64_le(self.config.c);
        out.put_f64_le(self.config.epsilon);
        out.put_f64_le(self.config.eps_d);
        out.put_f64_le(self.config.theta);
        out.put_f64_le(self.config.delta.unwrap_or(f64::NAN));
        out.put_u64_le(self.config.seed);
        out.put_f64_le(self.config.gamma);
        let flags = (self.config.adaptive_dk as u8)
            | (self.config.space_reduction as u8) << 1
            | (self.config.enhance_accuracy as u8) << 2
            | (self.config.exact_diagonal as u8) << 3;
        out.put_u8(flags);

        // Stats.
        out.put_u64_le(self.stats.dk_samples);
        out.put_u64_le(self.stats.entries_before_reduction as u64);
        out.put_u64_le(self.stats.entries_stored as u64);
        out.put_u64_le(self.stats.reduced_nodes as u64);
        out.put_u64_le(self.stats.marked_entries as u64);

        // Correction factors and reduction bitmap.
        for &x in &self.d {
            out.put_f64_le(x);
        }
        for &r in &self.reduced {
            out.put_u8(r as u8);
        }

        // Marks.
        for &o in &self.marks.offsets {
            out.put_u64_le(o);
        }
        out.put_u64_le(self.marks.local.len() as u64);
        for &l in &self.marks.local {
            out.put_u32_le(l);
        }

        // HP arena.
        for &o in &self.hp.offsets {
            out.put_u64_le(o);
        }
        out.put_u64_le(entries as u64);
        for &s in &self.hp.steps {
            out.put_u16_le(s);
        }
        for &nd in &self.hp.nodes {
            out.put_u32_le(nd);
        }
        for &v in &self.hp.values {
            out.put_f64_le(v);
        }
        out
    }

    /// Deserialize an index previously produced by
    /// [`SlingIndex::to_bytes`], verifying it matches `graph`.
    pub fn from_bytes(graph: &DiGraph, bytes: &[u8]) -> Result<Self, SlingError> {
        let mut buf = bytes;
        let need = |buf: &[u8], n: usize, what: &str| -> Result<(), SlingError> {
            if buf.remaining() < n {
                Err(SlingError::CorruptIndex(format!(
                    "truncated while reading {what}"
                )))
            } else {
                Ok(())
            }
        };
        need(buf, 8 + 16, "header")?;
        let mut magic = [0u8; 8];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(SlingError::CorruptIndex("bad magic".into()));
        }
        let n = buf.get_u64_le() as usize;
        let m = buf.get_u64_le() as usize;
        if n != graph.num_nodes() || m != graph.num_edges() {
            return Err(SlingError::GraphMismatch {
                expected_nodes: n,
                found_nodes: graph.num_nodes(),
            });
        }

        need(buf, 7 * 8 + 1, "config")?;
        let c = buf.get_f64_le();
        let epsilon = buf.get_f64_le();
        let eps_d = buf.get_f64_le();
        let theta = buf.get_f64_le();
        let delta_raw = buf.get_f64_le();
        let seed = buf.get_u64_le();
        let gamma = buf.get_f64_le();
        let flags = buf.get_u8();
        let config = SlingConfig {
            c,
            epsilon,
            eps_d,
            theta,
            delta: if delta_raw.is_nan() {
                None
            } else {
                Some(delta_raw)
            },
            seed,
            adaptive_dk: flags & 1 != 0,
            space_reduction: flags & 2 != 0,
            gamma,
            enhance_accuracy: flags & 4 != 0,
            exact_diagonal: flags & 8 != 0,
            threads: 1,
        };

        need(buf, 5 * 8, "stats")?;
        let stats = BuildStats {
            dk_samples: buf.get_u64_le(),
            entries_before_reduction: buf.get_u64_le() as usize,
            entries_stored: buf.get_u64_le() as usize,
            reduced_nodes: buf.get_u64_le() as usize,
            marked_entries: buf.get_u64_le() as usize,
        };

        need(buf, n * 8 + n, "correction factors")?;
        let mut d = Vec::with_capacity(n);
        for _ in 0..n {
            d.push(buf.get_f64_le());
        }
        let mut reduced = Vec::with_capacity(n);
        for _ in 0..n {
            reduced.push(buf.get_u8() != 0);
        }

        need(buf, (n + 1) * 8 + 8, "mark offsets")?;
        let mut mark_offsets = Vec::with_capacity(n + 1);
        for _ in 0..=n {
            mark_offsets.push(buf.get_u64_le());
        }
        let mark_len = buf.get_u64_le() as usize;
        need(buf, mark_len * 4, "mark entries")?;
        let mut mark_local = Vec::with_capacity(mark_len);
        for _ in 0..mark_len {
            mark_local.push(buf.get_u32_le());
        }
        if *mark_offsets.last().unwrap() as usize != mark_len {
            return Err(SlingError::CorruptIndex("mark offsets mismatch".into()));
        }

        need(buf, (n + 1) * 8 + 8, "hp offsets")?;
        let mut offsets = Vec::with_capacity(n + 1);
        for _ in 0..=n {
            offsets.push(buf.get_u64_le());
        }
        let entries = buf.get_u64_le() as usize;
        if *offsets.last().unwrap() as usize != entries {
            return Err(SlingError::CorruptIndex("hp offsets mismatch".into()));
        }
        need(buf, entries * (2 + 4 + 8), "hp entries")?;
        let mut steps = Vec::with_capacity(entries);
        for _ in 0..entries {
            steps.push(buf.get_u16_le());
        }
        let mut nodes = Vec::with_capacity(entries);
        for _ in 0..entries {
            nodes.push(buf.get_u32_le());
        }
        let mut values = Vec::with_capacity(entries);
        for _ in 0..entries {
            values.push(buf.get_f64_le());
        }

        let hp = HpArena {
            offsets,
            steps,
            nodes,
            values,
        };
        if !hp.validate() {
            return Err(SlingError::CorruptIndex("hp arena fails validation".into()));
        }
        if hp.nodes.iter().any(|&k| k as usize >= n) {
            return Err(SlingError::CorruptIndex(
                "hp entry references a node past n".into(),
            ));
        }
        let marks = MarkArena {
            offsets: mark_offsets,
            local: mark_local,
        };
        if !marks.validate(&hp) {
            return Err(SlingError::CorruptIndex("mark arena fails validation".into()));
        }
        if d.iter().any(|x| !x.is_finite()) || values_corrupt(&hp.values) {
            return Err(SlingError::CorruptIndex(
                "non-finite payload in correction factors or HP values".into(),
            ));
        }
        config.validate()?;
        Ok(SlingIndex {
            config,
            num_nodes: n,
            num_edges: m,
            d,
            hp,
            reduced,
            marks,
            stats,
        })
    }

    /// Persist to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), SlingError> {
        let mut f = File::create(path)?;
        f.write_all(&self.to_bytes())?;
        Ok(())
    }

    /// Load from a file, verifying against `graph`.
    pub fn load(graph: &DiGraph, path: impl AsRef<Path>) -> Result<Self, SlingError> {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        Self::from_bytes(graph, &bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sling_graph::generators::{barabasi_albert, two_cliques_bridge};
    use sling_graph::NodeId;

    fn cfg() -> SlingConfig {
        SlingConfig::from_epsilon(0.6, 0.1)
            .with_seed(21)
            .with_enhancement(true)
    }

    #[test]
    fn byte_round_trip_preserves_everything() {
        let g = barabasi_albert(120, 2, 4).unwrap();
        let idx = SlingIndex::build(&g, &cfg()).unwrap();
        let bytes = idx.to_bytes();
        let back = SlingIndex::from_bytes(&g, &bytes).unwrap();
        assert_eq!(idx.d, back.d);
        assert_eq!(idx.hp, back.hp);
        assert_eq!(idx.reduced, back.reduced);
        assert_eq!(idx.marks, back.marks);
        assert_eq!(idx.config, back.config);
        // Queries agree exactly.
        for (u, v) in [(0u32, 1u32), (5, 80), (119, 3)] {
            assert_eq!(
                idx.single_pair(&g, NodeId(u), NodeId(v)),
                back.single_pair(&g, NodeId(u), NodeId(v))
            );
        }
    }

    #[test]
    fn file_round_trip() {
        let g = two_cliques_bridge(4);
        let idx = SlingIndex::build(&g, &cfg()).unwrap();
        let path = std::env::temp_dir().join(format!("sling_fmt_{}.idx", std::process::id()));
        idx.save(&path).unwrap();
        let back = SlingIndex::load(&g, &path).unwrap();
        assert_eq!(idx.hp, back.hp);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_wrong_graph() {
        let g = two_cliques_bridge(4);
        let idx = SlingIndex::build(&g, &cfg()).unwrap();
        let other = two_cliques_bridge(5);
        let err = SlingIndex::from_bytes(&other, &idx.to_bytes()).unwrap_err();
        assert!(matches!(err, SlingError::GraphMismatch { .. }));
    }

    #[test]
    fn rejects_truncation_and_corruption() {
        let g = two_cliques_bridge(4);
        let idx = SlingIndex::build(&g, &cfg()).unwrap();
        let bytes = idx.to_bytes();
        // Truncations at various prefixes must all error, never panic.
        for cut in [0, 4, 8, 20, 60, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                SlingIndex::from_bytes(&g, &bytes[..cut]).is_err(),
                "cut {cut} accepted"
            );
        }
        // Corrupt magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert!(SlingIndex::from_bytes(&g, &bad).is_err());
    }
}
