//! Binary persistence of a [`SlingIndex`] — the `SLNGIDX1` format.
//!
//! A small hand-rolled format (magic + version + little-endian sections)
//! rather than a serde backend: the index is dominated by four large
//! primitive arrays, which serialize as flat byte runs with no per-element
//! overhead. The graph itself is *not* stored — on load the caller passes
//! the graph and the header's `(n, m)` fingerprint is verified against it.
//!
//! ## Layout
//!
//! ```text
//! magic "SLNGIDX1" | n u64 | m u64
//! config: c, epsilon, eps_d, theta, delta f64 | seed u64 | gamma f64 | flags u8
//! stats: 5 × u64
//! d:        n × f64
//! reduced:  n × u8
//! marks:    (n+1) × u64 offsets | len u64 | len × u32 locals
//! hp:       (n+1) × u64 offsets | entries u64
//!           entries × u16 steps | entries × u32 nodes | entries × f64 values
//! ```
//!
//! The three entry arrays are stored as contiguous *sections* (not
//! interleaved records) so the out-of-core backends can address them
//! directly: [`decode_meta`] validates everything **up to** the entry
//! payload and reports the payload section offsets, which is all the
//! zero-copy mmap backend ([`crate::store::MmapHpArena`]) and the
//! positioned-read disk backend ([`crate::out_of_core::DiskHpStore`])
//! need — neither ever decodes the full payload.
//!
//! Every malformed input — truncation, bad magic, non-monotone offsets,
//! out-of-range ids, overflowing section sizes — surfaces as
//! [`SlingError::CorruptIndex`]; no input may panic the decoder.

use std::fs::File;
use std::io::{Read, Write};
use std::path::Path;

use bytes::{Buf, BufMut};
use sling_graph::DiGraph;

use crate::config::SlingConfig;
use crate::enhance::MarkArena;
use crate::error::SlingError;
use crate::hp::HpArena;
use crate::index::{BuildStats, SlingIndex};

const MAGIC: &[u8; 8] = b"SLNGIDX1";

/// True when any HP value is non-finite or wildly out of the unit range
/// (corruption detector; legitimate values are probabilities).
fn values_corrupt(values: &[f64]) -> bool {
    values
        .iter()
        .any(|v| !v.is_finite() || *v < 0.0 || *v > 1.0 + 1e-9)
}

/// Everything in a `SLNGIDX1` file *except* the entry payload: the
/// query-side metadata plus the byte offsets of the payload sections.
/// Produced by [`decode_meta`], shared by the full decoder and the
/// out-of-core backends.
pub(crate) struct DecodedMeta {
    pub config: SlingConfig,
    pub stats: BuildStats,
    pub num_nodes: usize,
    pub num_edges: usize,
    pub d: Vec<f64>,
    pub reduced: Vec<bool>,
    pub marks: MarkArena,
    /// Per-node entry offsets; `n + 1` values, validated monotone with
    /// `hp_offsets[0] = 0` and `hp_offsets[n] = entries`.
    pub hp_offsets: Vec<u64>,
    /// Total stored entries.
    pub entries: usize,
    /// Byte offset of the on-file HP offset table.
    pub offsets_base: usize,
    /// Byte offsets of the three payload sections.
    pub steps_base: usize,
    pub nodes_base: usize,
    pub values_base: usize,
    /// Expected total file size; validated `<=` the available bytes.
    pub total_len: usize,
}

fn corrupt(what: impl Into<String>) -> SlingError {
    SlingError::CorruptIndex(what.into())
}

fn need(buf: &[u8], n: usize, what: &str) -> Result<(), SlingError> {
    if buf.remaining() < n {
        Err(corrupt(format!("truncated while reading {what}")))
    } else {
        Ok(())
    }
}

/// Decode and validate the metadata prefix of a `SLNGIDX1` byte image.
///
/// Cost is `O(n)` in the node count and **independent of the number of
/// stored entries**: the payload sections are bound-checked against the
/// image length but never read.
pub(crate) fn decode_meta(bytes: &[u8]) -> Result<DecodedMeta, SlingError> {
    let mut buf = bytes;
    need(buf, 8 + 16, "header")?;
    let mut magic = [0u8; 8];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(corrupt("bad magic"));
    }
    let n = buf.get_u64_le() as usize;
    let m = buf.get_u64_le() as usize;
    // A file with n nodes stores at least n reduction bytes, so n can
    // never exceed the image size; rejecting early keeps every later
    // `n`-sized allocation and loop bounded by the input length.
    if n > bytes.len() {
        return Err(corrupt(format!("node count {n} exceeds file size")));
    }

    need(buf, 7 * 8 + 1, "config")?;
    let c = buf.get_f64_le();
    let epsilon = buf.get_f64_le();
    let eps_d = buf.get_f64_le();
    let theta = buf.get_f64_le();
    let delta_raw = buf.get_f64_le();
    let seed = buf.get_u64_le();
    let gamma = buf.get_f64_le();
    let flags = buf.get_u8();
    let config = SlingConfig {
        c,
        epsilon,
        eps_d,
        theta,
        delta: if delta_raw.is_nan() {
            None
        } else {
            Some(delta_raw)
        },
        seed,
        adaptive_dk: flags & 1 != 0,
        space_reduction: flags & 2 != 0,
        gamma,
        enhance_accuracy: flags & 4 != 0,
        exact_diagonal: flags & 8 != 0,
        threads: 1,
    };

    need(buf, 5 * 8, "stats")?;
    let stats = BuildStats {
        dk_samples: buf.get_u64_le(),
        entries_before_reduction: buf.get_u64_le() as usize,
        entries_stored: buf.get_u64_le() as usize,
        reduced_nodes: buf.get_u64_le() as usize,
        marked_entries: buf.get_u64_le() as usize,
    };

    need(buf, n * 8 + n, "correction factors")?;
    let mut d = Vec::with_capacity(n);
    for _ in 0..n {
        d.push(buf.get_f64_le());
    }
    let mut reduced = Vec::with_capacity(n);
    for _ in 0..n {
        reduced.push(buf.get_u8() != 0);
    }

    need(buf, (n + 1) * 8 + 8, "mark offsets")?;
    let mut mark_offsets = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        mark_offsets.push(buf.get_u64_le());
    }
    let mark_len = buf.get_u64_le() as usize;
    if mark_len > buf.remaining() / 4 {
        return Err(corrupt("truncated while reading mark entries"));
    }
    let mut mark_local = Vec::with_capacity(mark_len);
    for _ in 0..mark_len {
        mark_local.push(buf.get_u32_le());
    }

    let offsets_base = bytes.len() - buf.remaining();
    need(buf, (n + 1) * 8 + 8, "hp offsets")?;
    let mut hp_offsets = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        hp_offsets.push(buf.get_u64_le());
    }
    let entries = buf.get_u64_le() as usize;

    // Offset-table validation: monotone from 0 to `entries`. This is the
    // invariant every backend's `range(v)` relies on for in-bounds entry
    // access.
    if hp_offsets.first() != Some(&0) || *hp_offsets.last().unwrap() as usize != entries {
        return Err(corrupt("hp offsets mismatch"));
    }
    if hp_offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(corrupt("hp offsets not monotone"));
    }

    let marks = MarkArena {
        offsets: mark_offsets,
        local: mark_local,
    };
    if !marks.validate_runs(&hp_offsets) {
        return Err(corrupt("mark arena fails validation"));
    }
    if d.iter().any(|x| !x.is_finite()) {
        return Err(corrupt("non-finite correction factor"));
    }
    config.validate()?;

    // Payload section geometry, overflow-checked against the image size.
    let steps_base = bytes.len() - buf.remaining();
    let section = |base: usize, width: usize| -> Result<usize, SlingError> {
        entries
            .checked_mul(width)
            .and_then(|sz| base.checked_add(sz))
            .ok_or_else(|| corrupt("entry section size overflows"))
    };
    let nodes_base = section(steps_base, 2)?;
    let values_base = section(nodes_base, 4)?;
    let total_len = section(values_base, 8)?;
    if total_len > bytes.len() {
        return Err(corrupt("truncated while reading hp entries"));
    }

    Ok(DecodedMeta {
        config,
        stats,
        num_nodes: n,
        num_edges: m,
        d,
        reduced,
        marks,
        hp_offsets,
        entries,
        offsets_base,
        steps_base,
        nodes_base,
        values_base,
        total_len,
    })
}

impl SlingIndex {
    /// Serialize the full index into a byte vector.
    pub fn to_bytes(&self) -> Vec<u8> {
        let n = self.num_nodes;
        let entries = self.hp.total_entries();
        let mut out = Vec::with_capacity(64 + n * 9 + entries * 14 + self.marks.local.len() * 4);
        out.put_slice(MAGIC);
        out.put_u64_le(n as u64);
        out.put_u64_le(self.num_edges as u64);

        // Config.
        out.put_f64_le(self.config.c);
        out.put_f64_le(self.config.epsilon);
        out.put_f64_le(self.config.eps_d);
        out.put_f64_le(self.config.theta);
        out.put_f64_le(self.config.delta.unwrap_or(f64::NAN));
        out.put_u64_le(self.config.seed);
        out.put_f64_le(self.config.gamma);
        let flags = (self.config.adaptive_dk as u8)
            | (self.config.space_reduction as u8) << 1
            | (self.config.enhance_accuracy as u8) << 2
            | (self.config.exact_diagonal as u8) << 3;
        out.put_u8(flags);

        // Stats.
        out.put_u64_le(self.stats.dk_samples);
        out.put_u64_le(self.stats.entries_before_reduction as u64);
        out.put_u64_le(self.stats.entries_stored as u64);
        out.put_u64_le(self.stats.reduced_nodes as u64);
        out.put_u64_le(self.stats.marked_entries as u64);

        // Correction factors and reduction bitmap.
        for &x in &self.d {
            out.put_f64_le(x);
        }
        for &r in &self.reduced {
            out.put_u8(r as u8);
        }

        // Marks.
        for &o in &self.marks.offsets {
            out.put_u64_le(o);
        }
        out.put_u64_le(self.marks.local.len() as u64);
        for &l in &self.marks.local {
            out.put_u32_le(l);
        }

        // HP arena.
        for &o in &self.hp.offsets {
            out.put_u64_le(o);
        }
        out.put_u64_le(entries as u64);
        for &s in &self.hp.steps {
            out.put_u16_le(s);
        }
        for &nd in &self.hp.nodes {
            out.put_u32_le(nd);
        }
        for &v in &self.hp.values {
            out.put_f64_le(v);
        }
        out
    }

    /// Deserialize an index previously produced by
    /// [`SlingIndex::to_bytes`], verifying it matches `graph`.
    pub fn from_bytes(graph: &DiGraph, bytes: &[u8]) -> Result<Self, SlingError> {
        let meta = decode_meta(bytes)?;
        debug_assert!(meta.total_len <= bytes.len());
        if meta.num_nodes != graph.num_nodes() || meta.num_edges != graph.num_edges() {
            return Err(SlingError::GraphMismatch {
                expected_nodes: meta.num_nodes,
                found_nodes: graph.num_nodes(),
            });
        }
        let entries = meta.entries;

        let mut steps = Vec::with_capacity(entries);
        let mut buf = &bytes[meta.steps_base..];
        for _ in 0..entries {
            steps.push(buf.get_u16_le());
        }
        let mut nodes = Vec::with_capacity(entries);
        let mut buf = &bytes[meta.nodes_base..];
        for _ in 0..entries {
            nodes.push(buf.get_u32_le());
        }
        let mut values = Vec::with_capacity(entries);
        let mut buf = &bytes[meta.values_base..];
        for _ in 0..entries {
            values.push(buf.get_f64_le());
        }

        let hp = HpArena {
            offsets: meta.hp_offsets,
            steps,
            nodes,
            values,
        };
        if !hp.validate() {
            return Err(corrupt("hp arena fails validation"));
        }
        if hp.nodes.iter().any(|&k| k as usize >= meta.num_nodes) {
            return Err(corrupt("hp entry references a node past n"));
        }
        if values_corrupt(&hp.values) {
            return Err(corrupt("non-finite payload in HP values"));
        }
        Ok(SlingIndex {
            config: meta.config,
            num_nodes: meta.num_nodes,
            num_edges: meta.num_edges,
            d: meta.d,
            hp,
            reduced: meta.reduced,
            marks: meta.marks,
            stats: meta.stats,
        })
    }

    /// Persist to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), SlingError> {
        let mut f = File::create(path)?;
        f.write_all(&self.to_bytes())?;
        Ok(())
    }

    /// Load from a file, verifying against `graph`.
    pub fn load(graph: &DiGraph, path: impl AsRef<Path>) -> Result<Self, SlingError> {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        Self::from_bytes(graph, &bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sling_graph::generators::{barabasi_albert, two_cliques_bridge};
    use sling_graph::NodeId;

    fn cfg() -> SlingConfig {
        SlingConfig::from_epsilon(0.6, 0.1)
            .with_seed(21)
            .with_enhancement(true)
    }

    #[test]
    fn byte_round_trip_preserves_everything() {
        let g = barabasi_albert(120, 2, 4).unwrap();
        let idx = SlingIndex::build(&g, &cfg()).unwrap();
        let bytes = idx.to_bytes();
        let back = SlingIndex::from_bytes(&g, &bytes).unwrap();
        assert_eq!(idx.d, back.d);
        assert_eq!(idx.hp, back.hp);
        assert_eq!(idx.reduced, back.reduced);
        assert_eq!(idx.marks, back.marks);
        assert_eq!(idx.config, back.config);
        // Queries agree exactly.
        for (u, v) in [(0u32, 1u32), (5, 80), (119, 3)] {
            assert_eq!(
                idx.single_pair(&g, NodeId(u), NodeId(v)),
                back.single_pair(&g, NodeId(u), NodeId(v))
            );
        }
    }

    #[test]
    fn file_round_trip() {
        let g = two_cliques_bridge(4);
        let idx = SlingIndex::build(&g, &cfg()).unwrap();
        let path = std::env::temp_dir().join(format!("sling_fmt_{}.idx", std::process::id()));
        idx.save(&path).unwrap();
        let back = SlingIndex::load(&g, &path).unwrap();
        assert_eq!(idx.hp, back.hp);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_wrong_graph() {
        let g = two_cliques_bridge(4);
        let idx = SlingIndex::build(&g, &cfg()).unwrap();
        let other = two_cliques_bridge(5);
        let err = SlingIndex::from_bytes(&other, &idx.to_bytes()).unwrap_err();
        assert!(matches!(err, SlingError::GraphMismatch { .. }));
    }

    #[test]
    fn rejects_truncation_and_corruption() {
        let g = two_cliques_bridge(4);
        let idx = SlingIndex::build(&g, &cfg()).unwrap();
        let bytes = idx.to_bytes();
        // Truncations at various prefixes must all error, never panic.
        for cut in [0, 4, 8, 20, 60, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                SlingIndex::from_bytes(&g, &bytes[..cut]).is_err(),
                "cut {cut} accepted"
            );
        }
        // Corrupt magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert!(SlingIndex::from_bytes(&g, &bad).is_err());
    }

    #[test]
    fn meta_decode_reports_section_geometry() {
        let g = two_cliques_bridge(5);
        let idx = SlingIndex::build(&g, &cfg()).unwrap();
        let bytes = idx.to_bytes();
        let meta = decode_meta(&bytes).unwrap();
        assert_eq!(meta.num_nodes, g.num_nodes());
        assert_eq!(meta.num_edges, g.num_edges());
        assert_eq!(meta.entries, idx.hp.total_entries());
        assert_eq!(meta.hp_offsets, idx.hp.offsets);
        assert_eq!(meta.total_len, bytes.len());
        assert_eq!(meta.nodes_base - meta.steps_base, meta.entries * 2);
        assert_eq!(meta.values_base - meta.nodes_base, meta.entries * 4);
        // The payload sections hold exactly the arena arrays.
        let steps_raw = &bytes[meta.steps_base..meta.nodes_base];
        assert_eq!(
            steps_raw
                .chunks(2)
                .map(|c| u16::from_le_bytes(c.try_into().unwrap()))
                .collect::<Vec<_>>(),
            idx.hp.steps
        );
    }

    #[test]
    fn meta_decode_rejects_oversized_counts() {
        let g = two_cliques_bridge(4);
        let idx = SlingIndex::build(&g, &cfg()).unwrap();
        let mut bytes = idx.to_bytes();
        // Blow up the node count field: must be rejected before any
        // n-sized allocation happens.
        bytes[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(SlingIndex::from_bytes(&g, &bytes).is_err());
        assert!(decode_meta(&bytes).is_err());
    }
}
