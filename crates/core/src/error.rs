//! Error type for SLING index construction, queries, and persistence.

use std::fmt;
use std::io;

/// Errors produced by this crate.
#[derive(Debug)]
pub enum SlingError {
    /// A configuration parameter was outside its valid range.
    InvalidConfig(String),
    /// A query referenced a node id `>= n`.
    NodeOutOfRange { node: u32, n: u32 },
    /// The serialized index bytes were malformed or truncated.
    CorruptIndex(String),
    /// A persisted index does not match the graph it is being loaded for.
    GraphMismatch {
        expected_nodes: usize,
        found_nodes: usize,
    },
    /// Underlying IO failure (out-of-core construction, persistence).
    Io(io::Error),
}

impl fmt::Display for SlingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SlingError::InvalidConfig(msg) => write!(f, "invalid SLING config: {msg}"),
            SlingError::NodeOutOfRange { node, n } => {
                write!(f, "node id {node} out of range for graph with {n} nodes")
            }
            SlingError::CorruptIndex(msg) => write!(f, "corrupt index data: {msg}"),
            SlingError::GraphMismatch {
                expected_nodes,
                found_nodes,
            } => write!(
                f,
                "index was built for a graph with {expected_nodes} nodes, got {found_nodes}"
            ),
            SlingError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for SlingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SlingError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SlingError {
    fn from(e: io::Error) -> Self {
        SlingError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_carry_context() {
        let e = SlingError::NodeOutOfRange { node: 12, n: 10 };
        assert!(e.to_string().contains("12"));
        let e = SlingError::GraphMismatch {
            expected_nodes: 5,
            found_nodes: 6,
        };
        assert!(e.to_string().contains('5') && e.to_string().contains('6'));
    }

    #[test]
    fn io_conversion() {
        let e: SlingError = io::Error::new(io::ErrorKind::UnexpectedEof, "eof").into();
        assert!(matches!(e, SlingError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
