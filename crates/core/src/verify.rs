//! Empirical verification of the Theorem-1 guarantee.
//!
//! The index promises `|s̃(u,v) − s(u,v)| ≤ ε` for every pair with
//! probability `1 − δ`. This module lets a deployment *check* that claim
//! on its own graph:
//!
//! * [`audit_exact`] — compare every pair against the power-method ground
//!   truth (Lemma 1 iteration count). `O(n²)` memory; for the same small
//!   graphs the paper's Figures 5–7 use.
//! * [`audit_sampled`] — for large graphs: spot-check random pairs
//!   against high-precision Monte-Carlo √c-walk estimates (Lemma 3). The
//!   MC reference itself carries `ε_mc` error, so only deviations beyond
//!   `ε + ε_mc` count as violations.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use sling_graph::{DiGraph, NodeId};

use crate::index::{QueryWorkspace, SlingIndex};
use crate::reference::exact_simrank;
use crate::walk::WalkEngine;

/// Outcome of an error audit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ErrorAudit {
    /// The ε the index was built for.
    pub epsilon: f64,
    /// Largest observed absolute error.
    pub max_error: f64,
    /// Mean absolute error over checked pairs.
    pub mean_error: f64,
    /// Pairs whose error exceeded the allowed budget.
    pub violations: usize,
    /// Pairs checked.
    pub pairs_checked: usize,
}

impl ErrorAudit {
    /// Whether the audit observed no violation.
    pub fn passed(&self) -> bool {
        self.violations == 0
    }
}

impl std::fmt::Display for ErrorAudit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "audit: {} pairs, max err {:.5}, mean err {:.6}, eps {:.4}, {} violations",
            self.pairs_checked, self.max_error, self.mean_error, self.epsilon, self.violations
        )
    }
}

/// Audit every pair against the power-method ground truth (50 iterations:
/// residual `< c^50/(1-c) ≈ 10^-11` for `c = 0.6`, negligible next to ε).
///
/// ```
/// use sling_core::verify::audit_exact;
/// use sling_core::{SlingConfig, SlingIndex};
/// use sling_graph::generators::complete_graph;
///
/// let g = complete_graph(5);
/// let index = SlingIndex::build(&g, &SlingConfig::from_epsilon(0.6, 0.05)).unwrap();
/// let audit = audit_exact(&index, &g);
/// assert!(audit.passed(), "{audit}");
/// ```
pub fn audit_exact(index: &SlingIndex, graph: &DiGraph) -> ErrorAudit {
    let c = index.config().c;
    let eps = index.config().epsilon;
    let truth = exact_simrank(graph, c, 50);
    let mut ws = QueryWorkspace::new();
    let mut max_error: f64 = 0.0;
    let mut total = 0.0;
    let mut violations = 0;
    let mut checked = 0;
    for u in graph.nodes() {
        for v in graph.nodes() {
            let got = index.single_pair_with(graph, &mut ws, u, v);
            let err = (got - truth[u.index()][v.index()]).abs();
            max_error = max_error.max(err);
            total += err;
            checked += 1;
            if err > eps {
                violations += 1;
            }
        }
    }
    ErrorAudit {
        epsilon: eps,
        max_error,
        mean_error: if checked == 0 {
            0.0
        } else {
            total / checked as f64
        },
        violations,
        pairs_checked: checked,
    }
}

/// Audit `pairs` random pairs against Monte-Carlo references built from
/// `mc_pairs` √c-walk pairs each. Deviations beyond `ε + ε_mc` count as
/// violations, where `ε_mc = sqrt(3 ln(2/δ_mc) / mc_pairs)` is the
/// Chernoff half-width at `δ_mc = 10⁻⁴` per reference.
pub fn audit_sampled(
    index: &SlingIndex,
    graph: &DiGraph,
    pairs: usize,
    mc_pairs: u32,
    seed: u64,
) -> ErrorAudit {
    let c = index.config().c;
    let eps = index.config().epsilon;
    let eps_mc = (3.0 * (2.0f64 / 1e-4).ln() / mc_pairs as f64).sqrt();
    let engine = WalkEngine::new(graph, c);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut ws = QueryWorkspace::new();
    let n = graph.num_nodes() as u32;
    let mut max_error: f64 = 0.0;
    let mut total = 0.0;
    let mut violations = 0;
    for _ in 0..pairs {
        let u = NodeId(rng.random_range(0..n));
        let v = NodeId(rng.random_range(0..n));
        if u == v {
            continue;
        }
        let reference = engine.estimate_simrank(&mut rng, u, v, mc_pairs);
        let got = index.single_pair_with(graph, &mut ws, u, v);
        let err = (got - reference).abs();
        max_error = max_error.max(err);
        total += err;
        if err > eps + eps_mc {
            violations += 1;
        }
    }
    ErrorAudit {
        epsilon: eps,
        max_error,
        mean_error: if pairs == 0 {
            0.0
        } else {
            total / pairs as f64
        },
        violations,
        pairs_checked: pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SlingConfig;
    use sling_graph::generators::{barabasi_albert, complete_graph, two_cliques_bridge};

    const C: f64 = 0.6;

    #[test]
    fn exact_audit_passes_on_small_graphs() {
        for g in [two_cliques_bridge(4), complete_graph(5)] {
            let idx = SlingIndex::build(
                &g,
                &SlingConfig::from_epsilon(C, 0.05)
                    .with_seed(9)
                    .with_exact_diagonal(false),
            )
            .unwrap();
            let audit = audit_exact(&idx, &g);
            assert!(audit.passed(), "{audit}");
            assert!(audit.max_error <= 0.05);
            assert!(audit.mean_error <= audit.max_error);
            assert_eq!(audit.pairs_checked, g.num_nodes() * g.num_nodes());
        }
    }

    #[test]
    fn sampled_audit_passes_on_larger_graph() {
        let g = barabasi_albert(400, 3, 7).unwrap();
        let idx = SlingIndex::build(&g, &SlingConfig::from_epsilon(C, 0.05).with_seed(3)).unwrap();
        let audit = audit_sampled(&idx, &g, 100, 20_000, 123);
        assert!(audit.passed(), "{audit}");
        assert!(audit.pairs_checked == 100);
    }

    #[test]
    fn audit_accounting_is_coherent() {
        let g = two_cliques_bridge(3);
        let idx = SlingIndex::build(
            &g,
            &SlingConfig::from_epsilon(C, 0.1)
                .with_seed(1)
                .with_exact_diagonal(false),
        )
        .unwrap();
        let audit = audit_exact(&idx, &g);
        assert_eq!(audit.epsilon, 0.1);
        assert!(audit.max_error >= audit.mean_error);
        let text = audit.to_string();
        assert!(text.contains("violations"), "{text}");
    }
}
