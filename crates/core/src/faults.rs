//! # faults — deterministic fault injection
//!
//! A process-wide registry of named **fault points** that the storage,
//! lifecycle, and serving layers consult at their failure-prone
//! boundaries. Production runs never pay for it: the fast path is one
//! relaxed [`AtomicBool`] load ([`check`] returns `None` immediately
//! when no rules are installed). Chaos tests and operators arm it with
//! a seeded schedule — via [`install_from_spec`], the `SLING_FAULTS`
//! environment variable ([`install_from_env`]), or `serve --faults` —
//! and every layer above observes *exactly* the same failure sequence
//! on every run.
//!
//! ## Fault points
//!
//! The instrumented sites are named like metrics, `layer.operation`
//! (see [`point`]): `disk.read` (positioned reads in `DiskHpStore`),
//! `mmap.validate` (the raw-section validation sweep in `MmapHpArena`),
//! `lifecycle.publish` / `lifecycle.promote` (the rename and `CURRENT`
//! swap in `GenerationStore`), and `server.accept` / `server.read` /
//! `server.write` (the acceptor and per-connection IO in
//! `sling-server`).
//!
//! ## Schedule grammar
//!
//! A spec is `;`-separated rules; each rule is
//! `point:action[:key=value]...`:
//!
//! ```text
//! disk.read:error:every=3:times=10
//! server.write:delay:delay_us=2000:p=0.5:seed=7
//! mmap.validate:corrupt:after=5:times=3
//! server.read:short_read:p=0.25:seed=42
//! ```
//!
//! Actions are [`FaultAction::Error`] (synthesize an IO error),
//! [`FaultAction::ShortRead`] (truncate the buffer the site just
//! filled), [`FaultAction::Delay`] (sleep `delay_us`), and
//! [`FaultAction::Corrupt`] (flip a byte so the checksum/validation
//! layer must catch it). Selectors compose: `after=N` skips the first
//! N hits, `first=N` fires only on the first N hits after that,
//! `every=N` fires on every Nth, `p=X` fires with probability X from a
//! per-rule xorshift stream seeded by `seed=S` — so a schedule is a
//! pure function of the spec and the hit sequence, never of wall-clock
//! time. `times=N` caps total firings.
//!
//! Every firing increments `sling_faults_injected_total` (exported via
//! [`crate::obs::register_process_metrics`]) and a per-rule counter
//! visible through [`snapshot`], so a chaos run can assert both that
//! faults actually happened and how many.

use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Canonical fault-point names. Sites pass these to [`check`]; specs
/// name them on the left of each rule.
pub mod point {
    /// Positioned entry/block reads in `DiskHpStore`.
    pub const DISK_READ: &str = "disk.read";
    /// Raw-section validation in `MmapHpArena::entries_ref`.
    pub const MMAP_VALIDATE: &str = "mmap.validate";
    /// The staging→final rename in `GenerationStore::publish_bytes`.
    pub const LIFECYCLE_PUBLISH: &str = "lifecycle.publish";
    /// The `CURRENT` swap in `GenerationStore::promote`.
    pub const LIFECYCLE_PROMOTE: &str = "lifecycle.promote";
    /// The server acceptor's `accept()` loop.
    pub const SERVER_ACCEPT: &str = "server.accept";
    /// Per-connection reads in the server event loop.
    pub const SERVER_READ: &str = "server.read";
    /// Per-connection writes in the server event loop.
    pub const SERVER_WRITE: &str = "server.write";
}

/// What an armed fault point should do to the operation that hit it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Fail the operation with a synthesized `io::Error`.
    Error,
    /// Pretend the backing layer returned fewer bytes than asked.
    ShortRead,
    /// Stall the operation for the given duration before proceeding.
    Delay(Duration),
    /// Flip a byte in the buffer the site just produced, so the
    /// validation layer above must detect it.
    Corrupt,
}

#[derive(Debug)]
struct Rule {
    point: String,
    action: FaultAction,
    /// Fire on every Nth hit (1 = every hit). 0 disables the modulus.
    every: u64,
    /// Skip this many hits before the rule becomes eligible.
    after: u64,
    /// Once eligible, only the first N hits may fire (0 = unlimited).
    first: u64,
    /// Cap on total firings (0 = unlimited).
    times: u64,
    /// Probability gate in [0, 1]; 1.0 = always.
    p: f64,
    /// xorshift64 state for the probability gate (deterministic).
    rng: u64,
    hits: u64,
    fired: u64,
}

impl Rule {
    fn next_f64(&mut self) -> f64 {
        // xorshift64: cheap, seedable, good enough for a fault gate.
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        (x >> 11) as f64 / (1u64 << 53) as f64
    }

    fn consider(&mut self) -> Option<FaultAction> {
        self.hits += 1;
        if self.times != 0 && self.fired >= self.times {
            return None;
        }
        if self.hits <= self.after {
            return None;
        }
        let eligible_hit = self.hits - self.after;
        if self.first != 0 && eligible_hit > self.first {
            return None;
        }
        if self.every > 1 && !eligible_hit.is_multiple_of(self.every) {
            return None;
        }
        if self.p < 1.0 && self.next_f64() >= self.p {
            return None;
        }
        self.fired += 1;
        Some(self.action)
    }
}

/// One rule's lifetime counters, for test assertions ([`snapshot`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleStats {
    /// The fault point the rule is attached to.
    pub point: String,
    /// How many times the point was hit while this rule was installed.
    pub hits: u64,
    /// How many times the rule actually fired.
    pub fired: u64,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static INJECTED: AtomicU64 = AtomicU64::new(0);
static RULES: Mutex<Vec<Rule>> = Mutex::new(Vec::new());

/// Consult the registry at a named fault point. Returns the action to
/// apply, or `None` (the overwhelmingly common case). When the
/// registry is disarmed this is a single relaxed atomic load.
#[inline]
pub fn check(point: &str) -> Option<FaultAction> {
    if !ENABLED.load(Ordering::Relaxed) {
        return None;
    }
    check_slow(point)
}

#[cold]
fn check_slow(point: &str) -> Option<FaultAction> {
    let mut rules = RULES.lock().unwrap_or_else(|e| e.into_inner());
    for rule in rules.iter_mut() {
        if rule.point == point {
            if let Some(action) = rule.consider() {
                INJECTED.fetch_add(1, Ordering::Relaxed);
                return Some(action);
            }
        }
    }
    None
}

/// Convenience for IO sites: if `point` is armed, resolve the action
/// into an `Err` for `Error`/`ShortRead` (a [`FaultAction::ShortRead`]
/// at a whole-operation site is an `UnexpectedEof`) and sleep through
/// `Delay`. `Corrupt` is returned for the caller to apply to its
/// buffer, since only the site knows which bytes it just produced.
#[inline]
pub fn check_io(point: &str) -> io::Result<Option<FaultAction>> {
    match check(point) {
        None => Ok(None),
        Some(FaultAction::Error) => Err(injected_error(point)),
        Some(FaultAction::ShortRead) => Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            format!("injected short read at {point}"),
        )),
        Some(FaultAction::Delay(d)) => {
            std::thread::sleep(d);
            Ok(None)
        }
        Some(FaultAction::Corrupt) => Ok(Some(FaultAction::Corrupt)),
    }
}

/// The synthesized error for [`FaultAction::Error`] firings; named so
/// chaos tests can assert on the message.
pub fn injected_error(point: &str) -> io::Error {
    io::Error::other(format!("injected fault at {point}"))
}

/// Parse and install a fault schedule, replacing any previous one.
/// See the module docs for the grammar. An empty spec disarms.
pub fn install_from_spec(spec: &str) -> Result<(), String> {
    let mut parsed = Vec::new();
    for rule_spec in spec.split(';') {
        let rule_spec = rule_spec.trim();
        if rule_spec.is_empty() {
            continue;
        }
        parsed.push(parse_rule(rule_spec)?);
    }
    let mut rules = RULES.lock().unwrap_or_else(|e| e.into_inner());
    let armed = !parsed.is_empty();
    *rules = parsed;
    ENABLED.store(armed, Ordering::Relaxed);
    Ok(())
}

/// Install from the `SLING_FAULTS` environment variable, if set.
/// Returns whether a schedule was installed.
pub fn install_from_env() -> Result<bool, String> {
    match std::env::var("SLING_FAULTS") {
        Ok(spec) if !spec.trim().is_empty() => {
            install_from_spec(&spec)?;
            Ok(true)
        }
        _ => Ok(false),
    }
}

/// Disarm the registry and drop all rules. Tests call this between
/// phases; the per-process [`injected_total`] counter is monotone and
/// survives.
pub fn clear() {
    let mut rules = RULES.lock().unwrap_or_else(|e| e.into_inner());
    rules.clear();
    ENABLED.store(false, Ordering::Relaxed);
}

/// Total faults injected since process start (monotone; exported as
/// `sling_faults_injected_total`).
pub fn injected_total() -> u64 {
    INJECTED.load(Ordering::Relaxed)
}

/// Per-rule hit/fired counters for the currently installed schedule.
pub fn snapshot() -> Vec<RuleStats> {
    let rules = RULES.lock().unwrap_or_else(|e| e.into_inner());
    rules
        .iter()
        .map(|r| RuleStats {
            point: r.point.clone(),
            hits: r.hits,
            fired: r.fired,
        })
        .collect()
}

fn parse_rule(spec: &str) -> Result<Rule, String> {
    let mut parts = spec.split(':');
    let point = parts
        .next()
        .filter(|p| !p.is_empty())
        .ok_or_else(|| format!("fault rule {spec:?}: missing point name"))?;
    let action_name = parts
        .next()
        .filter(|a| !a.is_empty())
        .ok_or_else(|| format!("fault rule {spec:?}: missing action"))?;

    let mut every = 1u64;
    let mut after = 0u64;
    let mut first = 0u64;
    let mut times = 0u64;
    let mut p = 1.0f64;
    let mut seed = 0x9e37_79b9_7f4a_7c15u64;
    let mut delay_us = 1000u64;
    for kv in parts {
        let (key, value) = kv
            .split_once('=')
            .ok_or_else(|| format!("fault rule {spec:?}: expected key=value, got {kv:?}"))?;
        let parse_u64 =
            |v: &str| -> Result<u64, String> { v.parse().map_err(|_| bad_value(spec, key, v)) };
        match key {
            "every" => every = parse_u64(value)?,
            "after" => after = parse_u64(value)?,
            "first" => first = parse_u64(value)?,
            "times" => times = parse_u64(value)?,
            "seed" => seed = parse_u64(value)?,
            "delay_us" => delay_us = parse_u64(value)?,
            "p" => {
                p = value.parse().map_err(|_| bad_value(spec, key, value))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("fault rule {spec:?}: p must be in [0, 1]"));
                }
            }
            other => return Err(format!("fault rule {spec:?}: unknown key {other:?}")),
        }
    }

    let action = match action_name {
        "error" => FaultAction::Error,
        "short_read" => FaultAction::ShortRead,
        "delay" => FaultAction::Delay(Duration::from_micros(delay_us)),
        "corrupt" => FaultAction::Corrupt,
        other => {
            return Err(format!(
                "fault rule {spec:?}: unknown action {other:?} \
                 (error|short_read|delay|corrupt)"
            ))
        }
    };
    Ok(Rule {
        point: point.to_string(),
        action,
        every,
        after,
        first,
        times,
        p,
        rng: seed | 1, // xorshift must not start at 0
        hits: 0,
        fired: 0,
    })
}

fn bad_value(spec: &str, key: &str, value: &str) -> String {
    format!("fault rule {spec:?}: bad value {value:?} for {key}")
}

/// Flip one byte of `buf` deterministically (position derived from the
/// buffer length), for [`FaultAction::Corrupt`] sites.
pub fn corrupt_buffer(buf: &mut [u8]) {
    if let Some(byte) = buf.len().checked_sub(1).map(|last| last / 2) {
        buf[byte] ^= 0xA5;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global; every test that installs a
    // schedule serializes on this and clears afterwards.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn with_spec<R>(spec: &str, f: impl FnOnce() -> R) -> R {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        install_from_spec(spec).expect("valid spec");
        let out = f();
        clear();
        out
    }

    #[test]
    fn disarmed_registry_is_silent() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        clear();
        assert_eq!(check(point::DISK_READ), None);
        assert_eq!(check("anything.else"), None);
    }

    #[test]
    fn every_selector_fires_on_schedule() {
        with_spec("disk.read:error:every=3", || {
            let fired: Vec<bool> = (0..9).map(|_| check(point::DISK_READ).is_some()).collect();
            assert_eq!(
                fired,
                [false, false, true, false, false, true, false, false, true]
            );
        });
    }

    #[test]
    fn after_first_and_times_compose() {
        with_spec("disk.read:error:after=2:first=3:times=2", || {
            let fired: Vec<bool> = (0..8).map(|_| check(point::DISK_READ).is_some()).collect();
            // Hits 1-2 skipped, hits 3-5 eligible but capped at 2 firings.
            assert_eq!(
                fired,
                [false, false, true, true, false, false, false, false]
            );
        });
    }

    #[test]
    fn probability_gate_is_deterministic() {
        let run = || {
            with_spec("server.read:delay:p=0.5:seed=42:delay_us=0", || {
                (0..64)
                    .map(|_| check(point::SERVER_READ).is_some())
                    .collect::<Vec<bool>>()
            })
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed must give the same schedule");
        let fires = a.iter().filter(|&&f| f).count();
        assert!((10..=54).contains(&fires), "p=0.5 fired {fires}/64");
    }

    #[test]
    fn actions_parse_and_report() {
        with_spec(
            "mmap.validate:corrupt; server.write:delay:delay_us=5; disk.read:short_read",
            || {
                assert_eq!(check(point::MMAP_VALIDATE), Some(FaultAction::Corrupt));
                assert_eq!(
                    check(point::SERVER_WRITE),
                    Some(FaultAction::Delay(Duration::from_micros(5)))
                );
                assert_eq!(check(point::DISK_READ), Some(FaultAction::ShortRead));
                let stats = snapshot();
                assert_eq!(stats.len(), 3);
                assert!(stats.iter().all(|s| s.hits == 1 && s.fired == 1));
            },
        );
    }

    #[test]
    fn check_io_resolves_error_and_short_read() {
        with_spec("disk.read:error", || {
            let err = check_io(point::DISK_READ).unwrap_err();
            assert!(err.to_string().contains("injected fault at disk.read"));
        });
        with_spec("disk.read:short_read", || {
            let err = check_io(point::DISK_READ).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        });
        with_spec("disk.read:corrupt", || {
            assert_eq!(
                check_io(point::DISK_READ).unwrap(),
                Some(FaultAction::Corrupt)
            );
        });
    }

    #[test]
    fn injected_total_is_monotone() {
        with_spec("disk.read:error", || {
            let before = injected_total();
            let _ = check(point::DISK_READ);
            assert!(injected_total() > before);
        });
    }

    #[test]
    fn bad_specs_are_rejected() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        for bad in [
            "disk.read",
            "disk.read:explode",
            "disk.read:error:p=2.0",
            "disk.read:error:every=x",
            "disk.read:error:frob=1",
            ":error",
        ] {
            assert!(install_from_spec(bad).is_err(), "spec {bad:?} accepted");
        }
        clear();
    }

    #[test]
    fn corrupt_buffer_flips_one_byte() {
        let mut buf = vec![0u8; 8];
        corrupt_buffer(&mut buf);
        assert_eq!(buf.iter().filter(|&&b| b != 0).count(), 1);
        let mut empty: Vec<u8> = Vec::new();
        corrupt_buffer(&mut empty); // must not panic
    }
}
