//! §5.3 accuracy enhancement: marked hitting probabilities expanded one
//! extra step at query time.
//!
//! After the index is built, each node `v` marks up to `1/√ε` of its
//! stored entries `h̃⁽ℓ⁾(v, v_j)` — the largest ones whose hit node has at
//! most `1/√ε` in-neighbors. When a query touches `H(v)`, every marked
//! entry is expanded along Eq. (16): each in-neighbor `v_k` of `v_j`
//! receives a contribution `√c · h̃⁽ℓ⁾(v, v_j) / |I(v_j)|` toward
//! `h̃⁽ℓ⁺¹⁾(v, v_k)` — but only for keys *not already present* in the
//! effective entry list, so every effective value still underestimates the
//! true hitting probability and the Lemma 8 error analysis continues to
//! hold (the extra entries strictly reduce the one-sided truncation
//! error). The expansion inspects at most `(1/√ε)² = 1/ε` edges, keeping
//! single-pair queries `O(1/ε)`.

use sling_graph::{DiGraph, NodeId};

use crate::config::SlingConfig;
use crate::error::SlingError;
use crate::hp::{HpArena, HpEntry};
use crate::index::{Buf, QueryWorkspace};
use crate::store::{EngineRef, HpStore};

/// Per-node lists of marked entry positions (local offsets into the
/// node's stored run in the [`HpArena`]).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MarkArena {
    pub(crate) offsets: Vec<u64>,
    pub(crate) local: Vec<u32>,
}

impl MarkArena {
    /// No marks for any of `n` nodes (enhancement disabled).
    pub fn empty(n: usize) -> Self {
        MarkArena {
            offsets: vec![0; n + 1],
            local: Vec::new(),
        }
    }

    /// Structural check against the arena the local offsets index into:
    /// offsets monotone and in bounds, node counts matching, and every
    /// local index inside its node's stored run. Used by the
    /// binary-format decoder.
    pub fn validate(&self, hp: &HpArena) -> bool {
        self.validate_runs(&hp.offsets)
    }

    /// [`MarkArena::validate`] against a bare HP offset table — what the
    /// out-of-core backends have before (never) decoding the payload.
    pub fn validate_runs(&self, hp_offsets: &[u64]) -> bool {
        if self.offsets.len() != hp_offsets.len() {
            return false;
        }
        if self.offsets.first() != Some(&0)
            || *self.offsets.last().unwrap_or(&0) as usize != self.local.len()
        {
            return false;
        }
        if self
            .offsets
            .windows(2)
            .any(|w| w[0] > w[1] || w[1] as usize > self.local.len())
        {
            return false;
        }
        for i in 0..self.offsets.len().saturating_sub(1) {
            let run = hp_offsets[i + 1] - hp_offsets[i];
            let marks = &self.local[self.offsets[i] as usize..self.offsets[i + 1] as usize];
            if marks.iter().any(|&l| l as u64 >= run) {
                return false;
            }
        }
        true
    }

    /// Select marks per §5.3: for each node, among stored entries whose
    /// hit node has in-degree ≤ `1/√ε`, the `⌊1/√ε⌋` largest by value.
    pub fn compute(graph: &DiGraph, config: &SlingConfig, hp: &HpArena) -> Self {
        let n = graph.num_nodes();
        let cap = (1.0 / config.epsilon.sqrt()).floor().max(1.0) as usize;
        let max_deg = cap;
        let mut offsets = Vec::with_capacity(n + 1);
        let mut local = Vec::new();
        offsets.push(0u64);
        let mut candidates: Vec<(f64, u32)> = Vec::new();
        for v in graph.nodes() {
            candidates.clear();
            let range = hp.range(v);
            for (li, gi) in range.clone().enumerate() {
                let hit = NodeId(hp.nodes[gi]);
                let deg = graph.in_degree(hit);
                if deg > 0 && deg <= max_deg {
                    candidates.push((hp.values[gi], li as u32));
                }
            }
            if candidates.len() > cap {
                candidates.select_nth_unstable_by(cap - 1, |a, b| {
                    b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1))
                });
                candidates.truncate(cap);
            }
            let start = local.len();
            local.extend(candidates.iter().map(|&(_, li)| li));
            local[start..].sort_unstable();
            offsets.push(local.len() as u64);
        }
        MarkArena { offsets, local }
    }

    /// Marked local offsets of `v` (ascending).
    pub fn marks_of(&self, v: NodeId) -> &[u32] {
        let i = v.index();
        &self.local[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Total marks across all nodes.
    pub fn total_marks(&self) -> usize {
        self.local.len()
    }

    /// Whether no node has marks.
    pub fn is_empty(&self) -> bool {
        self.local.is_empty()
    }

    /// Approximate resident bytes.
    pub fn resident_bytes(&self) -> usize {
        self.offsets.len() * 8 + self.local.len() * 4
    }
}

/// Expand the marked entries of `v` into the effective entry buffer
/// (`which`) of `ws`. Called by the generic effective-entry
/// materialization after the stored (+ two-hop) list has been sorted.
/// Generic over the storage backend: marks address entries by global
/// index through [`HpStore::entry_at`].
pub(crate) fn expand_marked<S: HpStore>(
    e: EngineRef<'_, S>,
    graph: &DiGraph,
    v: NodeId,
    ws: &mut QueryWorkspace,
    which: Buf,
) -> Result<(), SlingError> {
    let marks = e.marks.marks_of(v);
    if marks.is_empty() {
        return Ok(());
    }
    let mut buf = match which {
        Buf::A => std::mem::take(&mut ws.buf_a),
        Buf::B => std::mem::take(&mut ws.buf_b),
    };
    let range = e.store.range(v);
    let sqrt_c = e.config.sqrt_c();
    let reduced = e.reduced[v.index()];
    ws.extras.clear();
    for &li in marks {
        let gi = range.start + li as usize;
        let entry = match e.store.entry_at(gi) {
            Ok(entry) => entry,
            Err(err) => {
                put_back(ws, which, buf);
                return Err(err);
            }
        };
        let (step, hit, value) = (entry.step, entry.node, entry.value);
        // A corrupt backend can hand back step = u16::MAX; skip rather
        // than overflow.
        let Some(target_step) = step.checked_add(1) else {
            continue;
        };
        // When v is reduced, steps 1-2 of the effective list are exact;
        // expanding into them could overshoot the true probability.
        if reduced && (target_step == 1 || target_step == 2) {
            continue;
        }
        let inn = graph.in_neighbors(hit);
        if inn.is_empty() {
            continue;
        }
        let contrib = sqrt_c * value / inn.len() as f64;
        for &vk in inn {
            ws.extras.push(HpEntry::new(target_step, vk, contrib));
        }
    }
    if ws.extras.is_empty() {
        put_back(ws, which, buf);
        return Ok(());
    }
    ws.extras.sort_unstable_by_key(|x| x.key());

    // Merge: keys already present in the effective list win untouched;
    // contributions to a fresh key accumulate.
    ws.merged.clear();
    let (mut i, mut bi) = (0usize, 0usize);
    while i < ws.extras.len() {
        let key = ws.extras[i].key();
        let mut acc = 0.0;
        let group_start = i;
        while i < ws.extras.len() && ws.extras[i].key() == key {
            acc += ws.extras[i].value;
            i += 1;
        }
        let _ = group_start;
        while bi < buf.len() && buf[bi].key() < key {
            ws.merged.push(buf[bi]);
            bi += 1;
        }
        if bi < buf.len() && buf[bi].key() == key {
            continue; // stored/exact entry present: skip the expansion
        }
        ws.merged.push(HpEntry::new(key.0, key.1, acc));
    }
    ws.merged.extend_from_slice(&buf[bi..]);
    buf.clear();
    buf.extend_from_slice(&ws.merged);
    put_back(ws, which, buf);
    Ok(())
}

fn put_back(ws: &mut QueryWorkspace, which: Buf, buf: Vec<HpEntry>) {
    match which {
        Buf::A => ws.buf_a = buf,
        Buf::B => ws.buf_b = buf,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SlingConfig;
    use crate::index::SlingIndex;
    use crate::reference::exact_hp_to_target;
    use sling_graph::generators::two_cliques_bridge;

    fn cfg() -> SlingConfig {
        SlingConfig::from_epsilon(0.6, 0.05)
            .with_seed(5)
            .with_enhancement(true)
    }

    #[test]
    fn marks_respect_caps() {
        let g = two_cliques_bridge(6);
        let config = cfg();
        let idx = SlingIndex::build(&g, &config).unwrap();
        let cap = (1.0 / config.epsilon.sqrt()).floor() as usize;
        for v in g.nodes() {
            let marks = idx.marks.marks_of(v);
            assert!(marks.len() <= cap);
            // Ascending local offsets, all within the node's run.
            assert!(marks.windows(2).all(|w| w[0] < w[1]));
            let len = idx.hp.len_of(v);
            assert!(marks.iter().all(|&li| (li as usize) < len));
            // Every marked hit node obeys the degree cap.
            let range = idx.hp.range(v);
            for &li in marks {
                let hit = NodeId(idx.hp.nodes[range.start + li as usize]);
                assert!(g.in_degree(hit) <= cap);
            }
        }
    }

    #[test]
    fn expansion_never_overestimates_true_hp() {
        let g = two_cliques_bridge(5);
        let config = cfg();
        let idx = SlingIndex::build(&g, &config).unwrap();
        let mut ws = QueryWorkspace::new();
        for v in g.nodes() {
            idx.effective_entries(&g, v, &mut ws, Buf::A);
            assert!(ws.buf_a.windows(2).all(|w| w[0].key() < w[1].key()));
            for e in &ws.buf_a {
                let exact = exact_hp_to_target(&g, config.c, e.node, e.step);
                let h = exact[e.step as usize][v.index()];
                assert!(
                    e.value <= h + 1e-9,
                    "effective h̃({},{:?})={} exceeds exact {h} for v={v:?}",
                    e.step,
                    e.node,
                    e.value
                );
            }
        }
    }

    #[test]
    fn enhancement_never_shrinks_effective_lists() {
        let g = two_cliques_bridge(5);
        let plain = SlingIndex::build(&g, &cfg().with_enhancement(false)).unwrap();
        let enhanced = SlingIndex::build(&g, &cfg()).unwrap();
        let mut ws = QueryWorkspace::new();
        for v in g.nodes() {
            enhanced.effective_entries(&g, v, &mut ws, Buf::A);
            let with = ws.buf_a.len();
            plain.effective_entries(&g, v, &mut ws, Buf::A);
            let without = ws.buf_a.len();
            assert!(with >= without);
        }
    }

    #[test]
    fn enhancement_recovers_a_pruned_entry() {
        // Engineered graph: hub z (node 0) with 20 in-neighbors y_i
        // (nodes 1..=20), each y_i fed by a private chain node w_i
        // (nodes 21..=40). Then h(1)(z, y_i) = √c/20 ≈ 0.0387 and
        // h(2)(z, w_i) = c/20 = 0.03. With θ = 0.032 Algorithm 2 prunes
        // every step-2 entry of H(z), but (1, y_i) is marked (|I(y_i)| = 1)
        // and its expansion regenerates exactly h̃(2)(z, w_i) = 0.03.
        let mut b = sling_graph::GraphBuilder::with_nodes(41);
        for i in 1..=20u32 {
            b.add_edge(i, 0u32); // y_i -> z
            b.add_edge(20 + i, i); // w_i -> y_i
        }
        let g = b.build().unwrap();
        let config = SlingConfig::from_epsilon(0.6, 0.62)
            .with_error_split(0.02, 0.032)
            .with_seed(8)
            .with_space_reduction(false)
            .with_enhancement(true);
        config.validate().unwrap();
        let idx = SlingIndex::build(&g, &config).unwrap();
        let z = NodeId(0);
        // Stored H(z) has no step-2 entries (pruned)...
        assert!(idx.stored_entries(z).all(|e| e.step != 2));
        // ...but the effective list contains an expanded one.
        let mut ws = QueryWorkspace::new();
        idx.effective_entries(&g, z, &mut ws, Buf::A);
        let expanded: Vec<_> = ws.buf_a.iter().filter(|e| e.step == 2).collect();
        assert!(!expanded.is_empty(), "expansion should add a step-2 entry");
        for e in &expanded {
            assert!((e.value - 0.6 / 20.0).abs() < 1e-12, "value {}", e.value);
            assert!(e.node.0 >= 21, "expanded node should be a w_i");
        }
    }

    #[test]
    fn empty_arena_is_inert() {
        let marks = MarkArena::empty(4);
        assert!(marks.is_empty());
        assert_eq!(marks.total_marks(), 0);
        assert_eq!(marks.marks_of(NodeId(2)), &[] as &[u32]);
    }
}
