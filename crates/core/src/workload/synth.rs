//! Deterministic synthetic trace generators — the three scenario
//! families the replay bench drives when no capture is at hand, shaped
//! by what the SkyServer traffic reports say real public query traffic
//! looks like: heavily Zipf-skewed key popularity, strong diurnal
//! intensity with bot bursts, and occasional crawler-style cold scans
//! that touch every key once.
//!
//! Everything is seeded and allocation-light: the same
//! `(opts, generator)` always yields byte-identical traces, so a
//! committed `BENCH_replay.json` is reproducible run-to-run.

use super::trace::{Trace, TraceKey, TraceOutcome, TraceRecord, TraceVerb};

/// Parameters shared by every generator.
#[derive(Clone, Copy, Debug)]
pub struct SynthOpts {
    /// Node-id space: keys are drawn from `0..nodes`.
    pub nodes: u32,
    /// Records to generate.
    pub records: usize,
    /// RNG seed; equal seeds yield identical traces.
    pub seed: u64,
}

/// splitmix64 — the one-liner generator the benches standardize on.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Draw a rank from a Zipf(`exponent`) distribution over `ranks` via a
/// precomputed CDF table and binary search.
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(ranks: usize, exponent: f64) -> Zipf {
        let mut cdf = Vec::with_capacity(ranks.max(1));
        let mut total = 0.0;
        for r in 1..=ranks.max(1) {
            total += 1.0 / (r as f64).powf(exponent);
            cdf.push(total);
        }
        for w in cdf.iter_mut() {
            *w /= total;
        }
        Zipf { cdf }
    }

    fn draw(&self, state: &mut u64) -> usize {
        let u = (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64;
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// A seeded pseudo-random permutation of the node space, so Zipf rank 0
/// is not literally node 0 (popularity decoupled from id order).
fn rank_to_node(rank: usize, nodes: u32, seed: u64) -> u32 {
    let mut s = seed ^ (rank as u64).wrapping_mul(0xA24B_AED4_963E_E407);
    (splitmix64(&mut s) % nodes.max(1) as u64) as u32
}

fn record(t_us: u64, verb: TraceVerb, key: TraceKey) -> TraceRecord {
    TraceRecord {
        t_us,
        verb,
        key,
        outcome: TraceOutcome::Ok,
        latency_us: 0,
        epoch: 0,
    }
}

/// Pick a verb for mixed-traffic scenarios: ~90% `PAIR`, ~5% `SOURCE`,
/// ~5% `TOPK` — pair traffic dominates real serving and is the unit the
/// result cache admits.
fn mixed_verb_record(t_us: u64, u: u32, v: u32, roll: u64) -> TraceRecord {
    match roll % 20 {
        0 => record(t_us, TraceVerb::Source, TraceKey::Node(u)),
        1 => record(t_us, TraceVerb::TopK, TraceKey::NodeK(u, 10)),
        _ => record(t_us, TraceVerb::Pair, TraceKey::Pair(u, v)),
    }
}

/// **Zipf sweep**: key popularity sweeps through three skew regimes —
/// exponent 0.6 (mild), 0.9 (SkyServer-like), 1.2 (hot-spot) — one
/// third of the records each, at a steady 1 ms inter-arrival. Exercises
/// how hit rates respond as skew deepens.
pub fn zipf_sweep(opts: SynthOpts) -> Trace {
    let mut state = opts.seed | 1;
    let ranks = (opts.nodes as usize).max(2);
    let regimes = [
        Zipf::new(ranks, 0.6),
        Zipf::new(ranks, 0.9),
        Zipf::new(ranks, 1.2),
    ];
    let mut records = Vec::with_capacity(opts.records);
    for i in 0..opts.records {
        let regime = &regimes[(i * regimes.len()) / opts.records.max(1)];
        let u = rank_to_node(regime.draw(&mut state), opts.nodes, opts.seed);
        let v = rank_to_node(regime.draw(&mut state), opts.nodes, opts.seed ^ 0x5EED);
        records.push(mixed_verb_record(
            i as u64 * 1_000,
            u,
            v,
            splitmix64(&mut state),
        ));
    }
    Trace {
        base_us: 0,
        records,
    }
}

/// **Diurnal burst**: arrival intensity follows a sinusoidal "day"
/// (peak rate 8× the trough) overlaid with bot bursts — every ~500
/// records, a burst of 32 back-to-back repeats of one key at zero
/// inter-arrival, the way crawler traffic hammers one object. Keys are
/// Zipf(0.9). Exercises burstiness measurement and shed behavior.
pub fn diurnal_burst(opts: SynthOpts) -> Trace {
    let mut state = opts.seed | 1;
    let zipf = Zipf::new((opts.nodes as usize).max(2), 0.9);
    let mut records = Vec::with_capacity(opts.records);
    let mut t_us = 0u64;
    let mut i = 0usize;
    while i < opts.records {
        if i % 500 == 499 {
            // Bot burst: one key, back-to-back.
            let u = rank_to_node(zipf.draw(&mut state), opts.nodes, opts.seed);
            let v = rank_to_node(zipf.draw(&mut state), opts.nodes, opts.seed ^ 0x5EED);
            for _ in 0..32.min(opts.records - i) {
                records.push(record(t_us, TraceVerb::Pair, TraceKey::Pair(u, v)));
                i += 1;
            }
            continue;
        }
        // Sinusoidal intensity: inter-arrival sweeps 250 µs (peak)
        // to 2000 µs (trough) over a 10k-record "day".
        let phase = (i % 10_000) as f64 / 10_000.0 * std::f64::consts::TAU;
        let dt = (1_125.0 - 875.0 * phase.sin()) as u64;
        t_us += dt;
        let u = rank_to_node(zipf.draw(&mut state), opts.nodes, opts.seed);
        let v = rank_to_node(zipf.draw(&mut state), opts.nodes, opts.seed ^ 0x5EED);
        records.push(mixed_verb_record(t_us, u, v, splitmix64(&mut state)));
        i += 1;
    }
    Trace {
        base_us: 0,
        records,
    }
}

/// **Adversarial cold scan**: a small hot working set (128 pairs,
/// Zipf(1.1)) interleaved 1:2 with a sequential one-touch scan over the
/// whole pair space — the access pattern that thrashes plain LRU (every
/// scanned key evicts a hot key it will never out-earn) and that
/// frequency-sketch admission is built to shrug off.
pub fn adversarial_cold_scan(opts: SynthOpts) -> Trace {
    let mut state = opts.seed | 1;
    let hot_pairs: Vec<(u32, u32)> = (0..128u64)
        .map(|i| {
            let mut s = opts.seed ^ i.wrapping_mul(0xD134_2543_DE82_EF95);
            let u = (splitmix64(&mut s) % opts.nodes.max(1) as u64) as u32;
            let v = (splitmix64(&mut s) % opts.nodes.max(1) as u64) as u32;
            (u, v)
        })
        .collect();
    let hot = Zipf::new(hot_pairs.len(), 1.1);
    let mut scan_cursor = 0u64;
    let mut records = Vec::with_capacity(opts.records);
    for i in 0..opts.records {
        let key = if i % 3 == 0 {
            let (u, v) = hot_pairs[hot.draw(&mut state)];
            TraceKey::Pair(u, v)
        } else {
            // Sequential pair scan: every key distinct until the whole
            // (u, v) grid wraps — one-touch traffic by construction.
            let n = opts.nodes.max(2) as u64;
            let u = (scan_cursor / n) % n;
            let v = scan_cursor % n;
            scan_cursor += 1;
            TraceKey::Pair(u as u32, v as u32)
        };
        records.push(record(i as u64 * 500, TraceVerb::Pair, key));
    }
    Trace {
        base_us: 0,
        records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    const OPTS: SynthOpts = SynthOpts {
        nodes: 500,
        records: 3_000,
        seed: 7,
    };

    fn key_counts(trace: &Trace) -> HashMap<TraceKey, u64> {
        let mut counts = HashMap::new();
        for rec in &trace.records {
            *counts.entry(rec.key).or_insert(0) += 1;
        }
        counts
    }

    #[test]
    fn generators_are_deterministic() {
        for generator in [zipf_sweep, diurnal_burst, adversarial_cold_scan] {
            let a = generator(OPTS);
            let b = generator(OPTS);
            assert_eq!(a.records, b.records);
            assert_eq!(a.records.len(), OPTS.records);
            let c = generator(SynthOpts { seed: 8, ..OPTS });
            assert_ne!(a.records, c.records, "seed must matter");
        }
    }

    #[test]
    fn timestamps_are_monotone() {
        for generator in [zipf_sweep, diurnal_burst, adversarial_cold_scan] {
            let trace = generator(OPTS);
            for pair in trace.records.windows(2) {
                assert!(pair[0].t_us <= pair[1].t_us);
            }
        }
    }

    #[test]
    fn zipf_sweep_is_skewed() {
        let trace = zipf_sweep(OPTS);
        let counts = key_counts(&trace);
        let max = *counts.values().max().unwrap();
        // A uniform draw over 500² pair keys would put ~1 hit on each;
        // Zipf must concentrate far harder than that.
        assert!(max >= 20, "hottest key only {max} hits");
    }

    #[test]
    fn cold_scan_mixes_one_touch_and_hot_keys() {
        let trace = adversarial_cold_scan(OPTS);
        let counts = key_counts(&trace);
        let singles = counts.values().filter(|&&c| c == 1).count();
        let repeated = counts.values().filter(|&&c| c >= 5).count();
        // Two thirds scan traffic: the bulk of keys are one-touch, but
        // the hot set keeps collecting hits.
        assert!(singles as f64 >= counts.len() as f64 * 0.5);
        assert!(repeated >= 32, "hot working set too cold: {repeated}");
    }

    #[test]
    fn diurnal_burst_has_bursts() {
        let trace = diurnal_burst(OPTS);
        let mut zero_dt = 0usize;
        for pair in trace.records.windows(2) {
            if pair[0].t_us == pair[1].t_us {
                zero_dt += 1;
            }
        }
        assert!(zero_dt >= 100, "expected bot bursts, saw {zero_dt} zero-dt");
    }
}
