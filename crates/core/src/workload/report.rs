//! SkyServer-style traffic characterization — the analysis behind
//! `sling traffic-report`.
//!
//! The SkyServer Traffic Report distilled five years of public query
//! logs into a handful of operator-facing facts: what the verb mix is,
//! how skewed key popularity is (and what Zipf exponent fits it), how
//! bursty arrivals are, and what a cache of a given size would have
//! done with the traffic. [`characterize`] computes the same facts for
//! one of our traces; [`TrafficReport`]'s `Display` renders them as the
//! report the CLI prints.

use std::collections::HashMap;
use std::fmt;

use super::sim::simulate_pair_cache;
use super::trace::{Trace, TraceKey, TraceOutcome, TraceVerb};
use crate::cache::Admission;

/// Cache capacities the hit-rate-vs-size curve samples.
const CURVE_CAPACITIES: [usize; 5] = [64, 256, 1024, 4096, 16384];

/// How many top keys the report lists.
const TOP_KEYS: usize = 10;

/// One row of the hit-rate-vs-cache-size curve.
#[derive(Clone, Copy, Debug)]
pub struct HitRatePoint {
    /// Cache capacity in entries.
    pub capacity: usize,
    /// Simulated hit rate under plain LRU.
    pub lru: f64,
    /// Simulated hit rate under TinyLFU admission.
    pub tinylfu: f64,
}

/// Everything `sling traffic-report` prints, as data.
#[derive(Clone, Debug)]
pub struct TrafficReport {
    /// Records characterized.
    pub records: usize,
    /// Capture span in microseconds (first to last record).
    pub duration_us: u64,
    /// Mean arrival rate over the span, records per second.
    pub mean_qps: f64,
    /// Per-verb record counts, in [`TraceVerb`] declaration order.
    pub verb_counts: [(TraceVerb, u64); 4],
    /// Per-outcome record counts, in [`TraceOutcome`] declaration order.
    pub outcome_counts: [(TraceOutcome, u64); 4],
    /// Distinct keys seen.
    pub distinct_keys: usize,
    /// The most popular keys with their counts, descending.
    pub top_keys: Vec<(TraceKey, u64)>,
    /// Share of all traffic going to the most popular 1% of keys.
    pub top1pct_share: f64,
    /// Share of all traffic going to the most popular 10% of keys.
    pub top10pct_share: f64,
    /// Zipf exponent fitted to the rank-frequency curve by log-log
    /// least squares (0 when the trace is too small to fit).
    pub zipf_exponent: f64,
    /// Peak one-second arrival count.
    pub peak_second: u64,
    /// Peak-to-mean ratio of per-second arrival counts (1.0 = perfectly
    /// smooth; SkyServer-style bot traffic pushes this far above 1).
    pub burstiness: f64,
    /// Coefficient of variation of per-second arrival counts.
    pub arrival_cv: f64,
    /// Simulated hit rate at each [`CURVE_CAPACITIES`] entry.
    pub hit_rate_curve: Vec<HitRatePoint>,
    /// Generation epochs spanned (max − min observed epoch + 1).
    pub epochs_spanned: u64,
}

/// Characterize a trace: verb/outcome mix, key-popularity skew with a
/// fitted Zipf exponent, arrival burstiness, and hit-rate-vs-size
/// curves computed by [`simulate_pair_cache`].
pub fn characterize(trace: &Trace) -> TrafficReport {
    let records = &trace.records;
    let duration_us = trace.duration_us();
    let span_s = (duration_us as f64 / 1e6).max(1e-6);

    let mut verb_counts = [
        (TraceVerb::Pair, 0u64),
        (TraceVerb::Source, 0),
        (TraceVerb::TopK, 0),
        (TraceVerb::Batch, 0),
    ];
    let mut outcome_counts = [
        (TraceOutcome::Ok, 0u64),
        (TraceOutcome::Err, 0),
        (TraceOutcome::Shed, 0),
        (TraceOutcome::Deadline, 0),
    ];
    let mut key_counts: HashMap<TraceKey, u64> = HashMap::new();
    let mut per_second: HashMap<u64, u64> = HashMap::new();
    let mut epoch_min = u64::MAX;
    let mut epoch_max = 0u64;
    for rec in records {
        for slot in verb_counts.iter_mut() {
            if slot.0 == rec.verb {
                slot.1 += 1;
            }
        }
        for slot in outcome_counts.iter_mut() {
            if slot.0 == rec.outcome {
                slot.1 += 1;
            }
        }
        *key_counts.entry(rec.key).or_insert(0) += 1;
        *per_second.entry(rec.t_us / 1_000_000).or_insert(0) += 1;
        epoch_min = epoch_min.min(rec.epoch);
        epoch_max = epoch_max.max(rec.epoch);
    }

    // Rank-frequency curve, descending.
    let mut freqs: Vec<u64> = key_counts.values().copied().collect();
    freqs.sort_unstable_by(|a, b| b.cmp(a));
    let total: u64 = freqs.iter().sum();
    let share_of_top = |fraction: f64| -> f64 {
        if total == 0 {
            return 0.0;
        }
        let k = ((freqs.len() as f64 * fraction).ceil() as usize).max(1);
        let top: u64 = freqs.iter().take(k).sum();
        top as f64 / total as f64
    };

    let mut top_keys: Vec<(TraceKey, u64)> = key_counts.iter().map(|(k, c)| (*k, *c)).collect();
    top_keys.sort_unstable_by(|a, b| {
        b.1.cmp(&a.1)
            .then_with(|| format!("{:?}", a.0).cmp(&format!("{:?}", b.0)))
    });
    top_keys.truncate(TOP_KEYS);

    // Arrival buckets: fill the whole span so idle seconds count as 0
    // (burstiness against the true mean, not just the busy seconds).
    let buckets_spanned = duration_us / 1_000_000 + 1;
    let mut arrivals: Vec<u64> = Vec::with_capacity(buckets_spanned.min(1 << 20) as usize);
    for s in 0..buckets_spanned.min(1 << 20) {
        arrivals.push(per_second.get(&s).copied().unwrap_or(0));
    }
    let mean_arrivals = if arrivals.is_empty() {
        0.0
    } else {
        arrivals.iter().sum::<u64>() as f64 / arrivals.len() as f64
    };
    let peak_second = arrivals.iter().copied().max().unwrap_or(0);
    let burstiness = if mean_arrivals > 0.0 {
        peak_second as f64 / mean_arrivals
    } else {
        0.0
    };
    let arrival_cv = if mean_arrivals > 0.0 {
        let var = arrivals
            .iter()
            .map(|&a| {
                let d = a as f64 - mean_arrivals;
                d * d
            })
            .sum::<f64>()
            / arrivals.len() as f64;
        var.sqrt() / mean_arrivals
    } else {
        0.0
    };

    let hit_rate_curve = CURVE_CAPACITIES
        .iter()
        .map(|&capacity| HitRatePoint {
            capacity,
            lru: simulate_pair_cache(records, capacity, Admission::Lru).hit_rate(),
            tinylfu: simulate_pair_cache(records, capacity, Admission::TinyLfu).hit_rate(),
        })
        .collect();

    TrafficReport {
        records: records.len(),
        duration_us,
        mean_qps: records.len() as f64 / span_s,
        verb_counts,
        outcome_counts,
        distinct_keys: key_counts.len(),
        top_keys,
        top1pct_share: share_of_top(0.01),
        top10pct_share: share_of_top(0.10),
        zipf_exponent: fit_zipf_exponent(&freqs),
        peak_second,
        burstiness,
        arrival_cv,
        hit_rate_curve,
        epochs_spanned: if records.is_empty() {
            0
        } else {
            epoch_max - epoch_min + 1
        },
    }
}

/// Least-squares slope of `ln(frequency)` against `ln(rank)` over the
/// rank-frequency curve — the Zipf exponent `s` in `f(r) ∝ r^-s`.
/// Returns 0 when fewer than two distinct ranks exist.
fn fit_zipf_exponent(freqs_desc: &[u64]) -> f64 {
    // Fit over the head (up to 1000 ranks): the tail of one-touch keys
    // flattens into a plateau that is measurement floor, not law.
    let n = freqs_desc.len().min(1000);
    if n < 2 {
        return 0.0;
    }
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for (i, &f) in freqs_desc.iter().take(n).enumerate() {
        let x = ((i + 1) as f64).ln();
        let y = (f.max(1) as f64).ln();
        sx += x;
        sy += y;
        sxx += x * x;
        sxy += x * y;
    }
    let n = n as f64;
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return 0.0;
    }
    // Slope is negative for decaying frequency; report the exponent.
    -((n * sxy - sx * sy) / denom)
}

fn key_label(key: &TraceKey) -> String {
    match key {
        TraceKey::Pair(u, v) => format!("{u},{v}"),
        TraceKey::Node(u) => format!("{u}"),
        TraceKey::NodeK(u, k) => format!("{u}:{k}"),
    }
}

impl fmt::Display for TrafficReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "traffic report")?;
        writeln!(
            f,
            "  records          {}  span {:.3}s  mean {:.1} q/s",
            self.records,
            self.duration_us as f64 / 1e6,
            self.mean_qps
        )?;
        write!(f, "  verb mix        ")?;
        for (verb, count) in &self.verb_counts {
            let pct = if self.records > 0 {
                *count as f64 * 100.0 / self.records as f64
            } else {
                0.0
            };
            write!(f, " {}={} ({:.1}%)", verb.as_str(), count, pct)?;
        }
        writeln!(f)?;
        write!(f, "  outcomes        ")?;
        for (outcome, count) in &self.outcome_counts {
            write!(f, " {}={}", outcome.as_str(), count)?;
        }
        writeln!(f)?;
        writeln!(
            f,
            "  keys             {} distinct; top 1% of keys take {:.1}% of traffic, top 10% take {:.1}%",
            self.distinct_keys,
            self.top1pct_share * 100.0,
            self.top10pct_share * 100.0
        )?;
        writeln!(f, "  zipf exponent    {:.2}", self.zipf_exponent)?;
        writeln!(
            f,
            "  burstiness       peak {}/s = {:.1}x mean; arrival CV {:.2}",
            self.peak_second, self.burstiness, self.arrival_cv
        )?;
        writeln!(f, "  top keys        ")?;
        for (key, count) in &self.top_keys {
            writeln!(f, "    {:>12}  {}", key_label(key), count)?;
        }
        writeln!(f, "  hit rate vs cache size (simulated, pair traffic)")?;
        writeln!(f, "    {:>8}  {:>6}  {:>8}", "entries", "lru", "tinylfu")?;
        for point in &self.hit_rate_curve {
            writeln!(
                f,
                "    {:>8}  {:>5.1}%  {:>7.1}%",
                point.capacity,
                point.lru * 100.0,
                point.tinylfu * 100.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::synth::{adversarial_cold_scan, diurnal_burst, zipf_sweep, SynthOpts};

    const OPTS: SynthOpts = SynthOpts {
        nodes: 300,
        records: 6_000,
        seed: 11,
    };

    #[test]
    fn empty_trace_reports_zeros() {
        let report = characterize(&Trace {
            base_us: 0,
            records: Vec::new(),
        });
        assert_eq!(report.records, 0);
        assert_eq!(report.distinct_keys, 0);
        assert_eq!(report.zipf_exponent, 0.0);
        assert_eq!(report.epochs_spanned, 0);
        // Display must not panic on the degenerate report.
        let _ = report.to_string();
    }

    #[test]
    fn verb_mix_sums_to_records() {
        let report = characterize(&zipf_sweep(OPTS));
        let verb_total: u64 = report.verb_counts.iter().map(|(_, c)| c).sum();
        assert_eq!(verb_total as usize, report.records);
        let (_, pair_count) = report.verb_counts[0];
        assert!(pair_count as usize > report.records / 2, "PAIR dominates");
    }

    #[test]
    fn zipf_trace_fits_a_positive_exponent() {
        let report = characterize(&zipf_sweep(OPTS));
        assert!(
            report.zipf_exponent > 0.3,
            "fit too flat: {}",
            report.zipf_exponent
        );
        assert!(report.top1pct_share > 0.02, "no skew measured");
        assert!(report.top10pct_share >= report.top1pct_share);
    }

    #[test]
    fn bursty_trace_measures_bursty() {
        let bursty = characterize(&diurnal_burst(OPTS));
        assert!(
            bursty.burstiness > 1.2,
            "diurnal+bot trace should be bursty, got {:.2}",
            bursty.burstiness
        );
    }

    #[test]
    fn hit_rate_curve_shows_tinylfu_advantage_on_scan() {
        let report = characterize(&adversarial_cold_scan(SynthOpts {
            records: 12_000,
            ..OPTS
        }));
        // At some modest capacity the sketch should beat plain LRU.
        assert!(
            report
                .hit_rate_curve
                .iter()
                .any(|p| p.tinylfu > p.lru + 0.01),
            "curve: {:?}",
            report.hit_rate_curve
        );
    }

    #[test]
    fn display_contains_the_headline_sections() {
        let text = characterize(&zipf_sweep(OPTS)).to_string();
        for needle in [
            "verb mix",
            "zipf exponent",
            "burstiness",
            "hit rate vs cache size",
            "tinylfu",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }
}
