//! The `SLNGTRACE v1` trace format: record types, streaming writer,
//! strict and tolerant readers. See the [module docs](crate::workload)
//! for the grammar.

use std::fmt::Write as _;
use std::io::{self, BufRead, Write};
use std::path::Path;

use crate::error::SlingError;
use crate::lifecycle::fnv1a;

/// Leading magic token of the header line.
pub const TRACE_MAGIC: &str = "SLNGTRACE";

/// The format version this module writes (and the only one it reads).
pub const TRACE_VERSION: &str = "v1";

/// The request verb a record captured.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TraceVerb {
    /// `PAIR <u> <v>` — single-pair score.
    Pair,
    /// `SOURCE <u>` — single-source vector.
    Source,
    /// `TOPK <u> <k>` — top-k most similar.
    TopK,
    /// One pair of a `BATCH` request (batches record one line per pair).
    Batch,
}

impl TraceVerb {
    /// Wire token (also the verb-mix label in reports).
    pub fn as_str(self) -> &'static str {
        match self {
            TraceVerb::Pair => "PAIR",
            TraceVerb::Source => "SOURCE",
            TraceVerb::TopK => "TOPK",
            TraceVerb::Batch => "BATCH",
        }
    }

    fn parse(tok: &str) -> Option<TraceVerb> {
        match tok {
            "PAIR" => Some(TraceVerb::Pair),
            "SOURCE" => Some(TraceVerb::Source),
            "TOPK" => Some(TraceVerb::TopK),
            "BATCH" => Some(TraceVerb::Batch),
            _ => None,
        }
    }
}

/// The key(s) a record's request addressed, shaped by verb.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TraceKey {
    /// `u,v` — a node pair (`PAIR` and per-pair `BATCH` records).
    Pair(u32, u32),
    /// `u` — a single source node (`SOURCE`).
    Node(u32),
    /// `u:k` — a source node and result count (`TOPK`).
    NodeK(u32, u32),
}

impl TraceKey {
    /// The canonicalized `(min, max)` pair this key warms in the
    /// single-pair result cache: pair keys canonicalize directly,
    /// node-addressed verbs degrade to the identity pair (which still
    /// prefetches and primes the node's entry list).
    pub fn warm_pair(self) -> (u32, u32) {
        match self {
            TraceKey::Pair(u, v) => (u.min(v), u.max(v)),
            TraceKey::Node(u) | TraceKey::NodeK(u, _) => (u, u),
        }
    }

    fn encode(self, out: &mut String) {
        match self {
            TraceKey::Pair(u, v) => {
                let _ = write!(out, "{u},{v}");
            }
            TraceKey::Node(u) => {
                let _ = write!(out, "{u}");
            }
            TraceKey::NodeK(u, k) => {
                let _ = write!(out, "{u}:{k}");
            }
        }
    }

    fn parse(verb: TraceVerb, tok: &str) -> Option<TraceKey> {
        match verb {
            TraceVerb::Pair | TraceVerb::Batch => {
                let (u, v) = tok.split_once(',')?;
                Some(TraceKey::Pair(u.parse().ok()?, v.parse().ok()?))
            }
            TraceVerb::Source => Some(TraceKey::Node(tok.parse().ok()?)),
            TraceVerb::TopK => {
                let (u, k) = tok.split_once(':')?;
                Some(TraceKey::NodeK(u.parse().ok()?, k.parse().ok()?))
            }
        }
    }
}

/// How the server answered the recorded request.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TraceOutcome {
    /// Served a result.
    Ok,
    /// Answered `ERR` (engine or protocol failure).
    Err,
    /// Shed by overload admission control (`ERR overloaded`).
    Shed,
    /// Rejected past its deadline budget (`ERR deadline`).
    Deadline,
}

impl TraceOutcome {
    /// Wire token.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceOutcome::Ok => "ok",
            TraceOutcome::Err => "err",
            TraceOutcome::Shed => "shed",
            TraceOutcome::Deadline => "deadline",
        }
    }

    fn parse(tok: &str) -> Option<TraceOutcome> {
        match tok {
            "ok" => Some(TraceOutcome::Ok),
            "err" => Some(TraceOutcome::Err),
            "shed" => Some(TraceOutcome::Shed),
            "deadline" => Some(TraceOutcome::Deadline),
            _ => None,
        }
    }
}

/// One captured request: when (relative to the trace base), what, to
/// which key, how it ended, how long it took, and against which engine
/// epoch it ran.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Microseconds since the trace's `base_us` origin.
    pub t_us: u64,
    /// Request verb.
    pub verb: TraceVerb,
    /// Request key(s).
    pub key: TraceKey,
    /// How the request was answered.
    pub outcome: TraceOutcome,
    /// Served latency in microseconds.
    pub latency_us: u32,
    /// Engine generation epoch the request ran against.
    pub epoch: u64,
}

/// A fully read trace: the capture origin and its records in time order.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Wall-clock origin of the capture (unix microseconds).
    pub base_us: u64,
    /// Records, ascending `t_us`.
    pub records: Vec<TraceRecord>,
}

impl Trace {
    /// Time span covered by the records (0 for empty traces).
    pub fn duration_us(&self) -> u64 {
        match (self.records.first(), self.records.last()) {
            (Some(first), Some(last)) => last.t_us.saturating_sub(first.t_us),
            _ => 0,
        }
    }
}

/// Append one encoded record line (including the trailing newline) to
/// `out`. `last_t_us` is the previous record's timestamp — the line
/// stores the delta. Exposed so the server's `TRACE` wire verb and the
/// recorder share one encoder with the file writer.
pub fn encode_record(rec: &TraceRecord, last_t_us: u64, out: &mut String) {
    let start = out.len();
    let dt = rec.t_us.saturating_sub(last_t_us);
    let _ = write!(out, "+{dt} {} ", rec.verb.as_str());
    rec.key.encode(out);
    let _ = write!(
        out,
        " {} {} e{}",
        rec.outcome.as_str(),
        rec.latency_us,
        rec.epoch
    );
    let crc = fnv1a(&out.as_bytes()[start..]) as u32;
    let _ = writeln!(out, " #{crc:08x}");
}

/// Parse one record line (without its newline) against the running
/// timestamp `last_t_us`, verifying the checksum.
pub fn parse_record(line: &str, last_t_us: u64) -> Result<TraceRecord, SlingError> {
    let bad = |why: &str| SlingError::CorruptIndex(format!("trace record {line:?}: {why}"));
    let (body, crc_hex) = line
        .rsplit_once(" #")
        .ok_or_else(|| bad("missing checksum"))?;
    let want = u32::from_str_radix(crc_hex, 16).map_err(|_| bad("malformed checksum"))?;
    if crc_hex.len() != 8 || fnv1a(body.as_bytes()) as u32 != want {
        return Err(bad("checksum mismatch"));
    }
    let mut tokens = body.split_ascii_whitespace();
    let dt: u64 = tokens
        .next()
        .and_then(|t| t.strip_prefix('+'))
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| bad("malformed dt"))?;
    let verb = tokens
        .next()
        .and_then(TraceVerb::parse)
        .ok_or_else(|| bad("unknown verb"))?;
    let key = tokens
        .next()
        .and_then(|t| TraceKey::parse(verb, t))
        .ok_or_else(|| bad("malformed key"))?;
    let outcome = tokens
        .next()
        .and_then(TraceOutcome::parse)
        .ok_or_else(|| bad("unknown outcome"))?;
    let latency_us: u32 = tokens
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| bad("malformed latency"))?;
    let epoch: u64 = tokens
        .next()
        .and_then(|t| t.strip_prefix('e'))
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| bad("malformed epoch"))?;
    if tokens.next().is_some() {
        return Err(bad("trailing tokens"));
    }
    Ok(TraceRecord {
        t_us: last_t_us + dt,
        verb,
        key,
        outcome,
        latency_us,
        epoch,
    })
}

/// Streaming trace writer: emits the header on construction, then one
/// line per [`TraceWriter::write`], delta-encoding timestamps. The
/// writer never seeks, so it composes with `BufWriter`, sockets, and
/// append-mode files alike.
pub struct TraceWriter<W: Write> {
    out: W,
    last_t_us: u64,
    records: u64,
    bytes: u64,
    line: String,
}

impl<W: Write> TraceWriter<W> {
    /// Wrap `out`, writing the `SLNGTRACE v1` header for origin
    /// `base_us` immediately.
    pub fn new(mut out: W, base_us: u64) -> io::Result<Self> {
        let header = format!("{TRACE_MAGIC} {TRACE_VERSION} base_us={base_us}\n");
        out.write_all(header.as_bytes())?;
        Ok(TraceWriter {
            out,
            last_t_us: 0,
            records: 0,
            bytes: header.len() as u64,
            line: String::new(),
        })
    }

    /// Append one record. Timestamps must be non-decreasing; a
    /// regression is clamped to the previous timestamp rather than
    /// corrupting the running delta.
    pub fn write(&mut self, rec: &TraceRecord) -> io::Result<()> {
        self.line.clear();
        encode_record(rec, self.last_t_us, &mut self.line);
        self.out.write_all(self.line.as_bytes())?;
        self.last_t_us = self.last_t_us.max(rec.t_us);
        self.records += 1;
        self.bytes += self.line.len() as u64;
        Ok(())
    }

    /// Records written so far (header excluded).
    pub fn records_written(&self) -> u64 {
        self.records
    }

    /// Bytes written so far (header included).
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }

    /// Flush the underlying writer.
    pub fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }

    /// Finish and hand back the underlying writer (flushed).
    pub fn into_inner(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }

    /// The underlying writer (for fsync before a rename publish).
    pub fn get_ref(&self) -> &W {
        &self.out
    }
}

/// Streaming strict reader: parses the header on construction, then
/// yields one `Result<TraceRecord, _>` per line. Works over any
/// [`BufRead`], so fragmented sources (sockets, chunked readers) parse
/// identically to whole files.
pub struct TraceReader<R: BufRead> {
    input: R,
    base_us: u64,
    last_t_us: u64,
    line: String,
}

impl<R: BufRead> TraceReader<R> {
    /// Read and validate the header line.
    pub fn new(mut input: R) -> Result<Self, SlingError> {
        let mut line = String::new();
        input.read_line(&mut line).map_err(SlingError::Io)?;
        let base_us = parse_header(line.trim_end_matches(['\n', '\r']))?;
        Ok(TraceReader {
            input,
            base_us,
            last_t_us: 0,
            line,
        })
    }

    /// The capture origin from the header (unix microseconds).
    pub fn base_us(&self) -> u64 {
        self.base_us
    }
}

fn parse_header(line: &str) -> Result<u64, SlingError> {
    let bad = |why: String| SlingError::CorruptIndex(why);
    let mut tokens = line.split_ascii_whitespace();
    match tokens.next() {
        Some(TRACE_MAGIC) => {}
        _ => return Err(bad(format!("not a trace: header {line:?}"))),
    }
    match tokens.next() {
        Some(TRACE_VERSION) => {}
        Some(other) => {
            return Err(bad(format!(
                "unsupported trace version {other:?} (this build reads {TRACE_VERSION})"
            )))
        }
        None => return Err(bad("trace header missing version".to_string())),
    }
    let base_us = tokens
        .next()
        .and_then(|t| t.strip_prefix("base_us="))
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| bad(format!("trace header missing base_us: {line:?}")))?;
    Ok(base_us)
}

impl<R: BufRead> Iterator for TraceReader<R> {
    type Item = Result<TraceRecord, SlingError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.line.clear();
        match self.input.read_line(&mut self.line) {
            Ok(0) => None,
            Ok(_) => {
                let line = self.line.trim_end_matches(['\n', '\r']);
                if line.is_empty() {
                    return self.next();
                }
                // A line without its newline is a torn tail from an
                // in-flight writer — corrupt for the strict reader.
                if !self.line.ends_with('\n') {
                    return Some(Err(SlingError::CorruptIndex(format!(
                        "trace truncated mid-record: {line:?}"
                    ))));
                }
                match parse_record(line, self.last_t_us) {
                    Ok(rec) => {
                        self.last_t_us = rec.t_us;
                        Some(Ok(rec))
                    }
                    Err(e) => Some(Err(e)),
                }
            }
            Err(e) => Some(Err(SlingError::Io(e))),
        }
    }
}

/// Read a whole trace strictly: any malformed, checksum-failing, or
/// truncated line is an error. Replay uses this — driving a damaged
/// trace would silently misrepresent the workload.
pub fn read_trace(input: impl BufRead) -> Result<Trace, SlingError> {
    let mut reader = TraceReader::new(input)?;
    let base_us = reader.base_us();
    let mut records = Vec::new();
    for rec in reader.by_ref() {
        records.push(rec?);
    }
    Ok(Trace { base_us, records })
}

/// [`read_trace`] over a file path.
pub fn read_trace_file(path: impl AsRef<Path>) -> Result<Trace, SlingError> {
    let file = std::fs::File::open(path).map_err(SlingError::Io)?;
    read_trace(std::io::BufReader::new(file))
}

/// Read a trace tolerantly: stop at the first damaged line, returning
/// every record before it plus the count of lines dropped (the damaged
/// line and everything after it). Returns `None` if the header itself
/// is unreadable. Warm-up and `traffic-report` use this: a torn tail
/// from an in-flight recorder degrades to fewer records, never to an
/// error.
pub fn read_trace_tolerant(input: impl BufRead) -> (Option<Trace>, usize) {
    let mut reader = match TraceReader::new(input) {
        Ok(r) => r,
        Err(_) => return (None, 0),
    };
    let base_us = reader.base_us();
    let mut records = Vec::new();
    let mut dropped = 0usize;
    for rec in reader.by_ref() {
        match rec {
            Ok(rec) => records.push(rec),
            Err(_) => {
                dropped += 1;
                // Count the rest of the file as dropped without parsing
                // it: a damaged running-delta makes every later
                // timestamp wrong even if its line parses.
                dropped += reader.count();
                break;
            }
        }
    }
    (Some(Trace { base_us, records }), dropped)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<TraceRecord> {
        vec![
            TraceRecord {
                t_us: 10,
                verb: TraceVerb::Pair,
                key: TraceKey::Pair(3, 77),
                outcome: TraceOutcome::Ok,
                latency_us: 12,
                epoch: 1,
            },
            TraceRecord {
                t_us: 150,
                verb: TraceVerb::Source,
                key: TraceKey::Node(5),
                outcome: TraceOutcome::Ok,
                latency_us: 340,
                epoch: 1,
            },
            TraceRecord {
                t_us: 151,
                verb: TraceVerb::TopK,
                key: TraceKey::NodeK(9, 10),
                outcome: TraceOutcome::Err,
                latency_us: 3,
                epoch: 2,
            },
            TraceRecord {
                t_us: 400,
                verb: TraceVerb::Batch,
                key: TraceKey::Pair(0, 1),
                outcome: TraceOutcome::Shed,
                latency_us: 0,
                epoch: 2,
            },
            TraceRecord {
                t_us: 400,
                verb: TraceVerb::Pair,
                key: TraceKey::Pair(8, 8),
                outcome: TraceOutcome::Deadline,
                latency_us: 0,
                epoch: 2,
            },
        ]
    }

    fn write_sample(base_us: u64) -> Vec<u8> {
        let mut writer = TraceWriter::new(Vec::new(), base_us).unwrap();
        for rec in sample_records() {
            writer.write(&rec).unwrap();
        }
        writer.into_inner().unwrap()
    }

    #[test]
    fn roundtrip_preserves_every_field() {
        let bytes = write_sample(777);
        let trace = read_trace(&bytes[..]).unwrap();
        assert_eq!(trace.base_us, 777);
        assert_eq!(trace.records, sample_records());
        assert_eq!(trace.duration_us(), 390);
    }

    #[test]
    fn empty_trace_roundtrips() {
        let writer = TraceWriter::new(Vec::new(), 42).unwrap();
        assert_eq!(writer.records_written(), 0);
        let bytes = writer.into_inner().unwrap();
        let trace = read_trace(&bytes[..]).unwrap();
        assert_eq!(trace.base_us, 42);
        assert!(trace.records.is_empty());
        assert_eq!(trace.duration_us(), 0);
    }

    #[test]
    fn writer_counts_records_and_bytes() {
        let mut writer = TraceWriter::new(Vec::new(), 0).unwrap();
        let header_bytes = writer.bytes_written();
        assert!(header_bytes > 0);
        for rec in sample_records() {
            writer.write(&rec).unwrap();
        }
        assert_eq!(writer.records_written(), 5);
        let total = writer.bytes_written();
        let bytes = writer.into_inner().unwrap();
        assert_eq!(bytes.len() as u64, total);
    }

    #[test]
    fn checksum_catches_a_flipped_byte() {
        let bytes = write_sample(0);
        let text = String::from_utf8(bytes).unwrap();
        // Corrupt a key digit in the middle of the second record.
        let corrupted = text.replacen("SOURCE 5", "SOURCE 6", 1);
        assert_ne!(text, corrupted);
        let err = read_trace(corrupted.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn truncated_tail_is_strict_error_but_tolerated() {
        let bytes = write_sample(0);
        // Chop mid-way through the final line (no trailing newline).
        let cut = bytes.len() - 5;
        let torn = &bytes[..cut];
        assert!(read_trace(torn).is_err());
        let (trace, dropped) = read_trace_tolerant(torn);
        let trace = trace.unwrap();
        assert_eq!(trace.records, sample_records()[..4].to_vec());
        assert_eq!(dropped, 1);
    }

    #[test]
    fn tolerant_reader_stops_at_interior_damage() {
        let bytes = write_sample(0);
        let text = String::from_utf8(bytes).unwrap();
        let corrupted = text.replacen("+140", "+141", 1); // record 2's delta
        let (trace, dropped) = read_trace_tolerant(corrupted.as_bytes());
        let trace = trace.unwrap();
        assert_eq!(trace.records, sample_records()[..1].to_vec());
        // The damaged line plus the three after it.
        assert_eq!(dropped, 4);
    }

    #[test]
    fn unsupported_version_is_rejected() {
        let bytes = b"SLNGTRACE v2 base_us=0\n";
        let err = read_trace(&bytes[..]).unwrap_err();
        assert!(err.to_string().contains("unsupported"), "{err}");
        let (trace, _) = read_trace_tolerant(&bytes[..]);
        assert!(trace.is_none());
        assert!(read_trace(&b"not a trace\n"[..]).is_err());
        assert!(read_trace(&b""[..]).is_err());
    }

    #[test]
    fn wire_encoding_matches_file_encoding() {
        // `encode_record` / `parse_record` are the same functions the
        // writer and reader use, so a record relayed over the TRACE
        // wire verb reparses bit-identically.
        let rec = sample_records()[0];
        let mut line = String::new();
        encode_record(&rec, 0, &mut line);
        let parsed = parse_record(line.trim_end(), 0).unwrap();
        assert_eq!(parsed, rec);
    }

    #[test]
    fn out_of_order_timestamp_clamps_monotone() {
        let mut writer = TraceWriter::new(Vec::new(), 0).unwrap();
        let mut a = sample_records()[0];
        a.t_us = 100;
        let mut b = sample_records()[0];
        b.t_us = 40; // regressed clock
        writer.write(&a).unwrap();
        writer.write(&b).unwrap();
        let bytes = writer.into_inner().unwrap();
        let trace = read_trace(&bytes[..]).unwrap();
        assert_eq!(trace.records[1].t_us, 100, "regression clamps, not wraps");
    }
}
