//! # workload — traffic traces, synthesis, simulation, characterization
//!
//! The observability layer for *workloads*: where [`crate::obs`] tells
//! an operator what the server is doing right now, this module captures
//! **what the traffic looked like** — so cache sizing, admission policy,
//! and warm-up decisions are made from recorded evidence instead of
//! uniform bench mixes. The SkyServer traffic reports showed public
//! query traffic to be heavily skewed, bursty, and bot-dominated;
//! everything here exists to measure those three properties on our own
//! traffic and act on them.
//!
//! Four pieces:
//!
//! * [`trace`] — the versioned, checksummed traffic-trace format with a
//!   streaming [`TraceWriter`]/[`TraceReader`] pair (format grammar
//!   below);
//! * [`synth`] — deterministic trace generators for the three scenario
//!   families the benches replay (Zipf sweep, diurnal burst, adversarial
//!   cold scan);
//! * [`sim`] — offline cache simulation over a trace: hit rate as a
//!   function of capacity and admission policy, the input to
//!   hit-rate-vs-size curves;
//! * [`report`] — the SkyServer-style characterization (verb mix,
//!   key-popularity CDF and fitted skew exponent, burstiness,
//!   hit-rate-vs-size) rendered by `sling traffic-report`.
//!
//! The server-side recorder lives in `sling-server` (it needs the event
//! loop); `sling record` / `sling replay` / `sling traffic-report` live
//! in the CLI. Both build exclusively on the types here.
//!
//! ## Trace format grammar (`SLNGTRACE v1`)
//!
//! A trace is a line-oriented text file: one header line, then one line
//! per record. Text keeps traces greppable, diffable, and serveable
//! over the line-based wire protocol; per-line checksums give the same
//! torn/bit-rot detection the index `MANIFEST` has.
//!
//! ```text
//! trace   := header record*
//! header  := "SLNGTRACE v1 base_us=" <u64> "\n"
//! record  := "+" <dt_us> " " <verb> " " <key> " " <outcome> " "
//!            <latency_us> " e" <epoch> " #" <crc> "\n"
//! verb    := "PAIR" | "SOURCE" | "TOPK" | "BATCH"
//! key     := <u> "," <v>      (PAIR, BATCH — canonicalized u <= v not required)
//!          | <u>              (SOURCE)
//!          | <u> ":" <k>      (TOPK)
//! outcome := "ok" | "err" | "shed" | "deadline"
//! crc     := 8 lowercase hex digits — the low 32 bits of the FNV-1a64
//!            hash of every byte of the line before the " #" separator
//! ```
//!
//! * `base_us` is the capture's wall-clock origin (unix microseconds);
//!   every record timestamp is relative to it.
//! * `dt_us` is the µs delta from the **previous** record (from the
//!   header for the first record), so steady traffic costs 2–3 bytes of
//!   timestamp per line and a reader reconstructs absolute
//!   [`TraceRecord::t_us`] by running addition.
//! * `latency_us` is the served latency; `epoch` is the engine
//!   generation epoch the request ran against, so a trace spanning a
//!   hot reload records the swap point.
//! * A `BATCH` request is recorded as one line per pair (the replayable
//!   unit), sharing the batch's timestamp.
//!
//! Readers come in two strictnesses: [`read_trace`] fails on the first
//! malformed or checksum-failing line (replay wants exactness), while
//! [`read_trace_tolerant`] returns every record up to the first damage
//! and the count of lines it dropped — the contract warm-up and
//! `traffic-report` want, where a torn tail from an in-flight recorder
//! must degrade to *fewer records*, never to an error. The header is
//! versioned: a `v2` file is rejected by both readers rather than
//! misread.

pub mod report;
pub mod sim;
pub mod synth;
pub mod trace;

pub use report::{characterize, TrafficReport};
pub use sim::{simulate_pair_cache, SimResult};
pub use synth::{adversarial_cold_scan, diurnal_burst, zipf_sweep, SynthOpts};
pub use trace::{
    encode_record, parse_record, read_trace, read_trace_file, read_trace_tolerant, Trace, TraceKey,
    TraceOutcome, TraceReader, TraceRecord, TraceVerb, TraceWriter,
};
