//! Offline cache simulation over a trace — the engine behind the
//! hit-rate-vs-cache-size curves in `sling traffic-report` and the
//! admission-policy comparison in `BENCH_replay.json`.
//!
//! The simulator replays a trace's pair-keyed queries through the exact
//! structures the live result cache uses ([`LruList`] plus
//! [`FrequencySketch`]) with the same lookup-then-admit logic as
//! `ShardedResultCache`, so a simulated hit rate is a faithful
//! prediction of the real cache at that capacity and policy — not a
//! model of it.

use super::trace::{TraceKey, TraceRecord, TraceVerb};
use crate::cache::{pair_hash, Admission, FrequencySketch, LruList};

/// Outcome of one [`simulate_pair_cache`] run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimResult {
    /// Simulated cache capacity (entries).
    pub capacity: usize,
    /// Admission policy simulated.
    pub policy: Admission,
    /// Pair lookups served from the simulated cache.
    pub hits: u64,
    /// Pair lookups that missed.
    pub misses: u64,
    /// Inserts the admission policy rejected (always 0 for LRU).
    pub rejects: u64,
}

impl SimResult {
    /// Fraction of pair lookups that hit, in `[0, 1]`; 0 when the trace
    /// held no pair traffic.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

/// Replay the pair-keyed records of a trace (`PAIR` and `BATCH` lines —
/// the verbs the result cache serves) through a single-shard cache of
/// `capacity` entries under `policy`, and report the hit rate.
///
/// Mirrors `ShardedResultCache` exactly: every lookup charges the
/// frequency sketch, and at capacity a TinyLFU candidate is admitted
/// only when its sketch estimate strictly beats the LRU victim's. Keys
/// are canonicalized symmetric pairs, as in the live cache.
pub fn simulate_pair_cache(
    records: &[TraceRecord],
    capacity: usize,
    policy: Admission,
) -> SimResult {
    let capacity = capacity.max(1);
    let mut list: LruList<(u32, u32), ()> = LruList::new();
    let mut sketch = match policy {
        Admission::TinyLfu => FrequencySketch::with_capacity(capacity),
        Admission::Lru => FrequencySketch::default(),
    };
    let mut result = SimResult {
        capacity,
        policy,
        hits: 0,
        misses: 0,
        rejects: 0,
    };
    for rec in records {
        let (u, v) = match (rec.verb, rec.key) {
            (TraceVerb::Pair | TraceVerb::Batch, TraceKey::Pair(u, v)) => (u, v),
            _ => continue,
        };
        let key = (u.min(v), u.max(v));
        let hash = pair_hash(key);
        sketch.increment(hash);
        if list.get(&key).is_some() {
            result.hits += 1;
            continue;
        }
        result.misses += 1;
        if list.len() >= capacity {
            if policy == Admission::TinyLfu {
                let victim_hash = list.peek_lru().map(|(k, _)| pair_hash(*k));
                if let Some(victim_hash) = victim_hash {
                    if sketch.estimate(hash) <= sketch.estimate(victim_hash) {
                        result.rejects += 1;
                        continue;
                    }
                }
            }
            list.pop_lru();
        }
        list.insert(key, ());
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::synth::{adversarial_cold_scan, zipf_sweep, SynthOpts};
    use crate::workload::trace::TraceOutcome;

    const OPTS: SynthOpts = SynthOpts {
        nodes: 400,
        records: 12_000,
        seed: 41,
    };

    #[test]
    fn empty_trace_is_all_zero() {
        let r = simulate_pair_cache(&[], 64, Admission::Lru);
        assert_eq!((r.hits, r.misses, r.rejects), (0, 0, 0));
        assert_eq!(r.hit_rate(), 0.0);
    }

    #[test]
    fn non_pair_verbs_are_ignored() {
        let recs = vec![TraceRecord {
            t_us: 0,
            verb: TraceVerb::Source,
            key: TraceKey::Node(7),
            outcome: TraceOutcome::Ok,
            latency_us: 0,
            epoch: 0,
        }];
        let r = simulate_pair_cache(&recs, 64, Admission::TinyLfu);
        assert_eq!(r.hits + r.misses, 0);
    }

    #[test]
    fn symmetric_pairs_share_one_entry() {
        let mk = |u, v| TraceRecord {
            t_us: 0,
            verb: TraceVerb::Pair,
            key: TraceKey::Pair(u, v),
            outcome: TraceOutcome::Ok,
            latency_us: 0,
            epoch: 0,
        };
        let r = simulate_pair_cache(&[mk(3, 9), mk(9, 3)], 8, Admission::Lru);
        assert_eq!((r.hits, r.misses), (1, 1));
    }

    #[test]
    fn bigger_caches_hit_more() {
        let trace = zipf_sweep(OPTS);
        let small = simulate_pair_cache(&trace.records, 64, Admission::Lru);
        let large = simulate_pair_cache(&trace.records, 4096, Admission::Lru);
        assert!(large.hit_rate() > small.hit_rate());
    }

    #[test]
    fn tinylfu_beats_lru_on_the_adversarial_scan() {
        let trace = adversarial_cold_scan(OPTS);
        let lru = simulate_pair_cache(&trace.records, 192, Admission::Lru);
        let tiny = simulate_pair_cache(&trace.records, 192, Admission::TinyLfu);
        assert!(
            tiny.hit_rate() > lru.hit_rate(),
            "tinylfu {:.3} vs lru {:.3}",
            tiny.hit_rate(),
            lru.hit_rate()
        );
        assert!(tiny.rejects > 0);
        assert_eq!(lru.rejects, 0);
    }
}
