//! Buffer pool in front of the disk-resident HP store.
//!
//! §5.4 notes SLING "can efficiently process queries even when its index
//! structure does not fit in the main memory": each query touches `O(1/ε)`
//! entries, i.e. a constant number of positioned reads.
//! [`BufferedDiskStore`] is the production piece that mode wants — an LRU
//! buffer of decoded per-node entry lists in front of
//! [`DiskHpStore`], bounded by a total entry budget (the analogue of a
//! database buffer pool, with per-node granularity because `H(v)` is the
//! store's natural page).
//!
//! The buffer implements [`HpStore`], so *every* query algorithm —
//! Algorithm 3 single-pair, Algorithm 6 single-source, top-k, joins,
//! batches — runs against it through the shared generic query core in
//! [`crate::store`]; this module contains no query logic of its own.
//! (Earlier revisions duplicated the Algorithm 6 propagation and the
//! merge-intersection here; that code now lives once, in
//! [`crate::single_source`] / [`crate::single_pair`].)
//!
//! The buffer is format-agnostic: it caches *decoded* per-node lists, so
//! it fronts a raw `SLNGIDX1` store and a block-compressed `SLNGIDX2`
//! one identically — over v2 a miss costs one positioned read per
//! covering block (plus the store's own decoded-block scratch cache), a
//! hit costs neither IO nor decode.

use parking_lot::Mutex;
use sling_graph::{DiGraph, NodeId};

use crate::cache::{node_hash, Admission, AtomicCacheStats, CacheStats, FrequencySketch, LruList};
use crate::error::SlingError;
use crate::hp::HpEntry;
use crate::obs::{self, KernelCounters};
use crate::out_of_core::DiskHpStore;
use crate::single_source::SingleSourceWorkspace;
use crate::store::{HpStore, QueryEngine};

impl DiskHpStore {
    /// Single-source query (Algorithm 6) against disk-resident entries:
    /// one entry-list read for `H(u)`, then in-memory propagation.
    /// Allocates fresh workspaces; hot loops should use
    /// [`DiskHpStore::single_source_with`].
    pub fn single_source(&self, graph: &DiGraph, u: NodeId) -> Result<Vec<f64>, SlingError> {
        self.query_engine().single_source(graph, u)
    }

    /// Single-source query reusing caller-provided workspaces — the
    /// allocation-free path, matching the in-memory
    /// [`crate::SlingIndex::single_source_with`].
    pub fn single_source_with(
        &self,
        graph: &DiGraph,
        ws: &mut SingleSourceWorkspace,
        u: NodeId,
        out: &mut Vec<f64>,
    ) -> Result<(), SlingError> {
        self.query_engine().single_source_with(graph, ws, u, out)
    }
}

/// Buffer-pool statistics of a [`BufferedDiskStore`] — the same
/// [`CacheStats`] shape every other cache in the tree reports, counted
/// by the shared [`AtomicCacheStats`] (exact under concurrent batch
/// workers) instead of plain u64 fields, and mirrored into the
/// process-wide [`obs::KERNEL`] counters so buffered-disk hit rates
/// show up in `STATS`/`METRICS` like every other cache.
pub type BufferStats = CacheStats;

/// Mutable buffer state, behind a mutex so the store can be shared by
/// the generic (`&self`) query core and across batch-query threads.
/// Admission, touch, and eviction all go through the intrusive-list
/// [`LruList`] shared with the result caches — `O(1)` per operation, so
/// the bookkeeping under the lock stays cheap at any buffer size.
struct BufferState {
    cached_entries: usize,
    lists: LruList<u32, Vec<HpEntry>>,
    /// Node-keyed frequency sketch advising eviction under
    /// [`Admission::TinyLfu`]; a defaulted sketch (the LRU policy) is a
    /// no-op. Lives under the same lock as the lists.
    sketch: FrequencySketch,
}

/// LRU buffer of decoded `H(v)` lists in front of a [`DiskHpStore`].
///
/// Bounded by *entries*, not node count, because `|H(v)|` varies by
/// orders of magnitude between hub and leaf nodes. Single oversized lists
/// larger than the whole budget are still admitted alone (scan-resistant
/// enough for the SimRank workload, where reuse is node-driven). Caches
/// the *stored* runs; the §5.2 two-hop splice and §5.3 expansion happen
/// in the generic query layer on top.
pub struct BufferedDiskStore<'s> {
    store: &'s DiskHpStore,
    budget_entries: usize,
    /// Lock-free counters, shared shape with every other cache (see
    /// [`BufferStats`]); bumped outside the state lock.
    stats: AtomicCacheStats,
    state: Mutex<BufferState>,
}

impl<'s> BufferedDiskStore<'s> {
    /// Buffer at most `budget_entries` decoded entries (≥ 1) under
    /// plain LRU eviction.
    pub fn new(store: &'s DiskHpStore, budget_entries: usize) -> Self {
        Self::with_admission(store, budget_entries, Admission::Lru)
    }

    /// [`BufferedDiskStore::new`] with an explicit [`Admission`]
    /// policy. [`Admission::TinyLfu`] keeps one-touch scans (cold batch
    /// sweeps) from churning the buffered hub lists.
    pub fn with_admission(
        store: &'s DiskHpStore,
        budget_entries: usize,
        admission: Admission,
    ) -> Self {
        let budget_entries = budget_entries.max(1);
        BufferedDiskStore {
            store,
            budget_entries,
            stats: AtomicCacheStats::new(),
            state: Mutex::new(BufferState {
                cached_entries: 0,
                lists: LruList::new(),
                sketch: match admission {
                    Admission::Lru => FrequencySketch::default(),
                    // Budget is in entries; lists average tens of
                    // entries, so track ~1/16th as many distinct nodes.
                    Admission::TinyLfu => {
                        FrequencySketch::with_capacity((budget_entries / 16).max(16))
                    }
                },
            }),
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> BufferStats {
        self.stats.snapshot()
    }

    /// Decoded entries currently buffered.
    pub fn buffered_entries(&self) -> usize {
        self.state.lock().cached_entries
    }

    /// Query engine over the buffered store, sharing the underlying
    /// store's metadata.
    pub fn query_engine(&self) -> QueryEngine<'_, &BufferedDiskStore<'s>> {
        QueryEngine::from_parts(
            self,
            std::borrow::Cow::Borrowed(&self.store.config),
            std::borrow::Cow::Borrowed(&self.store.d),
            std::borrow::Cow::Borrowed(&self.store.reduced),
            std::borrow::Cow::Borrowed(&self.store.marks),
            self.store.stats(),
        )
    }

    /// Serve `H(v)` from the buffer, reading through on a miss. The
    /// positioned reads happen with the lock *released* so concurrent
    /// batch-query workers only serialize on the (cheap) bookkeeping,
    /// not on each other's IO; two threads missing the same node both
    /// read, and the second one finds the list already admitted.
    fn load_into(&self, v: NodeId, out: &mut Vec<HpEntry>) -> Result<(), SlingError> {
        {
            let mut state = self.state.lock();
            state.sketch.increment(node_hash(v.0));
            if let Some(list) = state.lists.get(&v.0) {
                out.clear();
                out.extend_from_slice(list);
                drop(state);
                self.stats.record_hit();
                KernelCounters::bump(&obs::KERNEL.buffered_disk_hits);
                return Ok(());
            }
        }
        self.stats.record_miss();
        KernelCounters::bump(&obs::KERNEL.buffered_disk_misses);
        self.store.read_entries(v, out)?;
        // Clone for admission *before* taking the lock: the allocation +
        // memcpy of a hub-sized list must not serialize other workers
        // that only need the O(1) bookkeeping.
        let list = out.clone();
        let mut state = self.state.lock();
        if state.lists.get(&v.0).is_some() {
            // A racing worker admitted it while we read; keep theirs
            // (`out` already holds our identical copy).
            return Ok(());
        }
        // Evict least-recently-used lists until the new one fits.
        // Under TinyLFU admission the candidate node must strictly
        // out-earn the LRU victim in sketched frequency, or the insert
        // is refused and the resident lists survive.
        let mut evicted = 0u64;
        while state.cached_entries + out.len() > self.budget_entries {
            if state.sketch.is_enabled() {
                if let Some((&victim, _)) = state.lists.peek_lru() {
                    if state.sketch.estimate(node_hash(v.0))
                        <= state.sketch.estimate(node_hash(victim))
                    {
                        // `out` already holds the answer; any victims
                        // evicted before this one pushed back still
                        // count.
                        drop(state);
                        self.stats.record_evictions(evicted);
                        KernelCounters::bump_by(&obs::KERNEL.buffered_disk_evictions, evicted);
                        return Ok(());
                    }
                }
            }
            let Some((_, old)) = state.lists.pop_lru() else {
                break;
            };
            state.cached_entries -= old.len();
            evicted += 1;
        }
        state.cached_entries += list.len();
        state.lists.insert(v.0, list);
        drop(state);
        self.stats.record_evictions(evicted);
        KernelCounters::bump_by(&obs::KERNEL.buffered_disk_evictions, evicted);
        Ok(())
    }

    /// Buffered single-pair query; identical results to
    /// [`DiskHpStore::single_pair`].
    pub fn single_pair(&self, graph: &DiGraph, u: NodeId, v: NodeId) -> Result<f64, SlingError> {
        self.query_engine().single_pair(graph, u, v)
    }

    /// Buffered single-source query; identical results to
    /// [`DiskHpStore::single_source`].
    pub fn single_source(&self, graph: &DiGraph, u: NodeId) -> Result<Vec<f64>, SlingError> {
        self.query_engine().single_source(graph, u)
    }
}

impl HpStore for BufferedDiskStore<'_> {
    fn num_nodes(&self) -> usize {
        HpStore::num_nodes(self.store)
    }

    fn total_entries(&self) -> usize {
        self.store.total_entries()
    }

    fn range(&self, v: NodeId) -> std::ops::Range<usize> {
        self.store.range(v)
    }

    fn entries_into(&self, v: NodeId, out: &mut Vec<HpEntry>) -> Result<(), SlingError> {
        self.load_into(v, out)
    }

    fn entry_at(&self, i: usize) -> Result<HpEntry, SlingError> {
        self.store.entry_at(i)
    }

    fn contains_key(&self, v: NodeId, step: u16, node: NodeId) -> Result<bool, SlingError> {
        self.store.contains_key(v, step, node)
    }

    fn prefetch(&self, v: NodeId) {
        // Advisory pass-through: a buffered hit doesn't need the pages,
        // but peeking the buffer would take the lock — dearer than the
        // best-effort fadvise hint itself.
        self.store.prefetch_entries(v);
    }

    fn resident_bytes(&self) -> usize {
        let state = self.state.lock();
        self.store.resident_bytes() + state.cached_entries * std::mem::size_of::<HpEntry>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SlingConfig;
    use crate::index::SlingIndex;
    use sling_graph::generators::{barabasi_albert, two_cliques_bridge};
    use std::path::PathBuf;

    const C: f64 = 0.6;

    fn tmp(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sling_disk_query_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("hp.bin")
    }

    fn setup(tag: &str) -> (DiGraph, SlingIndex, DiskHpStore) {
        let g = barabasi_albert(150, 3, 7).unwrap();
        let idx = SlingIndex::build(&g, &SlingConfig::from_epsilon(C, 0.1).with_seed(5)).unwrap();
        let store = DiskHpStore::create(&idx, tmp(tag)).unwrap();
        (g, idx, store)
    }

    #[test]
    fn disk_single_source_matches_in_memory() {
        let (g, idx, store) = setup("ss");
        for u in [NodeId(0), NodeId(42), NodeId(149)] {
            let got = store.single_source(&g, u).unwrap();
            let want = idx.single_source(&g, u);
            // The disk store serves the same persisted entries the index
            // holds in memory, through the same generic query core —
            // results are bit-identical.
            assert_eq!(got, want, "single-source from {u:?} diverged");
        }
        assert!(store.single_source(&g, NodeId(9999)).is_err());
    }

    #[test]
    fn disk_single_source_with_reuses_workspace() {
        let (g, _idx, store) = setup("ss_ws");
        let mut ws = SingleSourceWorkspace::new();
        let mut out = Vec::new();
        store
            .single_source_with(&g, &mut ws, NodeId(3), &mut out)
            .unwrap();
        let first = out.clone();
        store
            .single_source_with(&g, &mut ws, NodeId(3), &mut out)
            .unwrap();
        assert_eq!(first, out, "workspace reuse changed the answer");
    }

    #[test]
    fn buffered_store_matches_unbuffered() {
        let (g, _idx, store) = setup("buffered");
        let buf = BufferedDiskStore::new(&store, 100_000);
        for (u, v) in [(0u32, 1u32), (5, 80), (42, 42), (149, 0)] {
            let got = buf.single_pair(&g, NodeId(u), NodeId(v)).unwrap();
            let want = store.single_pair(&g, NodeId(u), NodeId(v)).unwrap();
            assert_eq!(got, want, "({u},{v})");
        }
        // Algorithm 6 agrees too.
        let got = buf.single_source(&g, NodeId(7)).unwrap();
        let want = store.single_source(&g, NodeId(7)).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn buffered_store_over_compressed_file_matches_raw() {
        let (g, idx, store) = setup("buffered_v2");
        let v2 = DiskHpStore::create_compressed(
            &idx,
            tmp("buffered_v2_blocks"),
            &crate::codec::CompressOptions {
                block_entries: 32,
                quantize_values: false,
            },
        )
        .unwrap();
        let buf = BufferedDiskStore::new(&v2, 100_000);
        for (u, v) in [(0u32, 1u32), (5, 80), (42, 42), (149, 0), (5, 80)] {
            assert_eq!(
                buf.single_pair(&g, NodeId(u), NodeId(v)).unwrap(),
                store.single_pair(&g, NodeId(u), NodeId(v)).unwrap(),
                "({u},{v})"
            );
        }
        assert_eq!(
            buf.single_source(&g, NodeId(7)).unwrap(),
            store.single_source(&g, NodeId(7)).unwrap()
        );
        assert!(buf.stats().hits > 0);
    }

    #[test]
    fn buffer_hits_on_repeated_nodes() {
        let (g, _idx, store) = setup("hits");
        let buf = BufferedDiskStore::new(&store, 100_000);
        buf.single_pair(&g, NodeId(3), NodeId(4)).unwrap(); // 2 misses
        buf.single_pair(&g, NodeId(3), NodeId(5)).unwrap(); // 1 hit, 1 miss
        buf.single_pair(&g, NodeId(4), NodeId(5)).unwrap(); // 2 hits
        let s = buf.stats();
        assert_eq!(s.misses, 3);
        assert_eq!(s.hits, 3);
    }

    #[test]
    fn tiny_budget_evicts_but_stays_correct() {
        let (g, _idx, store) = setup("tiny");
        let buf = BufferedDiskStore::new(&store, 1);
        let mut reference = Vec::new();
        for (u, v) in [(0u32, 1u32), (2, 3), (0, 1), (4, 5)] {
            let got = buf.single_pair(&g, NodeId(u), NodeId(v)).unwrap();
            reference.push((u, v, got));
        }
        assert!(buf.stats().evictions > 0, "budget of 1 entry must evict");
        for (u, v, want) in reference {
            let again = store.single_pair(&g, NodeId(u), NodeId(v)).unwrap();
            assert_eq!(again, want, "({u},{v})");
        }
    }

    #[test]
    fn tinylfu_buffer_keeps_hot_node_through_cold_scan() {
        let (_g, _idx, store) = setup("tinylfu");
        let hot = NodeId(0);
        let mut out = Vec::new();
        store.read_entries(hot, &mut out).unwrap();
        // Budget fits the hot hub plus a little churn room.
        let budget = out.len() * 2;
        let run = |buf: &BufferedDiskStore| {
            let mut out = Vec::new();
            for _ in 0..10 {
                buf.load_into(hot, &mut out).unwrap();
            }
            // One-touch cold scan over every other node.
            for v in 1..150u32 {
                buf.load_into(NodeId(v), &mut out).unwrap();
            }
            let before = buf.stats().hits;
            buf.load_into(hot, &mut out).unwrap();
            buf.stats().hits > before // was the hub still resident?
        };
        let lru = BufferedDiskStore::new(&store, budget);
        let tiny = BufferedDiskStore::with_admission(&store, budget, Admission::TinyLfu);
        assert!(!run(&lru), "LRU should have evicted the hub in the scan");
        assert!(run(&tiny), "TinyLFU evicted the frequently-used hub");
    }

    #[test]
    fn truncated_file_surfaces_io_error() {
        let g = two_cliques_bridge(5);
        let idx = SlingIndex::build(&g, &SlingConfig::from_epsilon(C, 0.1).with_seed(5)).unwrap();
        let path = tmp("trunc");
        let store = DiskHpStore::create(&idx, &path).unwrap();
        // Chop the file behind the store's back.
        let len = std::fs::metadata(&path).unwrap().len();
        let file = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(len / 2).unwrap();
        // Some node's entries now fall past EOF.
        let mut failed = false;
        for v in g.nodes() {
            if store.single_pair(&g, v, NodeId(0)).is_err() {
                failed = true;
            }
        }
        assert!(failed, "no query noticed the truncated entry file");
    }
}
