//! Buffered query front-end for the disk-resident HP store.
//!
//! §5.4 notes SLING "can efficiently process queries even when its index
//! structure does not fit in the main memory": each query touches `O(1/ε)`
//! entries, i.e. a constant number of positioned reads. This module adds
//! the two pieces a production deployment of that mode wants:
//!
//! * [`BufferedDiskStore`] — an LRU buffer of decoded per-node entry
//!   lists in front of [`DiskHpStore`], bounded by a total entry budget
//!   (the analogue of a database buffer pool, with per-node granularity
//!   because `H(v)` is the store's natural page).
//! * Single-source queries (Algorithm 6) straight off the disk store —
//!   only `H(u)` is read from disk; the propagation works entirely on the
//!   in-memory graph and correction factors.

use sling_graph::{DiGraph, FxHashMap, NodeId};

use crate::error::SlingError;
use crate::hp::HpEntry;
use crate::out_of_core::DiskHpStore;
use crate::single_pair::merge_intersect;
use crate::single_source::SingleSourceWorkspace;
use crate::two_hop::TwoHopScratch;

impl DiskHpStore {
    /// Single-source query (Algorithm 6) against disk-resident entries:
    /// one positioned read for `H(u)`, then in-memory propagation.
    pub fn single_source(&self, graph: &DiGraph, u: NodeId) -> Result<Vec<f64>, SlingError> {
        if u.index() >= self.num_nodes() {
            return Err(SlingError::NodeOutOfRange {
                node: u.0,
                n: self.num_nodes() as u32,
            });
        }
        let mut scratch = TwoHopScratch::default();
        let mut entries = Vec::new();
        self.effective(graph, u, &mut scratch, &mut entries)?;

        let n = self.num_nodes();
        let mut out = vec![0.0; n];
        let mut ws = SingleSourceWorkspace::new();
        ws.ensure(n);
        let sqrt_c = self.config.sqrt_c();
        let theta = self.config.theta;
        let mut lo = 0usize;
        while lo < entries.len() {
            let step = entries[lo].step;
            let mut hi = lo;
            while hi < entries.len() && entries[hi].step == step {
                hi += 1;
            }
            for e in &entries[lo..hi] {
                let k = e.node.index();
                ws.seed(k, e.value * self.d[k]);
            }
            let threshold = sqrt_c.powi(step as i32) * theta;
            ws.propagate(graph, sqrt_c, threshold, step);
            ws.drain_into(&mut out);
            lo = hi;
        }
        for s in out.iter_mut() {
            *s = s.clamp(0.0, 1.0);
        }
        if self.config.exact_diagonal {
            out[u.index()] = 1.0;
        }
        Ok(out)
    }
}

/// Buffer-pool statistics of a [`BufferedDiskStore`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Entry lists served from the buffer.
    pub hits: u64,
    /// Entry lists read from disk.
    pub misses: u64,
    /// Lists evicted to stay within the entry budget.
    pub evictions: u64,
}

/// LRU buffer of decoded `H(v)` lists in front of a [`DiskHpStore`].
///
/// Bounded by *entries*, not node count, because `|H(v)|` varies by
/// orders of magnitude between hub and leaf nodes. Single oversized lists
/// larger than the whole budget are still admitted alone (scan-resistant
/// enough for the SimRank workload, where reuse is node-driven).
pub struct BufferedDiskStore<'s> {
    store: &'s DiskHpStore,
    budget_entries: usize,
    cached_entries: usize,
    lists: FxHashMap<u32, Vec<HpEntry>>,
    /// LRU order, most-recent last. `O(n)` worst-case maintenance is fine
    /// because the list length is bounded by the node count with small
    /// constants; a production system at larger scale would reuse the
    /// intrusive list of [`crate::cache`].
    order: Vec<u32>,
    stats: BufferStats,
    scratch: TwoHopScratch,
}

impl<'s> BufferedDiskStore<'s> {
    /// Buffer at most `budget_entries` decoded entries (≥ 1).
    pub fn new(store: &'s DiskHpStore, budget_entries: usize) -> Self {
        BufferedDiskStore {
            store,
            budget_entries: budget_entries.max(1),
            cached_entries: 0,
            lists: FxHashMap::default(),
            order: Vec::new(),
            stats: BufferStats::default(),
            scratch: TwoHopScratch::default(),
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> BufferStats {
        self.stats
    }

    /// Decoded entries currently buffered.
    pub fn buffered_entries(&self) -> usize {
        self.cached_entries
    }

    fn touch(&mut self, v: u32) {
        if let Some(pos) = self.order.iter().position(|&x| x == v) {
            self.order.remove(pos);
        }
        self.order.push(v);
    }

    fn load(&mut self, graph: &DiGraph, v: NodeId) -> Result<(), SlingError> {
        if self.lists.contains_key(&v.0) {
            self.stats.hits += 1;
            self.touch(v.0);
            return Ok(());
        }
        self.stats.misses += 1;
        let mut entries = Vec::new();
        self.store.effective(graph, v, &mut self.scratch, &mut entries)?;
        // Evict least-recently-used lists until the new one fits.
        while self.cached_entries + entries.len() > self.budget_entries && !self.order.is_empty()
        {
            let victim = self.order.remove(0);
            if let Some(old) = self.lists.remove(&victim) {
                self.cached_entries -= old.len();
                self.stats.evictions += 1;
            }
        }
        self.cached_entries += entries.len();
        self.lists.insert(v.0, entries);
        self.order.push(v.0);
        Ok(())
    }

    /// Buffered single-pair query; identical results to
    /// [`DiskHpStore::single_pair`].
    pub fn single_pair(
        &mut self,
        graph: &DiGraph,
        u: NodeId,
        v: NodeId,
    ) -> Result<f64, SlingError> {
        let n = self.store.num_nodes() as u32;
        for node in [u, v] {
            if node.0 >= n {
                return Err(SlingError::NodeOutOfRange { node: node.0, n });
            }
        }
        if u == v && self.store.config.exact_diagonal {
            return Ok(1.0);
        }
        // Copy u's list out before loading v: with a small budget, the
        // second load may evict the first.
        self.load(graph, u)?;
        let a: Vec<HpEntry> = self.lists[&u.0].clone();
        self.load(graph, v)?;
        let b = &self.lists[&v.0];
        Ok(merge_intersect(&a, b, &self.store.d).clamp(0.0, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SlingConfig;
    use crate::index::SlingIndex;
    use sling_graph::generators::{barabasi_albert, two_cliques_bridge};
    use std::path::PathBuf;

    const C: f64 = 0.6;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sling_disk_query_{tag}_{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("hp.bin")
    }

    fn setup(tag: &str) -> (DiGraph, SlingIndex, DiskHpStore) {
        let g = barabasi_albert(150, 3, 7).unwrap();
        let idx = SlingIndex::build(&g, &SlingConfig::from_epsilon(C, 0.1).with_seed(5)).unwrap();
        let store = DiskHpStore::create(&idx, tmp(tag)).unwrap();
        (g, idx, store)
    }

    #[test]
    fn disk_single_source_matches_in_memory() {
        let (g, idx, store) = setup("ss");
        for u in [NodeId(0), NodeId(42), NodeId(149)] {
            let got = store.single_source(&g, u).unwrap();
            let want = idx.single_source(&g, u);
            // The disk store has no enhancement marks; compare against an
            // index whose entries match what was persisted. The setup
            // config leaves enhancement at its default, so assert per the
            // shared guarantee instead of bit equality.
            for v in g.nodes() {
                let diff = (got[v.index()] - want[v.index()]).abs();
                assert!(diff <= 0.1, "({u:?},{v:?}): {diff}");
            }
        }
        assert!(store.single_source(&g, NodeId(9999)).is_err());
    }

    #[test]
    fn buffered_store_matches_unbuffered() {
        let (g, _idx, store) = setup("buffered");
        let mut buf = BufferedDiskStore::new(&store, 100_000);
        for (u, v) in [(0u32, 1u32), (5, 80), (42, 42), (149, 0)] {
            let got = buf.single_pair(&g, NodeId(u), NodeId(v)).unwrap();
            let want = store.single_pair(&g, NodeId(u), NodeId(v)).unwrap();
            assert_eq!(got, want, "({u},{v})");
        }
    }

    #[test]
    fn buffer_hits_on_repeated_nodes() {
        let (g, _idx, store) = setup("hits");
        let mut buf = BufferedDiskStore::new(&store, 100_000);
        buf.single_pair(&g, NodeId(3), NodeId(4)).unwrap(); // 2 misses
        buf.single_pair(&g, NodeId(3), NodeId(5)).unwrap(); // 1 hit, 1 miss
        buf.single_pair(&g, NodeId(4), NodeId(5)).unwrap(); // 2 hits
        let s = buf.stats();
        assert_eq!(s.misses, 3);
        assert_eq!(s.hits, 3);
    }

    #[test]
    fn tiny_budget_evicts_but_stays_correct() {
        let (g, _idx, store) = setup("tiny");
        let mut buf = BufferedDiskStore::new(&store, 1);
        let mut reference = Vec::new();
        for (u, v) in [(0u32, 1u32), (2, 3), (0, 1), (4, 5)] {
            let got = buf.single_pair(&g, NodeId(u), NodeId(v)).unwrap();
            reference.push((u, v, got));
        }
        assert!(buf.stats().evictions > 0, "budget of 1 entry must evict");
        for (u, v, want) in reference {
            let again = store.single_pair(&g, NodeId(u), NodeId(v)).unwrap();
            assert_eq!(again, want, "({u},{v})");
        }
    }

    #[test]
    fn truncated_file_surfaces_io_error() {
        let g = two_cliques_bridge(5);
        let idx = SlingIndex::build(&g, &SlingConfig::from_epsilon(C, 0.1).with_seed(5)).unwrap();
        let path = tmp("trunc");
        let store = DiskHpStore::create(&idx, &path).unwrap();
        // Chop the file behind the store's back.
        let len = std::fs::metadata(&path).unwrap().len();
        let file = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(len / 2).unwrap();
        // Some node's entries now fall past EOF.
        let mut failed = false;
        for v in g.nodes() {
            if store.single_pair(&g, v, NodeId(0)).is_err() {
                failed = true;
            }
        }
        assert!(failed, "no query noticed the truncated entry file");
    }
}
