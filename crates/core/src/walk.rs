//! √c-walk machinery (§4.1 of the paper).
//!
//! A √c-walk from `u` is a reverse random walk that, at every step, halts
//! with probability `1 − √c` and otherwise moves to a uniformly random
//! in-neighbor of the current node (halting if there is none). Lemma 3:
//! `s(u, v)` equals the probability that independent √c-walks from `u` and
//! `v` *meet* — occupy the same node at the same step index.
//!
//! The expected walk length is `1/(1 − √c)` (≈ 4.4 for `c = 0.6`), so
//! unlike the classic Monte-Carlo formulation no truncation is needed.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use sling_graph::{DiGraph, NodeId};

/// Sampler for √c-walks over a fixed graph.
///
/// Cheap to construct; holds only the decay parameters and a borrowed
/// graph. Each sampling method takes the RNG explicitly so callers control
/// determinism and so per-thread RNGs need no synchronization.
#[derive(Clone, Copy, Debug)]
pub struct WalkEngine<'g> {
    graph: &'g DiGraph,
    sqrt_c: f64,
}

impl<'g> WalkEngine<'g> {
    /// New engine for decay factor `c`.
    pub fn new(graph: &'g DiGraph, c: f64) -> Self {
        assert!(c > 0.0 && c < 1.0, "decay factor must lie in (0,1)");
        WalkEngine {
            graph,
            sqrt_c: c.sqrt(),
        }
    }

    /// `√c`.
    #[inline]
    pub fn sqrt_c(&self) -> f64 {
        self.sqrt_c
    }

    /// One transition: from `v`, halt (`None`) with probability `1 − √c`
    /// or when `v` has no in-neighbors, else step to a uniform random
    /// in-neighbor.
    #[inline]
    pub fn step(&self, rng: &mut SmallRng, v: NodeId) -> Option<NodeId> {
        if rng.random::<f64>() >= self.sqrt_c {
            return None;
        }
        let inn = self.graph.in_neighbors(v);
        if inn.is_empty() {
            None
        } else {
            Some(inn[rng.random_range(0..inn.len())])
        }
    }

    /// Materialize a full √c-walk from `start` (index 0 = `start`).
    pub fn sample_walk(&self, rng: &mut SmallRng, start: NodeId) -> Vec<NodeId> {
        let mut walk = vec![start];
        let mut cur = start;
        while let Some(next) = self.step(rng, cur) {
            walk.push(next);
            cur = next;
        }
        walk
    }

    /// Simulate two independent √c-walks from `u` and `v` in lockstep and
    /// report whether they meet (Lemma 3 event). Never materializes the
    /// walks; terminates as soon as either walk halts.
    pub fn walks_meet(&self, rng: &mut SmallRng, u: NodeId, v: NodeId) -> bool {
        if u == v {
            return true; // both walks occupy the same 0-th step
        }
        let (mut a, mut b) = (u, v);
        loop {
            // Both walks must survive the step for a later meeting to be
            // possible: once one halts, it has no ℓ-th step any more.
            let na = self.step(rng, a);
            let nb = self.step(rng, b);
            match (na, nb) {
                (Some(x), Some(y)) => {
                    if x == y {
                        return true;
                    }
                    a = x;
                    b = y;
                }
                _ => return false,
            }
        }
    }

    /// Monte-Carlo estimate of `s(u, v)` from `pairs` walk pairs — the
    /// "revised Monte Carlo" of §4.1. Used by tests to cross-check the
    /// deterministic machinery, and by the `mc-sqrt` baseline.
    pub fn estimate_simrank(&self, rng: &mut SmallRng, u: NodeId, v: NodeId, pairs: u32) -> f64 {
        if u == v {
            return 1.0;
        }
        let mut hits = 0u32;
        for _ in 0..pairs {
            if self.walks_meet(rng, u, v) {
                hits += 1;
            }
        }
        hits as f64 / pairs as f64
    }
}

/// Deterministic per-task RNG: hashes the build seed with a task id so
/// parallel workers draw independent streams regardless of scheduling.
pub fn task_rng(seed: u64, task: u64) -> SmallRng {
    // SplitMix64 over (seed, task) — standard stream-splitting trick.
    let mut z = seed ^ task.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    SmallRng::seed_from_u64(z ^ (z >> 31))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sling_graph::generators::{complete_graph, cycle_graph, star_graph};

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(12345)
    }

    #[test]
    fn walk_from_dangling_node_halts_immediately() {
        let g = star_graph(5); // leaves have no in-neighbors
        let eng = WalkEngine::new(&g, 0.6);
        let mut r = rng();
        for _ in 0..50 {
            let w = eng.sample_walk(&mut r, NodeId(1));
            assert_eq!(w, vec![NodeId(1)]);
        }
    }

    #[test]
    fn walk_length_distribution_is_geometric() {
        // On a cycle every node has an in-neighbor, so the walk length is
        // Geometric(1 - sqrt(c)) with mean sqrt(c)/(1-sqrt(c)) extra steps.
        let g = cycle_graph(10);
        let c: f64 = 0.6;
        let eng = WalkEngine::new(&g, c);
        let mut r = rng();
        let trials = 20_000;
        let total: usize = (0..trials)
            .map(|_| eng.sample_walk(&mut r, NodeId(0)).len() - 1)
            .sum();
        let mean = total as f64 / trials as f64;
        let expected = c.sqrt() / (1.0 - c.sqrt());
        assert!(
            (mean - expected).abs() < 0.1,
            "mean {mean}, expected {expected}"
        );
    }

    #[test]
    fn same_node_walks_always_meet() {
        let g = cycle_graph(4);
        let eng = WalkEngine::new(&g, 0.6);
        let mut r = rng();
        assert!(eng.walks_meet(&mut r, NodeId(2), NodeId(2)));
    }

    #[test]
    fn cycle_walks_from_distinct_nodes_never_meet() {
        // On a directed cycle both walks move deterministically in
        // lockstep, preserving their (nonzero) separation forever.
        let g = cycle_graph(6);
        let eng = WalkEngine::new(&g, 0.8);
        let mut r = rng();
        for _ in 0..200 {
            assert!(!eng.walks_meet(&mut r, NodeId(0), NodeId(3)));
        }
    }

    #[test]
    fn estimate_matches_closed_form_on_complete_graph() {
        // On K_n (symmetric complete digraph) all off-diagonal scores are
        // equal; Eq. (1) over the (n-1)^2 in-neighbor pairs (n-2 of which
        // are identical nodes with s = 1) gives the fixed point
        // s = c(n-2) / ((1-c)(n-1)^2 + c(n-2)).
        let n = 5;
        let c: f64 = 0.6;
        let g = complete_graph(n);
        let closed =
            c * (n - 2) as f64 / ((1.0 - c) * ((n - 1) * (n - 1)) as f64 + c * (n - 2) as f64);
        let eng = WalkEngine::new(&g, c);
        let mut r = rng();
        let est = eng.estimate_simrank(&mut r, NodeId(0), NodeId(1), 60_000);
        assert!(
            (est - closed).abs() < 0.01,
            "estimate {est}, closed form {closed}"
        );
    }

    #[test]
    fn estimate_is_one_on_diagonal() {
        let g = cycle_graph(3);
        let eng = WalkEngine::new(&g, 0.6);
        let mut r = rng();
        assert_eq!(eng.estimate_simrank(&mut r, NodeId(1), NodeId(1), 10), 1.0);
    }

    #[test]
    fn task_rng_streams_are_independent() {
        let a: Vec<u64> = {
            let mut r = task_rng(7, 0);
            (0..8).map(|_| r.random()).collect()
        };
        let b: Vec<u64> = {
            let mut r = task_rng(7, 1);
            (0..8).map(|_| r.random()).collect()
        };
        assert_ne!(a, b);
        // Same (seed, task) reproduces the stream.
        let a2: Vec<u64> = {
            let mut r = task_rng(7, 0);
            (0..8).map(|_| r.random()).collect()
        };
        assert_eq!(a, a2);
    }

    #[test]
    #[should_panic]
    fn rejects_bad_decay() {
        let g = cycle_graph(3);
        let _ = WalkEngine::new(&g, 1.0);
    }
}
