//! Algorithm 2 — deterministic local-update construction of the
//! approximate hitting-probability sets.
//!
//! For each node `v_k`, a breadth-first propagation over **out**-edges
//! computes, level by level, the approximate probabilities
//! `h̃⁽ℓ⁾(v_i, v_k)` that a √c-walk *from* `v_i` hits `v_k` at step ℓ,
//! using the recurrence (Eq. 16)
//!
//! ```text
//! h⁽ℓ⁺¹⁾(v_i, v_k) = (√c / |I(v_i)|) · Σ_{v_x ∈ I(v_i)} h⁽ℓ⁾(v_x, v_k).
//! ```
//!
//! Entries that fall to `≤ θ` are pruned (neither retained nor
//! propagated), which gives the one-sided Lemma 7 guarantee
//!
//! ```text
//! 0 ≥ h̃⁽ℓ⁾ − h⁽ℓ⁾ ≥ −(1 − (√c)ℓ)/(1 − √c) · θ
//! ```
//!
//! and bounds the work at `O(m/θ)` and the output at `O(1/θ)` entries per
//! node.

use sling_graph::{DiGraph, FxHashMap, NodeId};

/// One retained triple: `h̃⁽ˢᵗᵉᵖ⁾(owner, target) = value`, produced by the
/// traversal started at `target`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HpTriple {
    /// The node whose `H(owner)` set this entry belongs to.
    pub owner: NodeId,
    /// Step ℓ.
    pub step: u16,
    /// The traversal root `v_k` (the node being hit).
    pub target: NodeId,
    /// Approximate hitting probability, always `> θ`.
    pub value: f64,
}

/// Hard cap on the level count. Values at level ℓ are at most `(√c)^ℓ`,
/// so the loop stops naturally once `(√c)^ℓ ≤ θ`; the cap only guards
/// against pathological `θ ≈ 0` configurations.
pub const MAX_LEVELS: u16 = 256;

/// Run Algorithm 2's traversal from a single target `v_k`, invoking
/// `emit` for every retained entry. Entries for a fixed level are emitted
/// in ascending owner order (maps are drained through a sorted buffer),
/// making the overall emission order deterministic.
pub fn reverse_hp_from<F>(graph: &DiGraph, sqrt_c: f64, theta: f64, vk: NodeId, emit: &mut F)
where
    F: FnMut(HpTriple),
{
    debug_assert!(theta > 0.0);
    let mut current: FxHashMap<u32, f64> = FxHashMap::default();
    current.insert(vk.0, 1.0);
    let mut next: FxHashMap<u32, f64> = FxHashMap::default();
    let mut sorted: Vec<(u32, f64)> = Vec::new();

    for level in 0..MAX_LEVELS {
        if current.is_empty() {
            break;
        }
        sorted.clear();
        sorted.extend(current.iter().map(|(&k, &v)| (k, v)));
        sorted.sort_unstable_by_key(|&(k, _)| k);
        for &(owner, value) in &sorted {
            if value <= theta {
                continue; // pruned: not retained, not propagated
            }
            emit(HpTriple {
                owner: NodeId(owner),
                step: level,
                target: vk,
                value,
            });
            for &out in graph.out_neighbors(NodeId(owner)) {
                let contrib = sqrt_c * value / graph.in_degree(out) as f64;
                *next.entry(out.0).or_insert(0.0) += contrib;
            }
        }
        current.clear();
        std::mem::swap(&mut current, &mut next);
    }
}

/// Run Algorithm 2 for every target node, emitting all retained triples.
/// This is the serial index-construction core; the parallel and
/// out-of-core builders shard the same per-target routine.
pub fn reverse_hp_all<F>(graph: &DiGraph, sqrt_c: f64, theta: f64, emit: &mut F)
where
    F: FnMut(HpTriple),
{
    for vk in graph.nodes() {
        reverse_hp_from(graph, sqrt_c, theta, vk, emit);
    }
}

/// Collect the triples of a single traversal (testing convenience).
pub fn collect_from(graph: &DiGraph, sqrt_c: f64, theta: f64, vk: NodeId) -> Vec<HpTriple> {
    let mut out = Vec::new();
    reverse_hp_from(graph, sqrt_c, theta, vk, &mut |t| out.push(t));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::exact_hp_to_target;
    use sling_graph::generators::{complete_graph, cycle_graph, star_graph, two_cliques_bridge};
    use sling_graph::DiGraph;

    const C: f64 = 0.6;

    #[test]
    fn cycle_hits_walk_backwards() {
        // In a cycle 0->1->...->n-1->0, a √c-walk from v moves to v-1,
        // v-2, ...; hitting v_k at step ℓ has probability (√c)^ℓ iff
        // k ≡ v - ℓ (mod n).
        let n = 5u32;
        let g = cycle_graph(n as usize);
        let theta = 0.01;
        let sc = C.sqrt();
        let triples = collect_from(&g, sc, theta, NodeId(0));
        for t in &triples {
            let expected_owner = (t.step as u32) % n;
            assert_eq!(t.owner.0, expected_owner);
            assert!((t.value - sc.powi(t.step as i32)).abs() < 1e-12);
        }
        // Levels continue until (√c)^ℓ <= θ.
        let max_level = triples.iter().map(|t| t.step).max().unwrap();
        assert!(sc.powi(max_level as i32) > theta);
        assert!(sc.powi(max_level as i32 + 1) <= theta);
    }

    #[test]
    fn star_hub_traversal() {
        // Star: leaves point at hub 0. Out-neighbors of a leaf = {0};
        // I(0) = all q leaves. Traversal from leaf j: level 0 (j, 1.0);
        // level 1: hub gets √c/q; level 2: nothing (hub has no out-edges).
        let q = 4usize;
        let g = star_graph(q + 1);
        let triples = collect_from(&g, C.sqrt(), 0.001, NodeId(1));
        assert_eq!(triples.len(), 2);
        assert_eq!(triples[0].owner, NodeId(1));
        assert_eq!(triples[0].step, 0);
        assert_eq!(triples[1].owner, NodeId(0));
        assert_eq!(triples[1].step, 1);
        assert!((triples[1].value - C.sqrt() / q as f64).abs() < 1e-12);
    }

    /// Lemma 7: one-sided error, bounded by (1-(√c)^ℓ)/(1-√c)·θ.
    fn assert_lemma7(g: &DiGraph, theta: f64, vk: NodeId) {
        let sc = C.sqrt();
        let triples = collect_from(g, sc, theta, vk);
        let max_step = triples.iter().map(|t| t.step).max().unwrap_or(0).max(8);
        let exact = exact_hp_to_target(g, C, vk, max_step);
        for t in &triples {
            let h = exact[t.step as usize][t.owner.index()];
            let err = t.value - h;
            let bound = (1.0 - sc.powi(t.step as i32)) / (1.0 - sc) * theta;
            assert!(
                err <= 1e-12,
                "h̃ must underestimate: owner {:?} step {} err {err}",
                t.owner,
                t.step
            );
            assert!(
                err >= -bound - 1e-12,
                "err {err} below Lemma 7 bound {bound} at step {}",
                t.step
            );
        }
    }

    #[test]
    fn lemma7_bound_on_assorted_graphs() {
        assert_lemma7(&two_cliques_bridge(4), 0.02, NodeId(0));
        assert_lemma7(&complete_graph(5), 0.01, NodeId(2));
        assert_lemma7(&cycle_graph(6), 0.05, NodeId(3));
        assert_lemma7(&star_graph(6), 0.01, NodeId(0));
    }

    #[test]
    fn retained_values_exceed_theta() {
        let g = two_cliques_bridge(5);
        let theta = 0.01;
        for t in collect_from(&g, C.sqrt(), theta, NodeId(2)) {
            assert!(t.value > theta);
        }
    }

    #[test]
    fn per_node_output_bounded_by_observation_1() {
        // Σ_owner h̃(ℓ)(owner, vk) ≤ Σ_owner h(ℓ)(owner, vk) ... the bound
        // |entries at level ℓ| ≤ (√c)^ℓ/θ follows; summing levels gives
        // O(1/θ) per traversal. Verify the level-wise bound directly.
        let g = two_cliques_bridge(6);
        let theta = 0.005;
        let sc = C.sqrt();
        let triples = collect_from(&g, sc, theta, NodeId(0));
        let max_step = triples.iter().map(|t| t.step).max().unwrap();
        for l in 0..=max_step {
            let count = triples.iter().filter(|t| t.step == l).count();
            let cap = (sc.powi(l as i32) / theta).floor() as usize;
            assert!(count <= cap.max(1), "level {l}: {count} > {cap}");
        }
    }

    #[test]
    fn level_sums_respect_total_probability() {
        // Σ_owner h̃(ℓ)(owner, ·) over all targets equals the probability
        // mass of walks alive at step ℓ, ≤ n·(√c)^ℓ in aggregate.
        let g = complete_graph(5);
        let sc = C.sqrt();
        let mut level_sum = vec![0.0f64; 32];
        let mut emit = |t: HpTriple| level_sum[t.step as usize] += t.value;
        reverse_hp_all(&g, sc, 0.001, &mut emit);
        let n = g.num_nodes() as f64;
        for (l, &s) in level_sum.iter().enumerate() {
            assert!(
                s <= n * sc.powi(l as i32) + 1e-9,
                "level {l} mass {s} exceeds n(√c)^ℓ"
            );
        }
    }

    #[test]
    fn emission_order_is_deterministic() {
        let g = two_cliques_bridge(4);
        let a = collect_from(&g, C.sqrt(), 0.01, NodeId(1));
        let b = collect_from(&g, C.sqrt(), 0.01, NodeId(1));
        assert_eq!(a, b);
    }
}
