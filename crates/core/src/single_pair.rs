//! Algorithm 3 — single-pair SimRank queries in `O(1/ε)`.
//!
//! With the effective entry lists `H*(u)` and `H*(v)` sorted by
//! `(step, node)`, the Eq. (17) estimator
//!
//! ```text
//! s̃(u, v) = Σ_{(ℓ,k)} h̃⁽ℓ⁾(u, k) · d̃_k · h̃⁽ℓ⁾(v, k)
//! ```
//!
//! is a sorted-merge intersection. Two kernels implement it:
//!
//! * the classic **linear merge** — one pass over both lists,
//!   `O(|H*(u)| + |H*(v)|)`;
//! * a **galloping merge** for skewed pairs (list lengths ≥
//!   [`GALLOP_RATIO`]× apart): walk the short list and exponential-search
//!   the long one, `O(|short| · log |long|)`. Hub-versus-leaf pairs are
//!   the dominant shape on power-law graphs, where the hub list dwarfs
//!   the leaf list and a linear pass wastes almost every comparison.
//!
//! Both kernels visit matching keys in the same ascending order and
//! accumulate with the same expression, so their sums are **bit
//! identical** — the dispatch on skew never changes an answer.
//!
//! The streaming entry point ([`single_pair_core`]) consumes both lists
//! directly from the storage backend via [`crate::store::EntryAccess`] —
//! zero-copy for the arena and mmap backends. What a list needs is
//! classified by [`EngineRef::restore_kind`]: §5.3-marked nodes
//! materialize the full rewritten list into the [`QueryWorkspace`];
//! §5.2-reduced (unmarked) nodes copy only a recomputed steps ≤ 2 head
//! and stream their stored steps ≥ 3 tail in place
//! ([`crate::store::TwoSegRun`]); everything else streams whole. The
//! materializing reference path is kept as
//! [`single_pair_materialized_core`] for benchmarks and equivalence
//! tests.

use sling_graph::{DiGraph, NodeId};

use crate::error::SlingError;
#[cfg(test)]
use crate::hp::HpEntry;
use crate::index::{
    effective_entries_into, resolve_restored, resolve_stream_source, Buf, QueryWorkspace,
    RestoredList, SlingIndex,
};
use crate::obs::{self, KernelCounters};
use crate::store::{
    with_source, EngineRef, EntryAccess, EntryRun, HpStore, RestoreKind, RunSource,
};

/// Length skew at which the merge switches from the linear pass to
/// galloping over the longer list.
pub(crate) const GALLOP_RATIO: usize = 8;

/// Merge-intersect two `(step, node)`-sorted entry lists against the
/// correction factors (slice convenience over [`merge_intersect_runs`],
/// used by unit tests).
#[cfg(test)]
pub(crate) fn merge_intersect(a: &[HpEntry], b: &[HpEntry], d: &[f64]) -> f64 {
    merge_intersect_runs(a, b, d)
}

/// Skew-dispatching merge over any two entry-run shapes.
pub(crate) fn merge_intersect_runs<A: EntryRun, B: EntryRun>(a: A, b: B, d: &[f64]) -> f64 {
    let (an, bn) = (a.len(), b.len());
    if an.saturating_mul(GALLOP_RATIO) <= bn {
        KernelCounters::bump(&obs::KERNEL.merge_gallop);
        merge_gallop(a, b, d, true)
    } else if bn.saturating_mul(GALLOP_RATIO) <= an {
        KernelCounters::bump(&obs::KERNEL.merge_gallop);
        merge_gallop(b, a, d, false)
    } else {
        KernelCounters::bump(&obs::KERNEL.merge_linear);
        merge_linear(a, b, d)
    }
}

/// The classic linear merge: one pass over both runs.
pub(crate) fn merge_linear<A: EntryRun, B: EntryRun>(a: A, b: B, d: &[f64]) -> f64 {
    let mut s = 0.0;
    let (mut i, mut j) = (0usize, 0usize);
    let (an, bn) = (a.len(), b.len());
    while i < an && j < bn {
        let (ka, kb) = (a.key(i), b.key(j));
        match ka.cmp(&kb) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                s += a.value(i) * d[ka.1 as usize] * b.value(j);
                i += 1;
                j += 1;
            }
        }
    }
    s
}

/// Galloping merge: iterate `short`, exponential-search forward in
/// `long`. `short_is_a` preserves the `value_a · d · value_b` operand
/// order of the linear merge so the float sum stays bit-identical.
fn merge_gallop<S: EntryRun, L: EntryRun>(short: S, long: L, d: &[f64], short_is_a: bool) -> f64 {
    let mut s = 0.0;
    let mut j = 0usize;
    let ln = long.len();
    for i in 0..short.len() {
        let key = short.key(i);
        j = lower_bound_from(&long, j, key);
        if j >= ln {
            break;
        }
        if long.key(j) == key {
            let (va, vb) = if short_is_a {
                (short.value(i), long.value(j))
            } else {
                (long.value(j), short.value(i))
            };
            s += va * d[key.1 as usize] * vb;
            j += 1;
        }
    }
    s
}

/// First index `>= from` whose key is `>= key` in the sorted run `r`:
/// exponential probe to bracket the gap, then binary search inside it —
/// `O(log gap)` instead of `O(gap)`.
fn lower_bound_from<R: EntryRun>(r: &R, from: usize, key: (u16, u32)) -> usize {
    let n = r.len();
    if from >= n || r.key(from) >= key {
        return from;
    }
    // Invariant: every index < prev has a key < `key`; probe is the next
    // untested index.
    let mut prev = from + 1;
    let mut probe = from + 1;
    let mut step = 1usize;
    loop {
        if probe >= n {
            probe = n;
            break;
        }
        if r.key(probe) >= key {
            break;
        }
        prev = probe + 1;
        probe += step;
        step <<= 1;
    }
    let (mut lo, mut hi) = (prev, probe);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if r.key(mid) < key {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Algorithm 3 over any storage backend, **streaming**: both effective
/// entry lists are consumed directly from backend-owned storage
/// ([`crate::store::HpStore::entries_ref`]); a list is copied into the
/// workspace only when the §5.2 two-hop restore or §5.3 mark expansion
/// rewrites it. Answers are bit-identical to
/// [`single_pair_materialized_core`] on every backend.
pub(crate) fn single_pair_core<S: HpStore>(
    e: EngineRef<'_, S>,
    graph: &DiGraph,
    ws: &mut QueryWorkspace,
    u: NodeId,
    v: NodeId,
) -> Result<f64, SlingError> {
    if u == v && e.config.exact_diagonal {
        return Ok(1.0);
        // Otherwise fall through: estimate s(v,v) from the index like any
        // pair.
    }
    let (ku, kv) = (e.restore_kind(u), e.restore_kind(v));
    // §5.3-marked endpoints materialize the whole effective list up
    // front (mark expansion may rewrite any step), and §5.2-reduced
    // endpoints do too when a [`RestoreCache`] is attached: a warm hub
    // is then one cache lookup and a contiguous-slice merge with zero
    // backend traffic, which beats re-walking the stored tail through
    // the block cache on every query. Both need the whole workspace, so
    // they run before the split-borrow below. Reduced endpoints on
    // cache-less engines stay `None` and stream two-segment instead —
    // there the full restore would copy the tail for a single use.
    let cached = e.restore_cache.is_some();
    let t_restore = ws.trace.timer();
    let ra = match ku {
        RestoreKind::None => None,
        RestoreKind::TwoHopOnly if !cached => None,
        _ => Some(resolve_restored(e, graph, u, ws, Buf::A)?),
    };
    let rb = match kv {
        RestoreKind::None => None,
        RestoreKind::TwoHopOnly if !cached => None,
        _ => Some(resolve_restored(e, graph, v, ws, Buf::B)?),
    };
    ws.trace.add_restore(t_restore);
    // Split-borrow the workspace: side A owns (buf_a, stored), side B
    // owns (buf_b, extras) — head buffer + tail scratch each — and the
    // two-hop scratch is reused sequentially.
    let QueryWorkspace {
        buf_a,
        buf_b,
        stored,
        extras,
        two_hop,
        ..
    } = ws;
    let t_fetch = ws.trace.timer();
    let sa = match ra {
        Some(RestoredList::Workspace) => RunSource::Whole(EntryAccess::Slice(buf_a)),
        Some(RestoredList::Shared(list)) => RunSource::Shared(list),
        None => resolve_stream_source(e, graph, u, ku, buf_a, stored, two_hop)?,
    };
    let sb = match rb {
        Some(RestoredList::Workspace) => RunSource::Whole(EntryAccess::Slice(buf_b)),
        Some(RestoredList::Shared(list)) => RunSource::Shared(list),
        None => resolve_stream_source(e, graph, v, kv, buf_b, extras, two_hop)?,
    };
    ws.trace.add_entry_fetch(t_fetch);
    let t_merge = ws.trace.timer();
    let s = with_source!(&sa, |run_a| with_source!(&sb, |run_b| {
        merge_intersect_runs(run_a, run_b, e.d)
    }));
    ws.trace.add_merge(t_merge);
    Ok(s.clamp(0.0, 1.0))
}

/// Algorithm 3 through the **materializing reference path**: both
/// effective lists copied into the workspace, linear merge — exactly the
/// pre-streaming kernel. Kept callable (see
/// [`crate::QueryEngine::single_pair_materialized_with`]) so benchmarks
/// can measure the zero-copy gap and tests can assert bit-equality.
pub(crate) fn single_pair_materialized_core<S: HpStore>(
    e: EngineRef<'_, S>,
    graph: &DiGraph,
    ws: &mut QueryWorkspace,
    u: NodeId,
    v: NodeId,
) -> Result<f64, SlingError> {
    if u == v && e.config.exact_diagonal {
        return Ok(1.0);
    }
    effective_entries_into(e, graph, u, ws, Buf::A)?;
    effective_entries_into(e, graph, v, ws, Buf::B)?;
    Ok(merge_linear(&ws.buf_a[..], &ws.buf_b[..], e.d).clamp(0.0, 1.0))
}

impl SlingIndex {
    /// Single-pair SimRank estimate `s̃(u, v)` (Algorithm 3), allocating a
    /// fresh workspace. For hot loops prefer
    /// [`SlingIndex::single_pair_with`].
    pub fn single_pair(&self, graph: &DiGraph, u: NodeId, v: NodeId) -> f64 {
        let mut ws = QueryWorkspace::new();
        self.single_pair_with(graph, &mut ws, u, v)
    }

    /// Single-pair query reusing caller-provided buffers; allocation-free
    /// after warm-up.
    ///
    /// # Panics
    /// Panics in debug builds if `u` or `v` is out of range; use
    /// [`SlingIndex::try_single_pair`] for checked access.
    pub fn single_pair_with(
        &self,
        graph: &DiGraph,
        ws: &mut QueryWorkspace,
        u: NodeId,
        v: NodeId,
    ) -> f64 {
        debug_assert_eq!(graph.num_nodes(), self.num_nodes, "wrong graph for index");
        single_pair_core(self.engine_ref(), graph, ws, u, v)
            .expect("in-memory HP store cannot fail")
    }

    /// Range-checked single-pair query.
    pub fn try_single_pair(
        &self,
        graph: &DiGraph,
        u: NodeId,
        v: NodeId,
    ) -> Result<f64, SlingError> {
        let n = self.num_nodes as u32;
        for node in [u, v] {
            if node.0 >= n {
                return Err(SlingError::NodeOutOfRange { node: node.0, n });
            }
        }
        Ok(self.single_pair(graph, u, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SlingConfig;
    use crate::reference::exact_simrank;
    use sling_graph::generators::{complete_graph, cycle_graph, star_graph, two_cliques_bridge};
    use sling_graph::DiGraph;

    const C: f64 = 0.6;

    fn build(g: &DiGraph, eps: f64) -> SlingIndex {
        SlingIndex::build(g, &SlingConfig::from_epsilon(C, eps).with_seed(77)).unwrap()
    }

    /// Every pair within ε of the power-method ground truth.
    fn assert_all_pairs_within_eps(g: &DiGraph, idx: &SlingIndex, eps: f64) {
        let truth = exact_simrank(g, C, 60);
        let mut ws = QueryWorkspace::new();
        let mut worst = 0.0f64;
        for u in g.nodes() {
            for v in g.nodes() {
                let est = idx.single_pair_with(g, &mut ws, u, v);
                let err = (est - truth[u.index()][v.index()]).abs();
                worst = worst.max(err);
            }
        }
        assert!(worst <= eps, "max error {worst} > eps {eps}");
    }

    #[test]
    fn within_eps_on_toy_graphs() {
        let eps = 0.05;
        for g in [
            cycle_graph(8),
            star_graph(6),
            complete_graph(5),
            two_cliques_bridge(4),
        ] {
            let idx = build(&g, eps);
            assert_all_pairs_within_eps(&g, &idx, eps);
        }
    }

    #[test]
    fn within_eps_with_all_optimizations() {
        let g = two_cliques_bridge(5);
        let eps = 0.05;
        let config = SlingConfig::from_epsilon(C, eps)
            .with_seed(3)
            .with_enhancement(true);
        let idx = SlingIndex::build(&g, &config).unwrap();
        assert_all_pairs_within_eps(&g, &idx, eps);
    }

    #[test]
    fn diagonal_is_exact_by_default() {
        let g = two_cliques_bridge(4);
        let idx = build(&g, 0.1);
        for v in g.nodes() {
            assert_eq!(idx.single_pair(&g, v, v), 1.0);
        }
    }

    #[test]
    fn raw_diagonal_estimate_is_close_but_not_exact() {
        let g = two_cliques_bridge(4);
        let config = SlingConfig::from_epsilon(C, 0.05)
            .with_seed(1)
            .with_exact_diagonal(false);
        let idx = SlingIndex::build(&g, &config).unwrap();
        let s = idx.single_pair(&g, NodeId(0), NodeId(0));
        assert!(s > 0.9 && s <= 1.0, "raw diagonal estimate {s}");
    }

    #[test]
    fn symmetry_of_estimates() {
        let g = two_cliques_bridge(5);
        let idx = build(&g, 0.05);
        let mut ws = QueryWorkspace::new();
        for u in g.nodes() {
            for v in g.nodes() {
                let a = idx.single_pair_with(&g, &mut ws, u, v);
                let b = idx.single_pair_with(&g, &mut ws, v, u);
                assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn cycle_pairs_are_zero() {
        let g = cycle_graph(9);
        let idx = build(&g, 0.05);
        assert_eq!(idx.single_pair(&g, NodeId(0), NodeId(4)), 0.0);
    }

    #[test]
    fn try_single_pair_checks_range() {
        let g = cycle_graph(4);
        let idx = build(&g, 0.1);
        assert!(idx.try_single_pair(&g, NodeId(0), NodeId(9)).is_err());
        assert!(idx.try_single_pair(&g, NodeId(0), NodeId(3)).is_ok());
    }

    /// Deterministic sorted entry run with roughly every `stride`-th key
    /// of a dense `(step, node)` grid.
    fn synth_run(n_keys: u32, stride: u32, salt: u64) -> Vec<HpEntry> {
        let mut out = Vec::new();
        let mut state = salt | 1;
        for i in (0..n_keys).step_by(stride as usize) {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let step = (i / 64) as u16;
            let node = NodeId(i % 64);
            let value = 0.05 + (state % 1000) as f64 / 2000.0;
            out.push(HpEntry::new(step, node, value));
        }
        out
    }

    #[test]
    fn gallop_merge_is_bit_identical_to_linear() {
        let d: Vec<f64> = (0..64).map(|k| 0.3 + (k as f64) / 200.0).collect();
        // Sweep skews on both sides of the GALLOP_RATIO switch, including
        // empty and tiny runs.
        for (a_stride, b_stride) in [(1, 1), (1, 3), (1, 17), (29, 1), (1, 64), (64, 1)] {
            for salt in [1u64, 99, 12345] {
                let a = synth_run(4096, a_stride, salt);
                let b = synth_run(4096, b_stride, salt.wrapping_mul(31));
                let linear = merge_linear(&a[..], &b[..], &d);
                let dispatched = merge_intersect_runs(&a[..], &b[..], &d);
                assert_eq!(
                    linear.to_bits(),
                    dispatched.to_bits(),
                    "strides ({a_stride},{b_stride}) salt {salt}: {linear} vs {dispatched}"
                );
            }
        }
        // Degenerate runs.
        let a = synth_run(4096, 1, 7);
        assert_eq!(merge_intersect_runs(&a[..], &[][..], &d), 0.0);
        assert_eq!(merge_intersect_runs(&[][..], &a[..], &d), 0.0);
    }

    #[test]
    fn lower_bound_from_is_a_sorted_lower_bound() {
        let run = synth_run(4096, 5, 3);
        let r = &run[..];
        for from in [0usize, 1, 17, run.len() - 1, run.len()] {
            for probe in [
                (0u16, NodeId(0)),
                (3, NodeId(10)),
                (31, NodeId(63)),
                (u16::MAX, NodeId(u32::MAX)),
            ] {
                let key = (probe.0, probe.1 .0);
                let got = lower_bound_from(&r, from, key);
                let want = (from..run.len())
                    .find(|&i| EntryRun::key(&r, i) >= key)
                    .unwrap_or(run.len());
                assert_eq!(got, want, "from {from}, key {key:?}");
            }
        }
    }

    #[test]
    fn streaming_matches_materialized_on_hub_pairs() {
        // Star-heavy BA graph: node 0 is a hub, so (hub, leaf) pairs are
        // exactly the skewed shape that triggers galloping.
        let g = sling_graph::generators::barabasi_albert(400, 3, 5).unwrap();
        let config = SlingConfig::from_epsilon(C, 0.1)
            .with_seed(5)
            .with_enhancement(true);
        let idx = SlingIndex::build(&g, &config).unwrap();
        let engine = idx.query_engine();
        let mut ws = QueryWorkspace::new();
        let mut ws2 = QueryWorkspace::new();
        for v in [1u32, 17, 250, 399] {
            for (a, b) in [(0, v), (v, 0), (v, (v + 1) % 400)] {
                let streamed = engine
                    .single_pair_with(&g, &mut ws, NodeId(a), NodeId(b))
                    .unwrap();
                let materialized = engine
                    .single_pair_materialized_with(&g, &mut ws2, NodeId(a), NodeId(b))
                    .unwrap();
                assert_eq!(
                    streamed.to_bits(),
                    materialized.to_bits(),
                    "({a},{b}): {streamed} vs {materialized}"
                );
            }
        }
    }

    /// Both restore policies must be bit-identical to the materializing
    /// reference kernel across the full §5.2 × §5.3 configuration
    /// matrix, on repeated queries: the bare-index path (no
    /// RestoreCache) streams two-segment §5.2 views, the engine path
    /// resolves cached full lists (second pass hits the cache).
    #[test]
    fn two_segment_streaming_matches_materialized_across_restore_matrix() {
        let g = sling_graph::generators::barabasi_albert(300, 3, 11).unwrap();
        for (sr, enh) in [(false, false), (true, false), (false, true), (true, true)] {
            let config = SlingConfig::from_epsilon(C, 0.1)
                .with_seed(9)
                .with_space_reduction(sr)
                .with_enhancement(enh);
            let idx = SlingIndex::build(&g, &config).unwrap();
            if sr {
                assert!(
                    idx.stats.reduced_nodes > 0,
                    "matrix row (sr={sr}, enh={enh}) exercises no reduced nodes"
                );
            }
            let engine = idx.query_engine();
            let mut ws = QueryWorkspace::new();
            let mut ws2 = QueryWorkspace::new();
            for _pass in 0..2 {
                for v in [1u32, 13, 144, 299] {
                    for (a, b) in [(0, v), (v, 0), (v, (v + 7) % 300)] {
                        let streamed = engine
                            .single_pair_with(&g, &mut ws, NodeId(a), NodeId(b))
                            .unwrap();
                        let materialized = engine
                            .single_pair_materialized_with(&g, &mut ws2, NodeId(a), NodeId(b))
                            .unwrap();
                        assert_eq!(
                            streamed.to_bits(),
                            materialized.to_bits(),
                            "sr={sr} enh={enh} ({a},{b}): {streamed} vs {materialized}"
                        );
                        // Bare index: no RestoreCache, so reduced
                        // endpoints take the two-segment streaming path.
                        let bare = idx.single_pair(&g, NodeId(a), NodeId(b));
                        assert_eq!(
                            bare.to_bits(),
                            materialized.to_bits(),
                            "sr={sr} enh={enh} two-segment ({a},{b}): {bare} vs {materialized}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn merge_intersect_basics() {
        let d = vec![0.5, 0.5, 0.5];
        let a = vec![
            HpEntry::new(0, NodeId(0), 1.0),
            HpEntry::new(1, NodeId(2), 0.4),
        ];
        let b = vec![
            HpEntry::new(0, NodeId(1), 1.0),
            HpEntry::new(1, NodeId(2), 0.3),
        ];
        // Only (1, v2) matches: 0.4 * 0.5 * 0.3
        let s = merge_intersect(&a, &b, &d);
        assert!((s - 0.06).abs() < 1e-12);
        assert_eq!(merge_intersect(&a, &[], &d), 0.0);
    }
}
