//! Algorithm 3 — single-pair SimRank queries in `O(1/ε)`.
//!
//! With the effective entry lists `H*(u)` and `H*(v)` sorted by
//! `(step, node)`, the Eq. (17) estimator
//!
//! ```text
//! s̃(u, v) = Σ_{(ℓ,k)} h̃⁽ℓ⁾(u, k) · d̃_k · h̃⁽ℓ⁾(v, k)
//! ```
//!
//! is a sorted-merge intersection: a single linear pass over both lists,
//! no hashing, `O(|H*(u)| + |H*(v)|) = O(1/ε)` time.

use sling_graph::{DiGraph, NodeId};

use crate::error::SlingError;
use crate::hp::HpEntry;
use crate::index::{effective_entries_into, Buf, QueryWorkspace, SlingIndex};
use crate::store::{EngineRef, HpStore};

/// Merge-intersect two `(step, node)`-sorted entry lists against the
/// correction factors.
pub(crate) fn merge_intersect(a: &[HpEntry], b: &[HpEntry], d: &[f64]) -> f64 {
    let mut s = 0.0;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].key().cmp(&b[j].key()) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                s += a[i].value * d[a[i].node.index()] * b[j].value;
                i += 1;
                j += 1;
            }
        }
    }
    s
}

/// Algorithm 3 over any storage backend: materialize both effective entry
/// lists and merge-intersect them against the correction factors.
pub(crate) fn single_pair_core<S: HpStore>(
    e: EngineRef<'_, S>,
    graph: &DiGraph,
    ws: &mut QueryWorkspace,
    u: NodeId,
    v: NodeId,
) -> Result<f64, SlingError> {
    if u == v && e.config.exact_diagonal {
        return Ok(1.0);
        // Otherwise fall through: estimate s(v,v) from the index like any
        // pair.
    }
    effective_entries_into(e, graph, u, ws, Buf::A)?;
    effective_entries_into(e, graph, v, ws, Buf::B)?;
    Ok(merge_intersect(&ws.buf_a, &ws.buf_b, e.d).clamp(0.0, 1.0))
}

impl SlingIndex {
    /// Single-pair SimRank estimate `s̃(u, v)` (Algorithm 3), allocating a
    /// fresh workspace. For hot loops prefer
    /// [`SlingIndex::single_pair_with`].
    pub fn single_pair(&self, graph: &DiGraph, u: NodeId, v: NodeId) -> f64 {
        let mut ws = QueryWorkspace::new();
        self.single_pair_with(graph, &mut ws, u, v)
    }

    /// Single-pair query reusing caller-provided buffers; allocation-free
    /// after warm-up.
    ///
    /// # Panics
    /// Panics in debug builds if `u` or `v` is out of range; use
    /// [`SlingIndex::try_single_pair`] for checked access.
    pub fn single_pair_with(
        &self,
        graph: &DiGraph,
        ws: &mut QueryWorkspace,
        u: NodeId,
        v: NodeId,
    ) -> f64 {
        debug_assert_eq!(graph.num_nodes(), self.num_nodes, "wrong graph for index");
        single_pair_core(self.engine_ref(), graph, ws, u, v)
            .expect("in-memory HP store cannot fail")
    }

    /// Range-checked single-pair query.
    pub fn try_single_pair(
        &self,
        graph: &DiGraph,
        u: NodeId,
        v: NodeId,
    ) -> Result<f64, SlingError> {
        let n = self.num_nodes as u32;
        for node in [u, v] {
            if node.0 >= n {
                return Err(SlingError::NodeOutOfRange { node: node.0, n });
            }
        }
        Ok(self.single_pair(graph, u, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SlingConfig;
    use crate::reference::exact_simrank;
    use sling_graph::generators::{complete_graph, cycle_graph, star_graph, two_cliques_bridge};
    use sling_graph::DiGraph;

    const C: f64 = 0.6;

    fn build(g: &DiGraph, eps: f64) -> SlingIndex {
        SlingIndex::build(g, &SlingConfig::from_epsilon(C, eps).with_seed(77)).unwrap()
    }

    /// Every pair within ε of the power-method ground truth.
    fn assert_all_pairs_within_eps(g: &DiGraph, idx: &SlingIndex, eps: f64) {
        let truth = exact_simrank(g, C, 60);
        let mut ws = QueryWorkspace::new();
        let mut worst = 0.0f64;
        for u in g.nodes() {
            for v in g.nodes() {
                let est = idx.single_pair_with(g, &mut ws, u, v);
                let err = (est - truth[u.index()][v.index()]).abs();
                worst = worst.max(err);
            }
        }
        assert!(worst <= eps, "max error {worst} > eps {eps}");
    }

    #[test]
    fn within_eps_on_toy_graphs() {
        let eps = 0.05;
        for g in [
            cycle_graph(8),
            star_graph(6),
            complete_graph(5),
            two_cliques_bridge(4),
        ] {
            let idx = build(&g, eps);
            assert_all_pairs_within_eps(&g, &idx, eps);
        }
    }

    #[test]
    fn within_eps_with_all_optimizations() {
        let g = two_cliques_bridge(5);
        let eps = 0.05;
        let config = SlingConfig::from_epsilon(C, eps)
            .with_seed(3)
            .with_enhancement(true);
        let idx = SlingIndex::build(&g, &config).unwrap();
        assert_all_pairs_within_eps(&g, &idx, eps);
    }

    #[test]
    fn diagonal_is_exact_by_default() {
        let g = two_cliques_bridge(4);
        let idx = build(&g, 0.1);
        for v in g.nodes() {
            assert_eq!(idx.single_pair(&g, v, v), 1.0);
        }
    }

    #[test]
    fn raw_diagonal_estimate_is_close_but_not_exact() {
        let g = two_cliques_bridge(4);
        let config = SlingConfig::from_epsilon(C, 0.05)
            .with_seed(1)
            .with_exact_diagonal(false);
        let idx = SlingIndex::build(&g, &config).unwrap();
        let s = idx.single_pair(&g, NodeId(0), NodeId(0));
        assert!(s > 0.9 && s <= 1.0, "raw diagonal estimate {s}");
    }

    #[test]
    fn symmetry_of_estimates() {
        let g = two_cliques_bridge(5);
        let idx = build(&g, 0.05);
        let mut ws = QueryWorkspace::new();
        for u in g.nodes() {
            for v in g.nodes() {
                let a = idx.single_pair_with(&g, &mut ws, u, v);
                let b = idx.single_pair_with(&g, &mut ws, v, u);
                assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn cycle_pairs_are_zero() {
        let g = cycle_graph(9);
        let idx = build(&g, 0.05);
        assert_eq!(idx.single_pair(&g, NodeId(0), NodeId(4)), 0.0);
    }

    #[test]
    fn try_single_pair_checks_range() {
        let g = cycle_graph(4);
        let idx = build(&g, 0.1);
        assert!(idx.try_single_pair(&g, NodeId(0), NodeId(9)).is_err());
        assert!(idx.try_single_pair(&g, NodeId(0), NodeId(3)).is_ok());
    }

    #[test]
    fn merge_intersect_basics() {
        let d = vec![0.5, 0.5, 0.5];
        let a = vec![
            HpEntry::new(0, NodeId(0), 1.0),
            HpEntry::new(1, NodeId(2), 0.4),
        ];
        let b = vec![
            HpEntry::new(0, NodeId(1), 1.0),
            HpEntry::new(1, NodeId(2), 0.3),
        ];
        // Only (1, v2) matches: 0.4 * 0.5 * 0.3
        let s = merge_intersect(&a, &b, &d);
        assert!((s - 0.06).abs() < 1e-12);
        assert_eq!(merge_intersect(&a, &[], &d), 0.0);
    }
}
