//! Shared harness utilities for the `repro` binary and the criterion
//! benches: per-tier experiment parameters, method constructors, timing
//! and sampling helpers, and all-pairs matrix builders.

use std::time::Instant;

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use sling_baselines::linearize::{Linearize, LinearizeConfig};
use sling_baselines::monte_carlo::{theory_truncation, McIndex};
use sling_baselines::DenseMatrix;
use sling_core::single_source::SingleSourceWorkspace;
use sling_core::{QueryWorkspace, SlingConfig, SlingIndex};
use sling_graph::datasets::{DatasetSpec, Tier};
use sling_graph::{DiGraph, NodeId};

/// Decay factor used by every experiment (paper §7.1).
pub const C: f64 = 0.6;

/// Per-tier experiment parameters.
///
/// The Small tier uses the paper's exact setting (ε = 0.025). Larger
/// tiers relax ε so the full harness finishes on a laptop — the
/// substitution is documented in `EXPERIMENTS.md`; Theorem 1 still holds
/// at the stated ε for every run.
#[derive(Clone, Debug)]
pub struct TierParams {
    /// SLING accuracy target.
    pub eps: f64,
    /// Monte Carlo walks per node for the timing experiments. The paper
    /// sizes MC for the same ε as SLING, which makes its index and query
    /// cost large — we use a capped-but-large count that preserves the
    /// ordering (MC slowest / biggest) at laptop scale.
    pub mc_walks: usize,
    /// Monte Carlo walks per node for the all-pairs accuracy experiments
    /// (Figures 5-7), where an n² × walks scan must stay feasible.
    pub mc_walks_accuracy: usize,
    /// Monte Carlo truncation depth.
    pub mc_truncation: usize,
    /// Run the MC baseline at all (paper omits it beyond the four
    /// smallest datasets: its index exceeded their 64 GB).
    pub run_mc: bool,
    /// Linearization parameters.
    pub lin: LinearizeConfig,
}

/// Parameters for a dataset's tier, with an optional ε override.
pub fn params_for(tier: Tier, eps_override: Option<f64>) -> TierParams {
    let eps = eps_override.unwrap_or(match tier {
        Tier::Small => 0.025,
        Tier::Medium => 0.1,
        Tier::Large => 0.2,
    });
    TierParams {
        eps,
        mc_walks: 5000,
        mc_walks_accuracy: 500,
        mc_truncation: theory_truncation(C, eps),
        run_mc: tier == Tier::Small,
        lin: LinearizeConfig::paper_defaults(C),
    }
}

/// Wall-clock a closure.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed().as_secs_f64())
}

/// SLING config for a tier (paper defaults + deterministic per-run seed).
pub fn sling_config(params: &TierParams, seed: u64) -> SlingConfig {
    SlingConfig::from_epsilon(C, params.eps).with_seed(seed)
}

/// `count` random node pairs, deterministic in `seed`.
pub fn sample_pairs(n: usize, count: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            (
                NodeId(rng.random_range(0..n as u32)),
                NodeId(rng.random_range(0..n as u32)),
            )
        })
        .collect()
}

/// `count` random source nodes, deterministic in `seed`.
pub fn sample_nodes(n: usize, count: usize, seed: u64) -> Vec<NodeId> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..count)
        .map(|_| NodeId(rng.random_range(0..n as u32)))
        .collect()
}

/// Average per-query seconds of SLING single-pair queries (Algorithm 3).
pub fn bench_sling_single_pair(
    index: &SlingIndex,
    graph: &DiGraph,
    pairs: &[(NodeId, NodeId)],
) -> f64 {
    let mut ws = QueryWorkspace::new();
    let (_, secs) = time(|| {
        let mut acc = 0.0;
        for &(u, v) in pairs {
            acc += index.single_pair_with(graph, &mut ws, u, v);
        }
        std::hint::black_box(acc)
    });
    secs / pairs.len() as f64
}

/// Average per-query seconds of SLING single-source queries (Algorithm 6).
pub fn bench_sling_single_source(index: &SlingIndex, graph: &DiGraph, sources: &[NodeId]) -> f64 {
    let mut ws = SingleSourceWorkspace::new();
    let mut out = Vec::new();
    let (_, secs) = time(|| {
        let mut acc = 0.0;
        for &u in sources {
            index.single_source_with(graph, &mut ws, u, &mut out);
            acc += out[0];
        }
        std::hint::black_box(acc)
    });
    secs / sources.len() as f64
}

/// All-pairs SLING score matrix via Algorithm 6 per source row.
pub fn all_pairs_sling(index: &SlingIndex, graph: &DiGraph) -> DenseMatrix {
    let n = graph.num_nodes();
    let mut m = DenseMatrix::zeros(n);
    let mut ws = SingleSourceWorkspace::new();
    let mut row = Vec::new();
    for u in graph.nodes() {
        index.single_source_with(graph, &mut ws, u, &mut row);
        m.row_mut(u.index()).copy_from_slice(&row);
    }
    m
}

/// All-pairs linearization matrix via its single-source query per row.
pub fn all_pairs_linearize(lin: &Linearize, graph: &DiGraph) -> DenseMatrix {
    let n = graph.num_nodes();
    let mut m = DenseMatrix::zeros(n);
    for u in graph.nodes() {
        let row = lin.single_source(graph, u);
        m.row_mut(u.index()).copy_from_slice(&row);
    }
    m
}

/// All-pairs Monte Carlo matrix.
pub fn all_pairs_mc(mc: &McIndex, graph: &DiGraph) -> DenseMatrix {
    let n = graph.num_nodes();
    let mut m = DenseMatrix::zeros(n);
    for u in graph.nodes() {
        let row = mc.single_source(u);
        m.row_mut(u.index()).copy_from_slice(&row);
    }
    m
}

/// `q`-th quantile (`0 ≤ q ≤ 1`) of an **ascending-sorted** sample, by
/// the nearest-rank method (`q = 0.5` → median, `q = 0.99` → p99).
/// Returns 0 for an empty sample.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Latency percentile summary of one workload run, in microseconds —
/// the shape `sling bench-query`, `sling bench-serve`, and the server's
/// `STATS` report all share.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencySummary {
    /// Samples observed.
    pub count: usize,
    /// Median latency, µs.
    pub p50_us: f64,
    /// 99th-percentile latency, µs.
    pub p99_us: f64,
    /// 99.9th-percentile latency, µs.
    pub p999_us: f64,
}

impl LatencySummary {
    /// Summarize raw per-request latencies (microseconds, any order).
    pub fn from_latencies_us(mut samples: Vec<f64>) -> LatencySummary {
        samples.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        LatencySummary {
            count: samples.len(),
            p50_us: percentile(&samples, 0.50),
            p99_us: percentile(&samples, 0.99),
            p999_us: percentile(&samples, 0.999),
        }
    }
}

/// Human-friendly time formatting for harness tables.
pub fn fmt_secs(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1}ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.1}us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2}ms", secs * 1e3)
    } else {
        format!("{:.2}s", secs)
    }
}

/// Human-friendly byte counts.
pub fn fmt_bytes(bytes: usize) -> String {
    const KB: f64 = 1024.0;
    let b = bytes as f64;
    if b < KB {
        format!("{bytes}B")
    } else if b < KB * KB {
        format!("{:.1}KB", b / KB)
    } else if b < KB * KB * KB {
        format!("{:.1}MB", b / (KB * KB))
    } else {
        format!("{:.2}GB", b / (KB * KB * KB))
    }
}

/// Datasets for a run: all up to `tier`, or one named dataset.
pub fn datasets_for_run(tier: Tier, only: Option<&str>) -> Vec<&'static DatasetSpec> {
    match only {
        Some(name) => sling_graph::datasets::by_name(name)
            .map(|d| vec![d])
            .unwrap_or_default(),
        None => sling_graph::datasets::up_to_tier(tier).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sling_graph::generators::two_cliques_bridge;

    #[test]
    fn tier_params_defaults_and_override() {
        let small = params_for(Tier::Small, None);
        assert!((small.eps - 0.025).abs() < 1e-12);
        assert!(small.run_mc);
        let medium = params_for(Tier::Medium, None);
        assert!(medium.eps > small.eps);
        assert!(!medium.run_mc);
        let forced = params_for(Tier::Medium, Some(0.025));
        assert!((forced.eps - 0.025).abs() < 1e-12);
    }

    #[test]
    fn sampling_is_deterministic_and_in_range() {
        let pairs = sample_pairs(100, 50, 7);
        assert_eq!(pairs, sample_pairs(100, 50, 7));
        assert!(pairs.iter().all(|&(u, v)| u.0 < 100 && v.0 < 100));
        let nodes = sample_nodes(10, 20, 3);
        assert!(nodes.iter().all(|&v| v.0 < 10));
    }

    #[test]
    fn all_pairs_matrices_agree_with_direct_queries() {
        let g = two_cliques_bridge(4);
        let params = params_for(Tier::Small, Some(0.1));
        let idx = SlingIndex::build(&g, &sling_config(&params, 1)).unwrap();
        let m = all_pairs_sling(&idx, &g);
        for u in g.nodes() {
            let row = idx.single_source(&g, u);
            for v in g.nodes() {
                assert_eq!(m.get(u.index(), v.index()), row[v.index()]);
            }
        }
    }

    #[test]
    fn percentiles_by_nearest_rank() {
        let sorted: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        assert_eq!(percentile(&sorted, 0.5), 500.0);
        assert_eq!(percentile(&sorted, 0.99), 990.0);
        assert_eq!(percentile(&sorted, 0.999), 999.0);
        assert_eq!(percentile(&sorted, 1.0), 1000.0);
        assert_eq!(percentile(&sorted, 0.0), 1.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        let summary = LatencySummary::from_latencies_us(vec![3.0, 1.0, 2.0]);
        assert_eq!(summary.count, 3);
        assert_eq!(summary.p50_us, 2.0);
        assert_eq!(summary.p999_us, 3.0);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_secs(50e-9), "50.0ns");
        assert_eq!(fmt_secs(0.002), "2.00ms");
        assert_eq!(fmt_secs(2.5), "2.50s");
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(2048), "2.0KB");
        assert!(fmt_bytes(3 << 20).contains("MB"));
    }

    #[test]
    fn datasets_for_run_filters() {
        assert_eq!(datasets_for_run(Tier::Small, None).len(), 4);
        let one = datasets_for_run(Tier::Large, Some("grqc-sim"));
        assert_eq!(one.len(), 1);
        assert!(datasets_for_run(Tier::Large, Some("nope")).is_empty());
    }
}
