//! `repro` — regenerates every table and figure of the SLING paper's
//! evaluation (§7 and Appendix C) on the synthetic dataset suite.
//!
//! ```text
//! repro <command> [options]
//!
//! Commands:
//!   table1        query-time scaling vs 1/ε (the Table 1 complexity check)
//!   table3        dataset statistics
//!   fig1          single-pair query time per method per dataset
//!   fig2          single-source query time per method per dataset
//!   fig3          preprocessing time per method per dataset
//!   fig4          index space per method per dataset
//!   fig5          max all-pair error over repeated runs (4 small datasets)
//!   fig6          average error by SimRank group S1/S2/S3
//!   fig7          top-k precision, k = 400..2000
//!   fig9          parallel preprocessing speed-up (thread sweep)
//!   fig10         out-of-core preprocessing vs memory buffer size
//!   extensions    costs of the beyond-paper features (top-k, joins, dynamic, cache, disk)
//!   all           everything above
//!
//! Options:
//!   --quick         much smaller workloads (CI smoke run)
//!   --tier T        small | medium | large   (default: medium)
//!   --dataset NAME  restrict to one dataset
//!   --eps X         override SLING's ε for every tier
//!   --runs N        runs for fig5/fig6 (default 10, paper setting)
//! ```

use sling_baselines::linearize::Linearize;
use sling_baselines::monte_carlo::McIndex;
use sling_baselines::{grouped_errors, max_error, power_simrank, top_k_precision, DenseMatrix};
use sling_bench::*;
use sling_core::out_of_core::{build_out_of_core, OutOfCoreConfig};
use sling_core::SlingIndex;
use sling_graph::datasets::{DatasetSpec, Tier};
use sling_graph::{DiGraph, GraphStats};

#[derive(Clone, Debug)]
struct Options {
    quick: bool,
    tier: Tier,
    dataset: Option<String>,
    eps: Option<f64>,
    runs: usize,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            quick: false,
            tier: Tier::Medium,
            dataset: None,
            eps: None,
            runs: 10,
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        print_usage();
        std::process::exit(2);
    }
    let command = args[0].clone();
    let mut opts = Options::default();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => opts.quick = true,
            "--tier" => {
                i += 1;
                opts.tier = match args.get(i).map(String::as_str) {
                    Some("small") => Tier::Small,
                    Some("medium") => Tier::Medium,
                    Some("large") => Tier::Large,
                    other => {
                        eprintln!("unknown tier {other:?}");
                        std::process::exit(2);
                    }
                };
            }
            "--dataset" => {
                i += 1;
                opts.dataset = args.get(i).cloned();
            }
            "--eps" => {
                i += 1;
                opts.eps = args.get(i).and_then(|s| s.parse().ok());
            }
            "--runs" => {
                i += 1;
                opts.runs = args.get(i).and_then(|s| s.parse().ok()).unwrap_or(10);
            }
            other => {
                eprintln!("unknown option {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if opts.quick {
        opts.runs = opts.runs.min(2);
    }

    match command.as_str() {
        "table1" => table1(&opts),
        "table3" => table3(&opts),
        "fig1" => fig1(&opts),
        "fig2" => fig2(&opts),
        "fig3" => fig3(&opts),
        "fig4" => fig4(&opts),
        "fig5" => accuracy(&opts, AccuracyReport::MaxError),
        "fig6" => accuracy(&opts, AccuracyReport::Grouped),
        "fig7" => accuracy(&opts, AccuracyReport::TopK),
        "fig9" => fig9(&opts),
        "fig10" => fig10(&opts),
        "extensions" => extensions(&opts),
        "all" => {
            table3(&opts);
            table1(&opts);
            fig1(&opts);
            fig2(&opts);
            fig3(&opts);
            fig4(&opts);
            accuracy(&opts, AccuracyReport::All);
            fig9(&opts);
            fig10(&opts);
            extensions(&opts);
        }
        other => {
            eprintln!("unknown command {other}");
            print_usage();
            std::process::exit(2);
        }
    }
}

fn print_usage() {
    eprintln!(
        "usage: repro <table1|table3|fig1|fig2|fig3|fig4|fig5|fig6|fig7|fig9|fig10|extensions|all> \
         [--quick] [--tier small|medium|large] [--dataset NAME] [--eps X] [--runs N]"
    );
}

fn section(title: &str) {
    println!();
    println!("==== {title} ====");
}

/// Methods built for one dataset under its tier parameters.
struct Built {
    graph: DiGraph,
    params: TierParams,
    sling: SlingIndex,
    sling_secs: f64,
    lin: Linearize,
    lin_secs: f64,
    mc: Option<McIndex>,
    mc_secs: f64,
}

fn build_all(spec: &DatasetSpec, opts: &Options, seed: u64) -> Built {
    let graph = spec.build();
    let params = params_for(spec.tier, opts.eps);
    let (sling, sling_secs) =
        time(|| SlingIndex::build(&graph, &sling_config(&params, seed)).expect("valid config"));
    let (lin, lin_secs) = time(|| Linearize::build(&graph, &params.lin));
    let (mc, mc_secs) = if params.run_mc {
        let (mc, secs) =
            time(|| McIndex::build(&graph, C, params.mc_walks, params.mc_truncation, seed));
        (Some(mc), secs)
    } else {
        (None, 0.0)
    };
    Built {
        graph,
        params,
        sling,
        sling_secs,
        lin,
        lin_secs,
        mc,
        mc_secs,
    }
}

// ---------------------------------------------------------------- table 3

fn table3(opts: &Options) {
    section("Table 3: datasets (synthetic analogues; paper n/m for reference)");
    println!(
        "{:<16} {:<10} {:>9} {:>11} {:>9} {:>13} {:>15}",
        "dataset", "type", "n", "m", "wcc", "paper n", "paper m"
    );
    for spec in datasets_for_run(opts.tier, opts.dataset.as_deref()) {
        let g = spec.build();
        let stats = GraphStats::compute(&g);
        let (labels, count) = sling_graph::components::weakly_connected_components(&g);
        let wcc = sling_graph::components::largest_component_size(&labels, count);
        println!(
            "{:<16} {:<10} {:>9} {:>11} {:>9} {:>13} {:>15}",
            spec.name,
            if spec.directed {
                "directed"
            } else {
                "undirected"
            },
            stats.nodes,
            stats.edges,
            wcc,
            spec.paper_n,
            spec.paper_m
        );
    }
}

// ---------------------------------------------------------------- table 1

fn table1(opts: &Options) {
    section("Table 1 check: SLING query time scales as O(1/eps)");
    let name = opts.dataset.as_deref().unwrap_or("grqc-sim");
    let spec = sling_graph::datasets::by_name(name).expect("dataset exists");
    let graph = spec.build();
    let n = graph.num_nodes();
    let pair_count = if opts.quick { 200 } else { 1000 };
    let source_count = if opts.quick { 5 } else { 50 };
    println!("dataset: {} (n={n})", spec.name);
    println!(
        "{:>8} {:>14} {:>14} {:>14} {:>12}",
        "eps", "pair query", "source query", "index size", "entries"
    );
    let mut prev_pair: Option<f64> = None;
    for &eps in &[0.2, 0.1, 0.05, 0.025] {
        let params = params_for(spec.tier, Some(eps));
        let idx = SlingIndex::build(&graph, &sling_config(&params, 42)).unwrap();
        let pairs = sample_pairs(n, pair_count, 7);
        let pair_t = bench_sling_single_pair(&idx, &graph, &pairs);
        let sources = sample_nodes(n, source_count, 8);
        let source_t = bench_sling_single_source(&idx, &graph, &sources);
        let ratio = prev_pair.map(|p| pair_t / p).unwrap_or(1.0);
        println!(
            "{:>8} {:>14} {:>14} {:>14} {:>12}   (pair-time x{ratio:.2} vs previous eps)",
            eps,
            fmt_secs(pair_t),
            fmt_secs(source_t),
            fmt_bytes(idx.resident_bytes()),
            idx.stats().entries_stored,
        );
        prev_pair = Some(pair_t);
    }
    println!("(halving eps should roughly double pair-query time and index size: O(1/eps))");
}

// ------------------------------------------------------------- fig 1 & 2

fn fig1(opts: &Options) {
    section("Figure 1: average single-pair query time");
    let count = if opts.quick { 100 } else { 1000 };
    println!(
        "{:<16} {:>12} {:>12} {:>12} {:>10}",
        "dataset", "SLING", "Linearize", "MC", "speedup"
    );
    for spec in datasets_for_run(opts.tier, opts.dataset.as_deref()) {
        let b = build_all(spec, opts, 42);
        let n = b.graph.num_nodes();
        let pairs = sample_pairs(n, count, 17);
        let sling_t = bench_sling_single_pair(&b.sling, &b.graph, &pairs);
        let lin_pairs = &pairs[..pairs.len().min(if opts.quick { 10 } else { 50 })];
        let (_, lin_total) = time(|| {
            for &(u, v) in lin_pairs {
                std::hint::black_box(b.lin.single_pair(&b.graph, u, v));
            }
        });
        let lin_t = lin_total / lin_pairs.len() as f64;
        let mc_t = b.mc.as_ref().map(|mc| {
            let (_, total) = time(|| {
                for &(u, v) in &pairs {
                    std::hint::black_box(mc.single_pair(u, v));
                }
            });
            total / pairs.len() as f64
        });
        println!(
            "{:<16} {:>12} {:>12} {:>12} {:>9.0}x",
            spec.name,
            fmt_secs(sling_t),
            fmt_secs(lin_t),
            mc_t.map(fmt_secs).unwrap_or_else(|| "-".into()),
            lin_t / sling_t,
        );
    }
}

fn fig2(opts: &Options) {
    section("Figure 2: average single-source query time");
    let count = if opts.quick { 5 } else { 100 };
    println!(
        "{:<16} {:>14} {:>14} {:>12} {:>12}",
        "dataset", "SLING(Alg6)", "SLING(Alg3xn)", "Linearize", "MC"
    );
    for spec in datasets_for_run(opts.tier, opts.dataset.as_deref()) {
        let b = build_all(spec, opts, 42);
        let n = b.graph.num_nodes();
        let sources = sample_nodes(n, count, 23);
        let alg6_t = bench_sling_single_source(&b.sling, &b.graph, &sources);
        // Algorithm-3-per-node is only competitive on tiny graphs; the
        // paper likewise omits it beyond the four smallest datasets.
        let alg3_t = if spec.tier == Tier::Small {
            let few = &sources[..sources.len().min(3)];
            let (_, total) = time(|| {
                for &u in few {
                    std::hint::black_box(b.sling.single_source_via_pairs(&b.graph, u));
                }
            });
            Some(total / few.len() as f64)
        } else {
            None
        };
        let lin_sources = &sources[..sources.len().min(if opts.quick { 3 } else { 20 })];
        let (_, lin_total) = time(|| {
            for &u in lin_sources {
                std::hint::black_box(b.lin.single_source(&b.graph, u));
            }
        });
        let lin_t = lin_total / lin_sources.len() as f64;
        let mc_t = b.mc.as_ref().map(|mc| {
            let few = &sources[..sources.len().min(5)];
            let (_, total) = time(|| {
                for &u in few {
                    std::hint::black_box(mc.single_source(u));
                }
            });
            total / few.len() as f64
        });
        println!(
            "{:<16} {:>14} {:>14} {:>12} {:>12}",
            spec.name,
            fmt_secs(alg6_t),
            alg3_t.map(fmt_secs).unwrap_or_else(|| "-".into()),
            fmt_secs(lin_t),
            mc_t.map(fmt_secs).unwrap_or_else(|| "-".into()),
        );
    }
}

// ------------------------------------------------------------- fig 3 & 4

fn fig3(opts: &Options) {
    section("Figure 3: preprocessing time");
    println!(
        "{:<16} {:>12} {:>12} {:>12}",
        "dataset", "SLING", "Linearize", "MC"
    );
    for spec in datasets_for_run(opts.tier, opts.dataset.as_deref()) {
        let b = build_all(spec, opts, 42);
        println!(
            "{:<16} {:>12} {:>12} {:>12}",
            spec.name,
            fmt_secs(b.sling_secs),
            fmt_secs(b.lin_secs),
            if b.mc.is_some() {
                fmt_secs(b.mc_secs)
            } else {
                "-".into()
            },
        );
    }
}

fn fig4(opts: &Options) {
    section("Figure 4: index space");
    println!(
        "{:<16} {:>12} {:>12} {:>12} {:>16}",
        "dataset", "SLING", "Linearize", "MC", "SLING entries"
    );
    for spec in datasets_for_run(opts.tier, opts.dataset.as_deref()) {
        let b = build_all(spec, opts, 42);
        println!(
            "{:<16} {:>12} {:>12} {:>12} {:>16}",
            spec.name,
            fmt_bytes(b.sling.resident_bytes()),
            fmt_bytes(b.lin.resident_bytes()),
            b.mc.as_ref()
                .map(|m| fmt_bytes(m.resident_bytes()))
                .unwrap_or_else(|| "-".into()),
            b.sling.stats().entries_stored,
        );
        let _ = &b.params;
    }
}

// --------------------------------------------------------- figs 5, 6, 7

enum AccuracyReport {
    MaxError,
    Grouped,
    TopK,
    All,
}

fn accuracy(opts: &Options, report: AccuracyReport) {
    let runs = opts.runs.max(1);
    let specs: Vec<_> = datasets_for_run(Tier::Small, opts.dataset.as_deref())
        .into_iter()
        .filter(|s| s.tier == Tier::Small)
        .collect();
    for spec in specs {
        let graph = spec.build();
        let params = params_for(spec.tier, opts.eps);
        println!();
        println!(
            "---- accuracy on {} (n={}, eps={}, {} runs) ----",
            spec.name,
            graph.num_nodes(),
            params.eps,
            runs
        );
        let iters = sling_baselines::iterations_for_error(C, 1e-11);
        let (truth, truth_secs) = time(|| power_simrank(&graph, C, iters));
        println!(
            "ground truth: power method, {iters} iterations, {}",
            fmt_secs(truth_secs)
        );

        let mut sling_maxes = Vec::new();
        let mut lin_maxes = Vec::new();
        let mut mc_maxes = Vec::new();
        let mut last: Option<(DenseMatrix, DenseMatrix, DenseMatrix)> = None;
        for run in 0..runs {
            let seed = 1000 + run as u64;
            // Figures 5-7 measure the raw estimator: exact-diagonal off.
            let cfg = sling_config(&params, seed).with_exact_diagonal(false);
            let sling = SlingIndex::build(&graph, &cfg).unwrap();
            let s_mat = all_pairs_sling(&sling, &graph);
            let mut lin_cfg = params.lin.clone();
            lin_cfg.seed = seed;
            let lin = Linearize::build(&graph, &lin_cfg);
            let l_mat = all_pairs_linearize(&lin, &graph);
            let mc = McIndex::build(
                &graph,
                C,
                params.mc_walks_accuracy,
                params.mc_truncation,
                seed,
            );
            let m_mat = all_pairs_mc(&mc, &graph);
            sling_maxes.push(max_error(&truth, &s_mat));
            lin_maxes.push(max_error(&truth, &l_mat));
            mc_maxes.push(max_error(&truth, &m_mat));
            last = Some((s_mat, l_mat, m_mat));
        }

        if matches!(report, AccuracyReport::MaxError | AccuracyReport::All) {
            println!(
                "Figure 5: max all-pair error per run (eps = {})",
                params.eps
            );
            println!(
                "{:>5} {:>12} {:>12} {:>12}",
                "run", "SLING", "Linearize", "MC"
            );
            for run in 0..runs {
                println!(
                    "{:>5} {:>12.6} {:>12.6} {:>12.6}",
                    run + 1,
                    sling_maxes[run],
                    lin_maxes[run],
                    mc_maxes[run]
                );
            }
        }
        let (s_mat, l_mat, m_mat) = last.expect("at least one run");
        if matches!(report, AccuracyReport::Grouped | AccuracyReport::All) {
            println!("Figure 6: average error by group (last run)");
            println!(
                "{:>10} {:>12} {:>12} {:>12}",
                "group", "SLING", "Linearize", "MC"
            );
            let gs = grouped_errors(&truth, &s_mat, false);
            let gl = grouped_errors(&truth, &l_mat, false);
            let gm = grouped_errors(&truth, &m_mat, false);
            for (label, a, b, c_) in [
                ("S1[.1,1]", gs.s1, gl.s1, gm.s1),
                ("S2[.01,.1)", gs.s2, gl.s2, gm.s2),
                ("S3[<.01]", gs.s3, gl.s3, gm.s3),
            ] {
                println!("{label:>10} {a:>12.2e} {b:>12.2e} {c_:>12.2e}");
            }
            println!("(group sizes: {:?})", gs.counts);
        }
        if matches!(report, AccuracyReport::TopK | AccuracyReport::All) {
            println!("Figure 7: top-k precision (last run)");
            println!(
                "{:>6} {:>10} {:>10} {:>10}",
                "k", "SLING", "Linearize", "MC"
            );
            for k in [400, 800, 1200, 1600, 2000] {
                println!(
                    "{:>6} {:>10.4} {:>10.4} {:>10.4}",
                    k,
                    top_k_precision(&truth, &s_mat, k),
                    top_k_precision(&truth, &l_mat, k),
                    top_k_precision(&truth, &m_mat, k),
                );
            }
        }
    }
}

// ------------------------------------------------------------------ fig 9

fn fig9(opts: &Options) {
    section("Figure 9: SLING preprocessing time vs number of threads");
    let available = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4);
    // Sweep at least 1/2/4 threads even on small hosts so the curve
    // exists; with fewer cores than threads the curve is flat and the
    // run demonstrates only correctness of the parallel path.
    let mut sweep: Vec<usize> = vec![1, 2, 4];
    for t in [8, 16] {
        if t <= available {
            sweep.push(t);
        }
    }
    println!("(host parallelism: {available}; datasets of tier {:?} only, as the paper uses its largest graphs)", opts.tier);
    println!(
        "{:<16} {}",
        "dataset",
        sweep
            .iter()
            .map(|t| format!("{:>16}", format!("{t} thread(s)")))
            .collect::<String>()
    );
    for spec in datasets_for_run(opts.tier, opts.dataset.as_deref())
        .into_iter()
        .filter(|s| s.tier == opts.tier || opts.dataset.is_some())
    {
        let graph = spec.build();
        let params = params_for(spec.tier, opts.eps);
        let mut row = format!("{:<16}", spec.name);
        let mut base = 0.0;
        for &t in &sweep {
            let cfg = sling_config(&params, 42).with_threads(t);
            let (_, secs) = time(|| SlingIndex::build(&graph, &cfg).unwrap());
            if t == 1 {
                base = secs;
                row.push_str(&format!("{:>16}", fmt_secs(secs)));
            } else {
                row.push_str(&format!(
                    "{:>16}",
                    format!("{} (x{:.1})", fmt_secs(secs), base / secs)
                ));
            }
        }
        println!("{row}");
    }
}

// ----------------------------------------------------------------- fig 10

fn fig10(opts: &Options) {
    section("Figure 10: out-of-core preprocessing time vs memory buffer");
    // The paper sweeps 256MB..2GB on multi-GB indexes; our scaled indexes
    // are MBs, so the sweep is scaled accordingly.
    let buffers: &[(usize, &str)] = &[
        (256 << 10, "256KB"),
        (1 << 20, "1MB"),
        (4 << 20, "4MB"),
        (16 << 20, "16MB"),
        (usize::MAX / 2, "all"),
    ];
    println!(
        "{:<16} {}",
        "dataset",
        buffers
            .iter()
            .map(|(_, l)| format!("{l:>10}"))
            .collect::<String>()
    );
    for spec in datasets_for_run(opts.tier, opts.dataset.as_deref())
        .into_iter()
        .filter(|s| s.tier == opts.tier || opts.dataset.is_some())
    {
        let graph = spec.build();
        let params = params_for(spec.tier, opts.eps);
        let cfg = sling_config(&params, 42);
        let mut row = format!("{:<16}", spec.name);
        for &(bytes, _) in buffers {
            let occ = OutOfCoreConfig::with_buffer(bytes);
            let (idx, secs) = time(|| build_out_of_core(&graph, &cfg, &occ).unwrap());
            std::hint::black_box(idx.stats());
            row.push_str(&format!("{:>10}", fmt_secs(secs)));
        }
        println!("{row}");
    }
}

/// `extensions` — measured costs of the features beyond the paper's
/// evaluation (top-k strategies, similarity joins, dynamic maintenance,
/// query cache, disk-resident queries). Feeds the "Extensions" section of
/// EXPERIMENTS.md.
fn extensions(opts: &Options) {
    use sling_core::cache::CachedQueries;
    use sling_core::dynamic::{DynamicConfig, DynamicSling, StalePolicy};
    use sling_core::join::JoinStrategy;
    use sling_core::out_of_core::DiskHpStore;
    use sling_graph::NodeId;

    println!("\n== extensions: costs of the beyond-paper query types ==");
    let specs = datasets_for_run(Tier::Small, opts.dataset.as_deref());
    for spec in specs {
        let graph = spec.build();
        let params = params_for(Tier::Small, opts.eps);
        let cfg = sling_config(&params, 42);
        let index = SlingIndex::build(&graph, &cfg).unwrap();
        let n = graph.num_nodes();
        println!(
            "\n-- {} (n = {}, m = {}) --",
            spec.name,
            n,
            graph.num_edges()
        );

        // Top-k strategies (64 sources, k = 50).
        let sources = sample_nodes(n, if opts.quick { 8 } else { 64 }, 3);
        let k = 50;
        let (_, t_sort) = time(|| {
            for &u in &sources {
                std::hint::black_box(index.top_k(&graph, u, k));
            }
        });
        let (_, t_heap) = time(|| {
            for &u in &sources {
                std::hint::black_box(index.top_k_heap(&graph, u, k));
            }
        });
        let (_, t_approx) = time(|| {
            for &u in &sources {
                std::hint::black_box(index.top_k_approx(&graph, u, k, 0.01));
            }
        });
        println!(
            "top-k (k=50, per query)   sort {:>9}  heap {:>9}  approx(0.01) {:>9}",
            fmt_secs(t_sort / sources.len() as f64),
            fmt_secs(t_heap / sources.len() as f64),
            fmt_secs(t_approx / sources.len() as f64),
        );

        // Threshold joins.
        let tau = 0.1;
        let (a, t_ps) = time(|| {
            index
                .threshold_join(&graph, tau, JoinStrategy::PerSource)
                .unwrap()
        });
        let (b, t_il) = time(|| {
            index
                .threshold_join(&graph, tau, JoinStrategy::InvertedLists)
                .unwrap()
        });
        println!(
            "join (tau=0.1)            per-source {:>9} ({} pairs)  inverted {:>9} ({} pairs)",
            fmt_secs(t_ps),
            a.len(),
            fmt_secs(t_il),
            b.len(),
        );

        // Batch parallel queries (single-source over 64 sources).
        let (_, t1) = time(|| std::hint::black_box(index.batch_single_source(&graph, &sources, 1)));
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        let (_, tp) =
            time(|| std::hint::black_box(index.batch_single_source(&graph, &sources, threads)));
        println!(
            "batch single-source x{}   1 thread {:>9}   {} threads {:>9}  (speed-up {:.2}x)",
            sources.len(),
            fmt_secs(t1),
            threads,
            fmt_secs(tp),
            t1 / tp.max(1e-12),
        );

        // Dynamic maintenance: update + tainted query under MC fallback.
        let mut dcfg = DynamicConfig::new(cfg.clone());
        dcfg.policy = StalePolicy::MonteCarloFallback { delta: 1e-4 };
        dcfg.rebuild_fraction = f64::INFINITY;
        let mut dynamic = DynamicSling::new(&graph, dcfg).unwrap();
        let rounds = if opts.quick { 8 } else { 64 };
        let (_, t_dyn) = time(|| {
            for i in 0..rounds as u32 {
                let (u, v) = (i % n as u32, (i * 7 + 1) % n as u32);
                if !dynamic.insert_edge(NodeId(u), NodeId(v)).unwrap() {
                    dynamic.remove_edge(NodeId(u), NodeId(v)).unwrap();
                }
                std::hint::black_box(
                    dynamic
                        .single_pair(NodeId(v), NodeId((v + 1) % n as u32))
                        .unwrap(),
                );
            }
        });
        let (_, t_rebuild) = time(|| dynamic.rebuild().unwrap());
        println!(
            "dynamic (MC fallback)     update+query {:>9}/op   full rebuild {:>9}",
            fmt_secs(t_dyn / rounds as f64),
            fmt_secs(t_rebuild),
        );

        // LRU cache on a skewed workload (32 hot nodes).
        let hot = sample_nodes(n, 32, 11);
        let workload: Vec<(NodeId, NodeId)> = (0..if opts.quick { 512 } else { 4096 })
            .map(|i| (hot[i % 32], hot[(i * 7 + 1) % 32]))
            .collect();
        let mut ws = sling_core::QueryWorkspace::new();
        let (_, t_uncached) = time(|| {
            for &(u, v) in &workload {
                std::hint::black_box(index.single_pair_with(&graph, &mut ws, u, v));
            }
        });
        let mut cache = CachedQueries::new(&index, 4096);
        let (_, t_cached) = time(|| {
            for &(u, v) in &workload {
                std::hint::black_box(cache.single_pair(&graph, u, v));
            }
        });
        println!(
            "cache (hot-32 workload)   uncached {:>9}/q   cached {:>9}/q   hit-rate {:.1}%",
            fmt_secs(t_uncached / workload.len() as f64),
            fmt_secs(t_cached / workload.len() as f64),
            100.0 * cache.stats().hit_rate(),
        );

        // Disk-resident queries.
        let path = std::env::temp_dir().join(format!("sling_repro_disk_{}", std::process::id()));
        let store = DiskHpStore::create(&index, &path).unwrap();
        let pairs = sample_pairs(n, if opts.quick { 64 } else { 512 }, 17);
        let (_, t_disk) = time(|| {
            for &(u, v) in &pairs {
                std::hint::black_box(store.single_pair(&graph, u, v).unwrap());
            }
        });
        let (_, t_disk_ss) = time(|| {
            for &u in sources.iter().take(16) {
                std::hint::black_box(store.single_source(&graph, u).unwrap());
            }
        });
        println!(
            "disk store                single-pair {:>9}/q   single-source {:>9}/q   resident {} KB",
            fmt_secs(t_disk / pairs.len() as f64),
            fmt_secs(t_disk_ss / 16.0),
            store.resident_bytes() / 1024,
        );
        std::fs::remove_file(&path).ok();
    }
}
