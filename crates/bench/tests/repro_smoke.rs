//! Smoke test for the `repro` harness: every table/figure subcommand must
//! run to completion in `--quick` mode on the smallest dataset and print
//! its report header. This keeps the reproduction harness from rotting as
//! the library evolves. The heavyweight subcommands are release-only
//! (`--ignored` under debug): a debug-mode power-method ground truth run
//! takes tens of minutes.

use std::process::Command;

fn run(args: &[&str]) -> String {
    let output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro binary runs");
    assert!(
        output.status.success(),
        "repro {args:?} failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8_lossy(&output.stdout).into_owned()
}

#[test]
fn table_reports_run() {
    let out = run(&["table3", "--quick", "--tier", "small"]);
    assert!(out.contains("grqc-sim"), "{out}");
    let out = run(&["table1", "--quick", "--dataset", "as-sim"]);
    assert!(out.to_lowercase().contains("eps"), "{out}");
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "debug-mode repro runs take tens of minutes; run with --release"
)]
fn timing_figures_run() {
    for fig in ["fig1", "fig2", "fig3", "fig4"] {
        let out = run(&[fig, "--quick", "--tier", "small", "--dataset", "as-sim"]);
        assert!(out.contains("as-sim"), "{fig}: {out}");
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "debug-mode repro runs take tens of minutes; run with --release"
)]
fn accuracy_figures_run() {
    for fig in ["fig5", "fig6", "fig7"] {
        let out = run(&[fig, "--quick", "--dataset", "as-sim", "--runs", "1"]);
        assert!(out.contains("as-sim"), "{fig}: {out}");
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "debug-mode repro runs take tens of minutes; run with --release"
)]
fn scale_figures_run() {
    let out = run(&["fig9", "--quick", "--dataset", "as-sim"]);
    assert!(out.contains("as-sim"), "{out}");
    let out = run(&["fig10", "--quick", "--dataset", "as-sim"]);
    assert!(out.contains("as-sim"), "{out}");
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "debug-mode repro runs take tens of minutes; run with --release"
)]
fn extensions_report_runs() {
    let out = run(&["extensions", "--quick", "--dataset", "as-sim"]);
    assert!(out.contains("top-k"), "{out}");
    assert!(out.contains("dynamic"), "{out}");
    assert!(out.contains("disk store"), "{out}");
}

#[test]
fn unknown_command_fails() {
    let output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .arg("figNaN")
        .output()
        .expect("repro binary runs");
    assert!(!output.status.success());
}
