//! Ablation benchmarks for the §5 optimizations and the extension
//! features, the design choices `DESIGN.md` §3 calls out:
//!
//! * space reduction (§5.2) on/off — query cost of recomputing step-1/2
//!   HPs on the fly versus reading them from the index;
//! * accuracy enhancement (§5.3) on/off — the marked-HP expansion's query
//!   overhead;
//! * adaptive (Algorithm 4) vs basic (Algorithm 1) d̃ estimation — build
//!   time;
//! * top-k selection: full sort vs bounded heap vs early-terminating
//!   approximate propagation;
//! * single-pair result caching under a skewed (hot-node) workload.

use criterion::{criterion_group, criterion_main, Criterion};
use sling_bench::{params_for, sample_pairs, sling_config};
use sling_core::cache::CachedQueries;
use sling_core::{QueryWorkspace, SlingIndex};
use sling_graph::datasets::{by_name, Tier};
use sling_graph::NodeId;

fn bench_space_reduction_and_enhancement(c: &mut Criterion) {
    let graph = by_name("grqc-sim").unwrap().build();
    let params = params_for(Tier::Small, Some(0.05));
    let base = sling_config(&params, 42);
    let variants = [
        (
            "baseline",
            base.clone()
                .with_space_reduction(false)
                .with_enhancement(false),
        ),
        (
            "space_reduction",
            base.clone()
                .with_space_reduction(true)
                .with_enhancement(false),
        ),
        (
            "enhancement",
            base.clone()
                .with_space_reduction(false)
                .with_enhancement(true),
        ),
        (
            "both",
            base.clone()
                .with_space_reduction(true)
                .with_enhancement(true),
        ),
    ];
    let pairs = sample_pairs(graph.num_nodes(), 256, 7);
    let mut group = c.benchmark_group("ablation/single_pair_query");
    group.sample_size(20);
    for (name, config) in variants {
        let index = SlingIndex::build(&graph, &config).unwrap();
        let mut ws = QueryWorkspace::new();
        let mut cursor = 0usize;
        group.bench_function(name, |b| {
            b.iter(|| {
                let (u, v) = pairs[cursor % pairs.len()];
                cursor += 1;
                std::hint::black_box(index.single_pair_with(&graph, &mut ws, u, v))
            })
        });
    }
    group.finish();
}

fn bench_dk_estimators(c: &mut Criterion) {
    let graph = by_name("as-sim").unwrap().build();
    let params = params_for(Tier::Small, Some(0.05));
    let mut group = c.benchmark_group("ablation/dk_estimation_build");
    group.sample_size(10);
    for (name, adaptive) in [("algorithm1_basic", false), ("algorithm4_adaptive", true)] {
        let config = sling_config(&params, 42).with_adaptive_dk(adaptive);
        group.bench_function(name, |b| {
            b.iter(|| std::hint::black_box(SlingIndex::build(&graph, &config).unwrap()))
        });
    }
    group.finish();
}

fn bench_topk_strategies(c: &mut Criterion) {
    let graph = by_name("grqc-sim").unwrap().build();
    let params = params_for(Tier::Small, Some(0.05));
    let index = SlingIndex::build(&graph, &sling_config(&params, 42)).unwrap();
    let sources: Vec<NodeId> = (0..32u32)
        .map(|i| NodeId(i * 61 % graph.num_nodes() as u32))
        .collect();
    let k = 50;
    let mut group = c.benchmark_group("ablation/topk");
    group.sample_size(20);
    let mut cursor = 0usize;
    group.bench_function("sort_full", |b| {
        b.iter(|| {
            let u = sources[cursor % sources.len()];
            cursor += 1;
            std::hint::black_box(index.top_k(&graph, u, k))
        })
    });
    let mut cursor = 0usize;
    group.bench_function("heap_select", |b| {
        b.iter(|| {
            let u = sources[cursor % sources.len()];
            cursor += 1;
            std::hint::black_box(index.top_k_heap(&graph, u, k))
        })
    });
    let mut cursor = 0usize;
    group.bench_function("approx_slack_0.01", |b| {
        b.iter(|| {
            let u = sources[cursor % sources.len()];
            cursor += 1;
            std::hint::black_box(index.top_k_approx(&graph, u, k, 0.01))
        })
    });
    group.finish();
}

fn bench_query_cache(c: &mut Criterion) {
    let graph = by_name("grqc-sim").unwrap().build();
    let params = params_for(Tier::Small, Some(0.05));
    let index = SlingIndex::build(&graph, &sling_config(&params, 42)).unwrap();
    // Skewed workload: 32 hot nodes queried against each other repeatedly.
    let hot: Vec<NodeId> = (0..32u32)
        .map(|i| NodeId(i * 17 % graph.num_nodes() as u32))
        .collect();
    let workload: Vec<(NodeId, NodeId)> = (0..1024)
        .map(|i| (hot[i % 32], hot[(i * 7 + 1) % 32]))
        .collect();
    let mut group = c.benchmark_group("ablation/query_cache");
    group.sample_size(20);
    let mut ws = QueryWorkspace::new();
    let mut cursor = 0usize;
    group.bench_function("uncached", |b| {
        b.iter(|| {
            let (u, v) = workload[cursor % workload.len()];
            cursor += 1;
            std::hint::black_box(index.single_pair_with(&graph, &mut ws, u, v))
        })
    });
    let mut cache = CachedQueries::new(&index, 4096);
    let mut cursor = 0usize;
    group.bench_function("lru_cached", |b| {
        b.iter(|| {
            let (u, v) = workload[cursor % workload.len()];
            cursor += 1;
            std::hint::black_box(cache.single_pair(&graph, u, v))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_space_reduction_and_enhancement,
    bench_dk_estimators,
    bench_topk_strategies,
    bench_query_cache
);
criterion_main!(benches);
