//! Streaming vs materializing query kernels — the microbench behind the
//! `BENCH_query.json` baseline (`sling bench-query` is the CLI-level,
//! machine-readable sibling).
//!
//! Measures, on the in-memory and zero-copy mmap backends:
//!
//! * `single_pair/streaming` vs `single_pair/materialized` — the
//!   borrow-from-backend [`sling_core::store::EntryAccess`] kernel with
//!   galloping merge and the restore cache, against the pre-streaming
//!   copy-then-linear-merge reference path;
//! * the same comparison on a hub-pair workload (maximum list-length
//!   skew, the galloping merge's home turf);
//! * `single_source/streaming` vs `single_source/materialized`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sling_bench::{params_for, sample_pairs, sling_config};
use sling_core::single_source::SingleSourceWorkspace;
use sling_core::{QueryEngine, QueryWorkspace, SlingIndex};
use sling_graph::datasets::{by_name, Tier};
use sling_graph::NodeId;

fn bench_query_kernels(c: &mut Criterion) {
    let spec = by_name("as-sim").unwrap();
    let graph = spec.build();
    let params = params_for(Tier::Small, Some(0.1));
    let index = SlingIndex::build(&graph, &sling_config(&params, 11)).unwrap();
    let dir = std::env::temp_dir().join(format!("sling_bench_kernels_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("index.slng");
    index.save(&path).unwrap();

    let mem = index.query_engine();
    let mmap = QueryEngine::open_mmap(&graph, &path).unwrap();

    let n = graph.num_nodes();
    let mixed = sample_pairs(n, 512, 3);
    let hub = graph
        .nodes()
        .max_by_key(|&v| graph.in_degree(v))
        .expect("non-empty graph");
    let hub_pairs: Vec<(NodeId, NodeId)> = (0..512u32)
        .map(|i| (hub, NodeId((i * 131 + 1) % n as u32)))
        .collect();

    for (workload, pairs) in [("mixed", &mixed), ("hub", &hub_pairs)] {
        let mut group = c.benchmark_group(format!("kernels/single_pair_{workload}"));
        for (backend, engine) in [("mem", &mem.erase()), ("mmap", &mmap.erase())] {
            let mut ws = QueryWorkspace::new();
            let mut cursor = 0usize;
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("{backend}/streaming")),
                &(),
                |b, _| {
                    b.iter(|| {
                        let (u, v) = pairs[cursor % pairs.len()];
                        cursor += 1;
                        std::hint::black_box(
                            engine.single_pair_with(&graph, &mut ws, u, v).unwrap(),
                        )
                    })
                },
            );
            let mut cursor = 0usize;
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("{backend}/materialized")),
                &(),
                |b, _| {
                    b.iter(|| {
                        let (u, v) = pairs[cursor % pairs.len()];
                        cursor += 1;
                        std::hint::black_box(
                            engine
                                .single_pair_materialized_with(&graph, &mut ws, u, v)
                                .unwrap(),
                        )
                    })
                },
            );
        }
        group.finish();
    }

    let sources: Vec<NodeId> = (0..64u32).map(|i| NodeId((i * 97) % n as u32)).collect();
    let mut group = c.benchmark_group("kernels/single_source");
    for (backend, engine) in [("mem", &mem.erase()), ("mmap", &mmap.erase())] {
        let mut ws = SingleSourceWorkspace::new();
        let mut out = Vec::new();
        let mut cursor = 0usize;
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{backend}/streaming")),
            &(),
            |b, _| {
                b.iter(|| {
                    let u = sources[cursor % sources.len()];
                    cursor += 1;
                    engine
                        .single_source_with(&graph, &mut ws, u, &mut out)
                        .unwrap();
                    std::hint::black_box(out.len())
                })
            },
        );
        let mut cursor = 0usize;
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{backend}/materialized")),
            &(),
            |b, _| {
                b.iter(|| {
                    let u = sources[cursor % sources.len()];
                    cursor += 1;
                    engine
                        .single_source_materialized_with(&graph, &mut ws, u, &mut out)
                        .unwrap();
                    std::hint::black_box(out.len())
                })
            },
        );
    }
    group.finish();

    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench_query_kernels);
criterion_main!(benches);
