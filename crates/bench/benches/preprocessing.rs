//! Criterion benchmark behind Figure 3: preprocessing cost of each
//! method on one small dataset (ε relaxed to keep iterations quick).

use criterion::{criterion_group, criterion_main, Criterion};
use sling_baselines::linearize::Linearize;
use sling_baselines::monte_carlo::McIndex;
use sling_bench::{params_for, sling_config, C};
use sling_core::SlingIndex;
use sling_graph::datasets::{by_name, Tier};

fn bench_preprocessing(c: &mut Criterion) {
    let spec = by_name("as-sim").unwrap();
    let graph = spec.build();
    let params = params_for(Tier::Small, Some(0.1));

    let mut group = c.benchmark_group("preprocessing/as-sim");
    group.sample_size(10);
    group.bench_function("sling_build", |b| {
        b.iter(|| SlingIndex::build(&graph, &sling_config(&params, 42)).unwrap())
    });
    group.bench_function("linearize_build", |b| {
        b.iter(|| Linearize::build(&graph, &params.lin))
    });
    group.bench_function("mc_build_1000_walks", |b| {
        b.iter(|| McIndex::build(&graph, C, 1000, params.mc_truncation, 42))
    });
    group.finish();
}

criterion_group!(benches, bench_preprocessing);
criterion_main!(benches);
