//! Component-level micro-benchmarks and ablations:
//!
//! * √c-walk sampling throughput;
//! * Algorithm 1 vs Algorithm 4 correction-factor estimation (the §5.1
//!   ablation — the adaptive estimator should win by a wide margin);
//! * Algorithm 2 local-update traversal;
//! * space reduction on vs off at query time (the §5.2 ablation);
//! * accuracy enhancement on vs off at query time (the §5.3 ablation).

use criterion::{criterion_group, criterion_main, Criterion};
use sling_bench::{params_for, sample_pairs, sling_config, C};
use sling_core::correction::estimate_dk;
use sling_core::local_update::collect_from;
use sling_core::walk::{task_rng, WalkEngine};
use sling_core::{QueryWorkspace, SlingIndex};
use sling_graph::datasets::{by_name, Tier};
use sling_graph::NodeId;

fn bench_components(c: &mut Criterion) {
    let spec = by_name("as-sim").unwrap();
    let graph = spec.build();
    let engine = WalkEngine::new(&graph, C);

    let mut group = c.benchmark_group("components");
    group.sample_size(20);

    group.bench_function("sqrt_c_walk_sample", |b| {
        let mut rng = task_rng(1, 1);
        let mut v = 0u32;
        b.iter(|| {
            v = (v + 1) % graph.num_nodes() as u32;
            std::hint::black_box(engine.sample_walk(&mut rng, NodeId(v)).len())
        })
    });

    group.bench_function("dk_algorithm1_fixed", |b| {
        let mut k = 0u32;
        b.iter(|| {
            k = (k + 1) % graph.num_nodes() as u32;
            let mut rng = task_rng(2, k as u64);
            std::hint::black_box(
                estimate_dk(&graph, &engine, &mut rng, NodeId(k), C, 0.02, 1e-4, false).d,
            )
        })
    });

    group.bench_function("dk_algorithm4_adaptive", |b| {
        let mut k = 0u32;
        b.iter(|| {
            k = (k + 1) % graph.num_nodes() as u32;
            let mut rng = task_rng(2, k as u64);
            std::hint::black_box(
                estimate_dk(&graph, &engine, &mut rng, NodeId(k), C, 0.02, 1e-4, true).d,
            )
        })
    });

    group.bench_function("local_update_traversal", |b| {
        let mut k = 0u32;
        b.iter(|| {
            k = (k + 1) % graph.num_nodes() as u32;
            std::hint::black_box(collect_from(&graph, C.sqrt(), 0.003, NodeId(k)).len())
        })
    });

    // Query-time ablations: space reduction and enhancement.
    let params = params_for(Tier::Small, Some(0.05));
    let pairs = sample_pairs(graph.num_nodes(), 256, 9);
    let base = sling_config(&params, 42);
    for (label, cfg) in [
        ("query_plain", base.clone().with_space_reduction(false)),
        ("query_space_reduced", base.clone()),
        ("query_enhanced", base.clone().with_enhancement(true)),
    ] {
        let index = SlingIndex::build(&graph, &cfg).unwrap();
        let mut ws = QueryWorkspace::new();
        let mut cursor = 0usize;
        group.bench_function(label, |b| {
            b.iter(|| {
                let (u, v) = pairs[cursor % pairs.len()];
                cursor += 1;
                std::hint::black_box(index.single_pair_with(&graph, &mut ws, u, v))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_components);
criterion_main!(benches);
