//! Criterion micro-benchmark behind Figure 1: single-pair query latency
//! of SLING (Algorithm 3) vs the Linearize and MC baselines.

use criterion::{criterion_group, criterion_main, Criterion};
use sling_baselines::linearize::Linearize;
use sling_baselines::monte_carlo::McIndex;
use sling_bench::{params_for, sample_pairs, sling_config, C};
use sling_core::{QueryWorkspace, SlingIndex};
use sling_graph::datasets::{by_name, Tier};

fn bench_single_pair(c: &mut Criterion) {
    let spec = by_name("grqc-sim").unwrap();
    let graph = spec.build();
    let params = params_for(Tier::Small, Some(0.05));
    let sling = SlingIndex::build(&graph, &sling_config(&params, 42)).unwrap();
    let lin = Linearize::build(&graph, &params.lin);
    let mc = McIndex::build(&graph, C, 1000, params.mc_truncation, 42);
    let pairs = sample_pairs(graph.num_nodes(), 256, 7);

    let mut group = c.benchmark_group("single_pair/grqc-sim");
    group.sample_size(20);
    let mut ws = QueryWorkspace::new();
    let mut cursor = 0usize;
    group.bench_function("sling_alg3", |b| {
        b.iter(|| {
            let (u, v) = pairs[cursor % pairs.len()];
            cursor += 1;
            std::hint::black_box(sling.single_pair_with(&graph, &mut ws, u, v))
        })
    });
    let mut cursor = 0usize;
    group.bench_function("mc", |b| {
        b.iter(|| {
            let (u, v) = pairs[cursor % pairs.len()];
            cursor += 1;
            std::hint::black_box(mc.single_pair(u, v))
        })
    });
    let mut cursor = 0usize;
    group.bench_function("linearize", |b| {
        b.iter(|| {
            let (u, v) = pairs[cursor % pairs.len()];
            cursor += 1;
            std::hint::black_box(lin.single_pair(&graph, u, v))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_single_pair);
criterion_main!(benches);
