//! Criterion benchmark behind the Table 1 complexity check: single-pair
//! query latency as ε shrinks — the measured curve should scale like
//! `O(1/ε)`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sling_bench::{params_for, sample_pairs, sling_config};
use sling_core::{QueryWorkspace, SlingIndex};
use sling_graph::datasets::{by_name, Tier};

fn bench_eps_scaling(c: &mut Criterion) {
    let spec = by_name("as-sim").unwrap();
    let graph = spec.build();
    let pairs = sample_pairs(graph.num_nodes(), 256, 7);

    let mut group = c.benchmark_group("table1/pair_query_vs_eps");
    group.sample_size(20);
    for eps in [0.2, 0.1, 0.05, 0.025] {
        let params = params_for(Tier::Small, Some(eps));
        let index = SlingIndex::build(&graph, &sling_config(&params, 42)).unwrap();
        let mut ws = QueryWorkspace::new();
        let mut cursor = 0usize;
        group.bench_with_input(BenchmarkId::from_parameter(eps), &eps, |b, _| {
            b.iter(|| {
                let (u, v) = pairs[cursor % pairs.len()];
                cursor += 1;
                std::hint::black_box(index.single_pair_with(&graph, &mut ws, u, v))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_eps_scaling);
criterion_main!(benches);
