//! Criterion benchmark behind Figure 9: multi-threaded index
//! construction. On hosts with a single core the curve is flat; the
//! bench still validates that the parallel path carries no pathological
//! overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sling_bench::{params_for, sling_config};
use sling_core::SlingIndex;
use sling_graph::datasets::{by_name, Tier};

fn bench_parallel_build(c: &mut Criterion) {
    let spec = by_name("as-sim").unwrap();
    let graph = spec.build();
    let params = params_for(Tier::Small, Some(0.1));

    let mut group = c.benchmark_group("fig9/build_threads");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        let cfg = sling_config(&params, 42).with_threads(threads);
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            b.iter(|| SlingIndex::build(&graph, &cfg).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_build);
criterion_main!(benches);
