//! Benchmarks for the extension query types (top-k join, threshold join,
//! dynamic updates, disk-resident queries) — features beyond the paper's
//! evaluation, measured so EXPERIMENTS.md can report their costs.

use criterion::{criterion_group, criterion_main, Criterion};
use sling_bench::{params_for, sling_config};
use sling_core::dynamic::{DynamicConfig, DynamicSling, StalePolicy};
use sling_core::join::JoinStrategy;
use sling_core::out_of_core::DiskHpStore;
use sling_core::SlingIndex;
use sling_graph::datasets::{by_name, Tier};
use sling_graph::NodeId;

fn bench_joins(c: &mut Criterion) {
    let graph = by_name("as-sim").unwrap().build();
    let params = params_for(Tier::Small, Some(0.05));
    let index = SlingIndex::build(&graph, &sling_config(&params, 42)).unwrap();
    let mut group = c.benchmark_group("extensions/threshold_join");
    group.sample_size(10);
    for (name, strategy) in [
        ("per_source", JoinStrategy::PerSource),
        ("inverted_lists", JoinStrategy::InvertedLists),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| std::hint::black_box(index.threshold_join(&graph, 0.1, strategy).unwrap()))
        });
    }
    group.finish();
}

fn bench_dynamic_updates(c: &mut Criterion) {
    let graph = by_name("as-sim").unwrap().build();
    let params = params_for(Tier::Small, Some(0.05));
    let n = graph.num_nodes() as u32;
    let mut group = c.benchmark_group("extensions/dynamic");
    group.sample_size(10);
    group.bench_function("update_and_tainted_query_mc", |b| {
        let mut cfg = DynamicConfig::new(sling_config(&params, 42));
        cfg.policy = StalePolicy::MonteCarloFallback { delta: 1e-4 };
        cfg.rebuild_fraction = f64::INFINITY;
        let mut idx = DynamicSling::new(&graph, cfg).unwrap();
        let mut i = 0u32;
        b.iter(|| {
            let (u, v) = (i % n, (i * 7 + 1) % n);
            i += 1;
            // Toggle an edge and immediately query near it.
            if !idx.insert_edge(NodeId(u), NodeId(v)).unwrap() {
                idx.remove_edge(NodeId(u), NodeId(v)).unwrap();
            }
            std::hint::black_box(idx.single_pair(NodeId(v), NodeId((v + 1) % n)).unwrap())
        })
    });
    group.bench_function("untainted_query_after_update", |b| {
        let mut cfg = DynamicConfig::new(sling_config(&params, 42));
        cfg.policy = StalePolicy::ServeStale;
        cfg.rebuild_fraction = f64::INFINITY;
        let mut idx = DynamicSling::new(&graph, cfg).unwrap();
        idx.insert_edge(NodeId(0), NodeId(1)).unwrap();
        let mut i = 0u32;
        b.iter(|| {
            let (u, v) = (i % n, (i * 13 + 3) % n);
            i += 1;
            std::hint::black_box(idx.single_pair(NodeId(u), NodeId(v)).unwrap())
        })
    });
    group.finish();
}

fn bench_disk_store(c: &mut Criterion) {
    let graph = by_name("as-sim").unwrap().build();
    let params = params_for(Tier::Small, Some(0.05));
    let index = SlingIndex::build(&graph, &sling_config(&params, 42)).unwrap();
    let path = std::env::temp_dir().join(format!("sling_bench_disk_{}", std::process::id()));
    let store = DiskHpStore::create(&index, &path).unwrap();
    let n = graph.num_nodes() as u32;
    let mut group = c.benchmark_group("extensions/out_of_core_query");
    group.sample_size(20);
    let mut i = 0u32;
    group.bench_function("disk_single_pair", |b| {
        b.iter(|| {
            let (u, v) = (i % n, (i * 31 + 5) % n);
            i += 1;
            std::hint::black_box(store.single_pair(&graph, NodeId(u), NodeId(v)).unwrap())
        })
    });
    let mut i = 0u32;
    group.bench_function("disk_single_source", |b| {
        b.iter(|| {
            let u = i % n;
            i += 1;
            std::hint::black_box(store.single_source(&graph, NodeId(u)).unwrap())
        })
    });
    group.finish();
    std::fs::remove_file(&path).ok();
}

criterion_group!(
    benches,
    bench_joins,
    bench_dynamic_updates,
    bench_disk_store
);
criterion_main!(benches);
