//! Storage-backend comparison: the same persisted index served by the
//! in-memory arena, the zero-copy mmap view, the raw positioned-read
//! disk store, the LRU-buffered disk store — and the block-compressed
//! `SLNGIDX2` variants (mmap + disk, lossless and quantized). Reports
//! the on-disk footprint of each format up front, then measures
//! single-pair and single-source latency per backend: the price of each
//! residency profile, and the benchmark behind both the §5.4 claim that
//! queries stay cheap out of core and the ROADMAP claim that compressed
//! payloads keep decode-on-read cheap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sling_bench::{params_for, sample_pairs, sling_config};
use sling_core::codec::CompressOptions;
use sling_core::disk_query::BufferedDiskStore;
use sling_core::out_of_core::DiskHpStore;
use sling_core::single_source::SingleSourceWorkspace;
use sling_core::{inspect_file, HpStore, QueryEngine, QueryWorkspace, SlingIndex};
use sling_graph::datasets::{by_name, Tier};
use sling_graph::NodeId;

fn bench_backends(c: &mut Criterion) {
    let spec = by_name("as-sim").unwrap();
    let graph = spec.build();
    let params = params_for(Tier::Small, Some(0.1));
    let index = SlingIndex::build(&graph, &sling_config(&params, 11)).unwrap();

    let dir = std::env::temp_dir().join(format!("sling_bench_backends_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("index.slng");
    index.save(&path).unwrap();
    let v2_path = dir.join("index.slng2");
    index
        .save_v2(&v2_path, &CompressOptions::default())
        .unwrap();
    let v2q_path = dir.join("index.q.slng2");
    index
        .save_v2(
            &v2q_path,
            &CompressOptions {
                quantize_values: true,
                ..CompressOptions::default()
            },
        )
        .unwrap();

    // Footprint report: what each format costs on disk for the same
    // entries (the quantity `sling compact`/`sling inspect` manage).
    for (label, p) in [
        ("v1 raw", &path),
        ("v2 lossless", &v2_path),
        ("v2 quantized", &v2q_path),
    ] {
        let info = inspect_file(p).unwrap();
        eprintln!(
            "backends: {label:>12}: {} payload bytes ({:.1}% of raw), {} total",
            info.payload_bytes,
            info.compression_ratio() * 100.0,
            info.total_bytes,
        );
    }

    let mem = index.query_engine();
    let mmap = QueryEngine::open_mmap(&graph, &path).unwrap();
    let mmap_v2 = QueryEngine::open_mmap_compressed(&graph, &v2_path).unwrap();
    let mmap_v2q = QueryEngine::open_mmap_compressed(&graph, &v2q_path).unwrap();
    let disk = DiskHpStore::open(&graph, &path).unwrap();
    let disk_engine = disk.query_engine();
    let disk_v2 = DiskHpStore::open(&graph, &v2_path).unwrap();
    let disk_v2_engine = disk_v2.query_engine();
    let buffered = BufferedDiskStore::new(&disk, 1 << 20);
    let buffered_engine = buffered.query_engine();
    let engines: [(&str, QueryEngine<'_, &dyn HpStore>); 7] = [
        ("mem", mem.erase()),
        ("mmap", mmap.erase()),
        ("mmap_compressed", mmap_v2.erase()),
        ("mmap_quantized", mmap_v2q.erase()),
        ("disk", disk_engine.erase()),
        ("disk_compressed", disk_v2_engine.erase()),
        ("disk_buffered", buffered_engine.erase()),
    ];

    let pairs = sample_pairs(graph.num_nodes(), 512, 3);

    let mut group = c.benchmark_group("backends/single_pair");
    for (label, engine) in &engines {
        let mut ws = QueryWorkspace::new();
        let mut cursor = 0usize;
        group.bench_with_input(BenchmarkId::from_parameter(label), &(), |b, _| {
            b.iter(|| {
                let (u, v) = pairs[cursor % pairs.len()];
                cursor += 1;
                std::hint::black_box(engine.single_pair_with(&graph, &mut ws, u, v).unwrap())
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("backends/single_source");
    let sources: Vec<NodeId> = (0..64u32)
        .map(|i| NodeId((i * 97) % graph.num_nodes() as u32))
        .collect();
    for (label, engine) in &engines {
        let mut ws = SingleSourceWorkspace::new();
        let mut out = Vec::new();
        let mut cursor = 0usize;
        group.bench_with_input(BenchmarkId::from_parameter(label), &(), |b, _| {
            b.iter(|| {
                let u = sources[cursor % sources.len()];
                cursor += 1;
                engine
                    .single_source_with(&graph, &mut ws, u, &mut out)
                    .unwrap();
                std::hint::black_box(out.len())
            })
        });
    }
    group.finish();

    drop(engines);
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench_backends);
criterion_main!(benches);
