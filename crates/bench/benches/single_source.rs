//! Criterion micro-benchmark behind Figure 2: single-source latency of
//! SLING's Algorithm 6 vs Algorithm-3-per-node vs Linearize.

use criterion::{criterion_group, criterion_main, Criterion};
use sling_baselines::linearize::Linearize;
use sling_bench::{params_for, sample_nodes, sling_config};
use sling_core::single_source::SingleSourceWorkspace;
use sling_core::SlingIndex;
use sling_graph::datasets::{by_name, Tier};

fn bench_single_source(c: &mut Criterion) {
    let spec = by_name("as-sim").unwrap();
    let graph = spec.build();
    let params = params_for(Tier::Small, Some(0.05));
    let sling = SlingIndex::build(&graph, &sling_config(&params, 42)).unwrap();
    let lin = Linearize::build(&graph, &params.lin);
    let sources = sample_nodes(graph.num_nodes(), 64, 3);

    let mut group = c.benchmark_group("single_source/as-sim");
    group.sample_size(10);
    let mut ws = SingleSourceWorkspace::new();
    let mut out = Vec::new();
    let mut cursor = 0usize;
    group.bench_function("sling_alg6", |b| {
        b.iter(|| {
            let u = sources[cursor % sources.len()];
            cursor += 1;
            sling.single_source_with(&graph, &mut ws, u, &mut out);
            std::hint::black_box(out[0])
        })
    });
    let mut cursor = 0usize;
    group.bench_function("linearize", |b| {
        b.iter(|| {
            let u = sources[cursor % sources.len()];
            cursor += 1;
            std::hint::black_box(lin.single_source(&graph, u))
        })
    });
    let mut cursor = 0usize;
    group.bench_function("sling_alg3_per_node", |b| {
        b.iter(|| {
            let u = sources[cursor % sources.len()];
            cursor += 1;
            std::hint::black_box(sling.single_source_via_pairs(&graph, u))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_single_source);
criterion_main!(benches);
