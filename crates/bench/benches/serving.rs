//! Concurrent serving benchmark: hot-key single-pair throughput of one
//! shared engine behind the sharded result cache, swept over worker
//! counts — the cache-and-share regime a SkyServer-style skewed query
//! stream puts a long-lived server in. The cached groups should scale
//! with workers (lock-per-shard, hits are a map probe); the uncached
//! group shows the price of recomputing Algorithm 3 per request. On a
//! single-core machine the sweep degenerates to flat times — the
//! per-worker spread only appears with real parallelism.

use std::sync::atomic::{AtomicUsize, Ordering};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sling_bench::{params_for, sample_pairs, sling_config};
use sling_core::{QueryWorkspace, ShardedResultCache, SharedEngine, SlingIndex};
use sling_graph::datasets::{by_name, Tier};
use sling_graph::NodeId;

/// Requests processed per measured iteration (split across workers).
const REQUESTS: usize = 4096;
/// Hot keys dominating the stream (SkyServer-style skew).
const HOT_KEYS: usize = 64;

fn run_workload(
    engine: &SharedEngine<sling_core::hp::HpArena>,
    graph: &sling_graph::DiGraph,
    hot: &[(NodeId, NodeId)],
    workers: usize,
    cache: Option<&ShardedResultCache>,
) -> f64 {
    let cursor = AtomicUsize::new(0);
    let acc: f64 = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let cursor = &cursor;
                s.spawn(move || {
                    let mut ws = QueryWorkspace::new();
                    let mut local = 0.0f64;
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= REQUESTS {
                            break local;
                        }
                        let (u, v) = hot[(i * 7 + i / HOT_KEYS) % hot.len()];
                        local += match cache {
                            Some(cache) => engine
                                .single_pair_cached(graph, &mut ws, cache, u, v)
                                .unwrap(),
                            None => engine.single_pair_with(graph, &mut ws, u, v).unwrap(),
                        };
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    acc
}

fn bench_serving(c: &mut Criterion) {
    let spec = by_name("as-sim").unwrap();
    let graph = spec.build();
    let params = params_for(Tier::Small, Some(0.1));
    let index = SlingIndex::build(&graph, &sling_config(&params, 23)).unwrap();
    let engine = index.into_shared_engine();
    let hot: Vec<(NodeId, NodeId)> = sample_pairs(graph.num_nodes(), HOT_KEYS, 7);

    let mut group = c.benchmark_group("serving/hot_key_throughput");
    for workers in [1usize, 2, 4, 8] {
        // Warm shared cache: steady-state hit-dominated serving.
        let cache = ShardedResultCache::new(1 << 14, 16);
        run_workload(&engine, &graph, &hot, 1, Some(&cache)); // warm-up
        group.bench_with_input(
            BenchmarkId::new("cached", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    std::hint::black_box(run_workload(&engine, &graph, &hot, workers, Some(&cache)))
                })
            },
        );
        // No cache: every request recomputes Algorithm 3.
        group.bench_with_input(
            BenchmarkId::new("uncached", workers),
            &workers,
            |b, &workers| {
                b.iter(|| std::hint::black_box(run_workload(&engine, &graph, &hot, workers, None)))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_serving);
criterion_main!(benches);
