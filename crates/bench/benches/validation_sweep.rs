//! The branchless lane-striped validation sweeps, measured where they
//! actually run: on every `entries_ref` of the zero-copy mmap backend
//! (raw node/value section sweep) and on every block-cache miss of the
//! compressed backend (post-decode column sweep).
//!
//! Three hub-pair series isolate the cost:
//!
//! * `mem` — no validation (columns were checked at decode), the floor;
//! * `mmap` — the raw little-endian sweep runs over the hub's sections
//!   on every query, so the delta to `mem` is sweep throughput;
//! * `mmap-compressed` — small blocks force decoded-block cache misses,
//!   so decode + column sweeps dominate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sling_bench::{params_for, sling_config};
use sling_core::codec::CompressOptions;
use sling_core::{QueryEngine, QueryWorkspace, SlingIndex};
use sling_graph::datasets::{by_name, Tier};
use sling_graph::NodeId;

fn bench_validation_sweep(c: &mut Criterion) {
    let spec = by_name("as-sim").unwrap();
    let graph = spec.build();
    let params = params_for(Tier::Small, Some(0.1));
    let index = SlingIndex::build(&graph, &sling_config(&params, 11)).unwrap();
    let dir = std::env::temp_dir().join(format!("sling_bench_sweep_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let raw_path = dir.join("index.slng");
    index.save(&raw_path).unwrap();
    let v3_path = dir.join("index.slng3");
    // Small blocks: many distinct blocks per hub run, so the pair sweep
    // below thrashes the decoded-block cache and pays decode+validate.
    let opts = CompressOptions {
        block_entries: 512,
        quantize_values: false,
    };
    index.save_v3(&v3_path, &opts).unwrap();

    let mem = index.query_engine();
    let mmap = QueryEngine::open_mmap(&graph, &raw_path).unwrap();
    let compressed = QueryEngine::open_mmap_compressed(&graph, &v3_path).unwrap();

    let n = graph.num_nodes() as u32;
    let hub = graph
        .nodes()
        .max_by_key(|&v| graph.in_degree(v))
        .expect("non-empty graph");
    let pairs: Vec<(NodeId, NodeId)> = (0..512u32)
        .map(|i| (hub, NodeId((i * 131 + 1) % n)))
        .collect();

    let mut group = c.benchmark_group("validation_sweep/hub_pair");
    for (backend, engine) in [
        ("mem", &mem.erase()),
        ("mmap", &mmap.erase()),
        ("mmap-compressed", &compressed.erase()),
    ] {
        let mut ws = QueryWorkspace::new();
        let mut cursor = 0usize;
        group.bench_with_input(BenchmarkId::from_parameter(backend), &(), |b, _| {
            b.iter(|| {
                let (u, v) = pairs[cursor % pairs.len()];
                cursor += 1;
                std::hint::black_box(engine.single_pair_with(&graph, &mut ws, u, v).unwrap())
            })
        });
    }
    group.finish();

    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench_validation_sweep);
criterion_main!(benches);
