//! Degree-distribution summaries.
//!
//! The dataset report (`repro table3`) and the CLI's `stats` subcommand
//! print these to show that the synthetic Table-3 analogues reproduce the
//! degree-distribution *family* of the datasets they stand in for
//! (heavy-tailed for the web/social graphs, near-Poisson for the AS-style
//! topologies). See `DESIGN.md` §6.

use crate::digraph::DiGraph;
use crate::node::NodeId;

/// Which adjacency a distribution summarizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DegreeKind {
    /// In-degrees `|I(v)|`.
    In,
    /// Out-degrees.
    Out,
}

/// Summary of one degree distribution.
#[derive(Clone, Debug)]
pub struct DegreeDistribution {
    /// Which adjacency was summarized.
    pub kind: DegreeKind,
    /// Sorted degree sequence (ascending).
    degrees: Vec<usize>,
}

impl DegreeDistribution {
    /// Compute the distribution in `O(n log n)`.
    pub fn compute(g: &DiGraph, kind: DegreeKind) -> Self {
        let mut degrees: Vec<usize> = (0..g.num_nodes())
            .map(|i| {
                let v = NodeId::from_index(i);
                match kind {
                    DegreeKind::In => g.in_degree(v),
                    DegreeKind::Out => g.out_degree(v),
                }
            })
            .collect();
        degrees.sort_unstable();
        DegreeDistribution { kind, degrees }
    }

    /// Number of nodes summarized.
    pub fn len(&self) -> usize {
        self.degrees.len()
    }

    /// Whether the graph had no nodes.
    pub fn is_empty(&self) -> bool {
        self.degrees.is_empty()
    }

    /// Mean degree (0 for an empty graph).
    pub fn mean(&self) -> f64 {
        if self.degrees.is_empty() {
            return 0.0;
        }
        self.degrees.iter().sum::<usize>() as f64 / self.degrees.len() as f64
    }

    /// The `q`-quantile (`q ∈ [0, 1]`) by the nearest-rank method.
    pub fn quantile(&self, q: f64) -> usize {
        if self.degrees.is_empty() {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.degrees.len() as f64).ceil() as usize).max(1) - 1;
        self.degrees[rank.min(self.degrees.len() - 1)]
    }

    /// Median degree.
    pub fn median(&self) -> usize {
        self.quantile(0.5)
    }

    /// Largest degree.
    pub fn max(&self) -> usize {
        self.degrees.last().copied().unwrap_or(0)
    }

    /// Gini coefficient of the degree sequence — 0 for perfectly uniform
    /// degrees, approaching 1 for extreme concentration. Heavy-tailed
    /// (power-law-like) graphs land well above ER graphs of the same
    /// density, which is how the dataset suite's family claims are checked.
    pub fn gini(&self) -> f64 {
        let n = self.degrees.len();
        let total: usize = self.degrees.iter().sum();
        if n == 0 || total == 0 {
            return 0.0;
        }
        // With the sequence sorted ascending:
        // G = (2 * Σ_i i*x_i) / (n * Σ x_i) - (n + 1) / n, i is 1-based.
        let weighted: f64 = self
            .degrees
            .iter()
            .enumerate()
            .map(|(i, &x)| (i + 1) as f64 * x as f64)
            .sum();
        (2.0 * weighted) / (n as f64 * total as f64) - (n as f64 + 1.0) / n as f64
    }

    /// Histogram as `(degree, count)` pairs for each distinct degree,
    /// ascending.
    pub fn histogram(&self) -> Vec<(usize, usize)> {
        let mut out: Vec<(usize, usize)> = Vec::new();
        for &d in &self.degrees {
            match out.last_mut() {
                Some((deg, cnt)) if *deg == d => *cnt += 1,
                _ => out.push((d, 1)),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{barabasi_albert, erdos_renyi_directed, star_graph};

    #[test]
    fn star_in_distribution() {
        // star_graph(5) is an in-star: leaves 1..4 each point at hub 0.
        let g = star_graph(5);
        let d = DegreeDistribution::compute(&g, DegreeKind::In);
        assert_eq!(d.len(), 5);
        assert_eq!(d.max(), 4);
        assert_eq!(d.median(), 0);
        assert!((d.mean() - 4.0 / 5.0).abs() < 1e-12);
        assert_eq!(d.histogram(), vec![(0, 4), (4, 1)]);
    }

    #[test]
    fn quantiles_nearest_rank() {
        // Out-degrees of the in-star: hub 0, each leaf 1 => sorted [0,1,1,1,1].
        let g = star_graph(5);
        let d = DegreeDistribution::compute(&g, DegreeKind::Out);
        assert_eq!(d.quantile(0.0), 0);
        assert_eq!(d.quantile(0.2), 0);
        assert_eq!(d.quantile(0.8), 1);
        assert_eq!(d.quantile(1.0), 1);
    }

    #[test]
    fn gini_zero_for_uniform() {
        let g = crate::generators::cycle_graph(10);
        let d = DegreeDistribution::compute(&g, DegreeKind::In);
        assert!(d.gini().abs() < 1e-12);
    }

    #[test]
    fn gini_detects_heavy_tail() {
        // Preferential attachment should concentrate in-degree far more
        // than a uniform random graph of similar density.
        let ba = barabasi_albert(2000, 4, 11).unwrap();
        let er = erdos_renyi_directed(2000, ba.num_edges(), 11).unwrap();
        let g_ba = DegreeDistribution::compute(&ba, DegreeKind::In).gini();
        let g_er = DegreeDistribution::compute(&er, DegreeKind::In).gini();
        assert!(
            g_ba > g_er + 0.1,
            "BA gini {g_ba:.3} not clearly above ER gini {g_er:.3}"
        );
    }

    #[test]
    fn empty_graph_is_all_zeros() {
        let g = DiGraph::from_edges(0, Vec::<(u32, u32)>::new());
        let d = DegreeDistribution::compute(&g, DegreeKind::In);
        assert!(d.is_empty());
        assert_eq!(d.mean(), 0.0);
        assert_eq!(d.max(), 0);
        assert_eq!(d.gini(), 0.0);
        assert!(d.histogram().is_empty());
    }
}
