//! Weighted directed graphs.
//!
//! The SimRank model of the SLING paper is unweighted, but two of the §8
//! variants are not: SimRank++ reweights a click graph by edge weights
//! and their variance, and many of the motivating applications (query–ad
//! graphs, rating graphs) are naturally weighted. [`WDiGraph`] mirrors
//! [`DiGraph`] — immutable CSR in both directions — with a parallel `f64`
//! weight per edge.

use crate::csr::Csr;
use crate::digraph::DiGraph;
use crate::error::GraphError;
use crate::fxhash::FxHashMap;
use crate::node::NodeId;

/// One direction of weighted adjacency: a [`Csr`] plus per-edge weights
/// aligned with its target array.
#[derive(Clone, Debug, PartialEq)]
struct WAdj {
    csr: Csr,
    weights: Vec<f64>,
}

impl WAdj {
    fn edges_of(&self, v: NodeId) -> (&[NodeId], &[f64]) {
        let lo = self.csr.offsets()[v.index()];
        let hi = self.csr.offsets()[v.index() + 1];
        (&self.csr.targets()[lo..hi], &self.weights[lo..hi])
    }
}

/// Immutable weighted directed graph (CSR in both directions).
#[derive(Clone, Debug, PartialEq)]
pub struct WDiGraph {
    out: WAdj,
    inn: WAdj,
}

/// Mutable accumulator for [`WDiGraph`]. Parallel edges are merged by
/// **summing** their weights (the natural semantics for click/rating
/// counts); self-loops are dropped, matching the SimRank model.
#[derive(Clone, Debug, Default)]
pub struct WGraphBuilder {
    n: usize,
    edges: FxHashMap<(u32, u32), f64>,
}

impl WGraphBuilder {
    /// Builder over a fixed node count.
    pub fn with_nodes(n: usize) -> Self {
        WGraphBuilder {
            n,
            edges: FxHashMap::default(),
        }
    }

    /// Add (or accumulate onto) the weighted edge `u -> v`.
    pub fn add_edge(&mut self, u: impl Into<NodeId>, v: impl Into<NodeId>, w: f64) {
        let (u, v) = (u.into(), v.into());
        if u == v {
            return;
        }
        *self.edges.entry((u.0, v.0)).or_insert(0.0) += w;
    }

    /// Number of distinct edges accumulated so far.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Freeze into a [`WDiGraph`].
    pub fn build(self) -> Result<WDiGraph, GraphError> {
        if self.n > u32::MAX as usize {
            return Err(GraphError::NodeIdOverflow(self.n));
        }
        let n = self.n as u32;
        for (&(u, v), &w) in &self.edges {
            if u >= n || v >= n {
                return Err(GraphError::NodeOutOfRange { node: u.max(v), n });
            }
            if !(w.is_finite() && w > 0.0) {
                return Err(GraphError::InvalidGenerator(format!(
                    "edge ({u}, {v}) has non-positive or non-finite weight {w}"
                )));
            }
        }
        let mut fwd: Vec<(u32, u32, f64)> =
            self.edges.iter().map(|(&(u, v), &w)| (u, v, w)).collect();
        fwd.sort_unstable_by_key(|&(u, v, _)| (u, v));
        let mut bwd: Vec<(u32, u32, f64)> = fwd.iter().map(|&(u, v, w)| (v, u, w)).collect();
        bwd.sort_unstable_by_key(|&(u, v, _)| (u, v));
        let assemble = |list: &[(u32, u32, f64)]| -> WAdj {
            let mut offsets = Vec::with_capacity(self.n + 1);
            let mut targets = Vec::with_capacity(list.len());
            let mut weights = Vec::with_capacity(list.len());
            offsets.push(0);
            let mut cur = 0u32;
            for &(u, v, w) in list {
                while cur < u {
                    offsets.push(targets.len());
                    cur += 1;
                }
                targets.push(NodeId(v));
                weights.push(w);
            }
            while offsets.len() < self.n + 1 {
                offsets.push(targets.len());
            }
            WAdj {
                csr: Csr::from_parts(offsets, targets),
                weights,
            }
        };
        Ok(WDiGraph {
            out: assemble(&fwd),
            inn: assemble(&bwd),
        })
    }
}

impl WDiGraph {
    /// Lift an unweighted graph to unit weights.
    pub fn from_digraph(g: &DiGraph) -> Self {
        let mut b = WGraphBuilder::with_nodes(g.num_nodes());
        for (u, v) in g.edges() {
            b.add_edge(u, v, 1.0);
        }
        b.build().expect("unweighted lift is always valid")
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.out.csr.num_nodes()
    }

    /// Number of weighted directed edges.
    pub fn num_edges(&self) -> usize {
        self.out.csr.num_edges()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.num_nodes() as u32).map(NodeId)
    }

    /// Out-edges of `v`: sorted targets and aligned weights.
    pub fn out_edges(&self, v: NodeId) -> (&[NodeId], &[f64]) {
        self.out.edges_of(v)
    }

    /// In-edges of `v`: sorted sources and aligned weights.
    pub fn in_edges(&self, v: NodeId) -> (&[NodeId], &[f64]) {
        self.inn.edges_of(v)
    }

    /// `|I(v)|`.
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.inn.csr.degree(v)
    }

    /// Out-degree of `v`.
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.out.csr.degree(v)
    }

    /// Weight of edge `u -> v`, or `None` if absent.
    pub fn weight(&self, u: NodeId, v: NodeId) -> Option<f64> {
        let (targets, weights) = self.out.edges_of(u);
        targets.binary_search(&v).ok().map(|pos| weights[pos])
    }

    /// Total in-weight `Σ_{x ∈ I(v)} w(x, v)`.
    pub fn in_weight(&self, v: NodeId) -> f64 {
        self.inn.edges_of(v).1.iter().sum()
    }

    /// Forget the weights.
    pub fn to_digraph(&self) -> DiGraph {
        DiGraph::from_edges(
            self.num_nodes(),
            self.out.csr.iter_edges().map(|(u, v)| (u.0, v.0)),
        )
    }

    /// Structural sanity check used by tests.
    pub fn validate(&self) -> bool {
        self.out.csr.validate()
            && self.inn.csr.validate()
            && self.out.weights.len() == self.out.csr.num_edges()
            && self.inn.weights.len() == self.inn.csr.num_edges()
            && self
                .out
                .weights
                .iter()
                .chain(&self.inn.weights)
                .all(|w| w.is_finite() && *w > 0.0)
            && self.out.csr.transpose() == self.inn.csr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::complete_graph;

    fn toy() -> WDiGraph {
        let mut b = WGraphBuilder::with_nodes(4);
        b.add_edge(0u32, 1u32, 2.0);
        b.add_edge(0u32, 2u32, 1.0);
        b.add_edge(3u32, 1u32, 4.0);
        b.add_edge(0u32, 1u32, 1.0); // merges with the first: weight 3
        b.add_edge(2u32, 2u32, 9.0); // self-loop dropped
        b.build().unwrap()
    }

    #[test]
    fn builder_merges_and_drops() {
        let g = toy();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.weight(NodeId(0), NodeId(1)), Some(3.0));
        assert_eq!(g.weight(NodeId(0), NodeId(2)), Some(1.0));
        assert_eq!(g.weight(NodeId(2), NodeId(2)), None);
        assert!(g.validate());
    }

    #[test]
    fn in_edges_are_transposed_with_weights() {
        let g = toy();
        let (sources, weights) = g.in_edges(NodeId(1));
        assert_eq!(sources, &[NodeId(0), NodeId(3)]);
        assert_eq!(weights, &[3.0, 4.0]);
        assert_eq!(g.in_weight(NodeId(1)), 7.0);
        assert_eq!(g.in_degree(NodeId(1)), 2);
        assert_eq!(g.out_degree(NodeId(0)), 2);
    }

    #[test]
    fn rejects_bad_weights_and_nodes() {
        let mut b = WGraphBuilder::with_nodes(2);
        b.add_edge(0u32, 1u32, -1.0);
        assert!(b.build().is_err());
        let mut b = WGraphBuilder::with_nodes(2);
        b.add_edge(0u32, 1u32, f64::NAN);
        assert!(b.build().is_err());
        let mut b = WGraphBuilder::with_nodes(2);
        b.add_edge(0u32, 5u32, 1.0);
        assert!(b.build().is_err());
    }

    #[test]
    fn digraph_roundtrip() {
        let g = complete_graph(5);
        let wg = WDiGraph::from_digraph(&g);
        assert_eq!(wg.num_edges(), g.num_edges());
        for v in g.nodes() {
            let (targets, weights) = wg.out_edges(v);
            assert_eq!(targets, g.out_neighbors(v));
            assert!(weights.iter().all(|&w| w == 1.0));
        }
        let back = wg.to_digraph();
        assert!(back.edges().eq(g.edges()));
    }

    #[test]
    fn empty_and_isolated_nodes() {
        let g = WGraphBuilder::with_nodes(3).build().unwrap();
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.in_edges(NodeId(2)).0.len(), 0);
        assert_eq!(g.in_weight(NodeId(0)), 0.0);
        assert!(g.validate());
    }
}
