//! Mutable edge accumulator producing immutable [`DiGraph`]s.

use crate::csr::Csr;
use crate::digraph::DiGraph;
use crate::error::GraphError;
use crate::node::NodeId;

/// Accumulates edges, then freezes them into a [`DiGraph`].
///
/// The builder:
/// * grows the node count automatically to cover every referenced id,
/// * deduplicates parallel edges at [`GraphBuilder::build`] time,
/// * optionally removes self-loops (SimRank's `I(v)` is a *set*, and the
///   standard formulation assumes simple graphs; self-loops are kept only
///   if explicitly requested),
/// * can symmetrize, which inserts the reverse of every edge — this is how
///   the paper treats its undirected datasets.
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    edges: Vec<(NodeId, NodeId)>,
    n: usize,
    keep_self_loops: bool,
    symmetric: bool,
}

impl GraphBuilder {
    /// New builder with no nodes or edges.
    pub fn new() -> Self {
        Self::default()
    }

    /// New builder pre-sized for `n` nodes (ids `0..n` all exist even if
    /// isolated).
    pub fn with_nodes(n: usize) -> Self {
        GraphBuilder {
            n,
            ..Self::default()
        }
    }

    /// Keep self-loops instead of dropping them (default: drop).
    pub fn keep_self_loops(mut self, keep: bool) -> Self {
        self.keep_self_loops = keep;
        self
    }

    /// Treat the edge set as undirected: every added edge also inserts its
    /// reverse at build time.
    pub fn symmetric(mut self, sym: bool) -> Self {
        self.symmetric = sym;
        self
    }

    /// Number of nodes currently covered.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of raw (possibly duplicate) edges added so far.
    pub fn num_raw_edges(&self) -> usize {
        self.edges.len()
    }

    /// Add a directed edge `u -> v`, growing the node count as needed.
    pub fn add_edge(&mut self, u: impl Into<NodeId>, v: impl Into<NodeId>) {
        let (u, v) = (u.into(), v.into());
        self.n = self.n.max(u.index() + 1).max(v.index() + 1);
        self.edges.push((u, v));
    }

    /// Add many edges at once.
    pub fn extend_edges<I>(&mut self, edges: I)
    where
        I: IntoIterator<Item = (u32, u32)>,
    {
        for (u, v) in edges {
            self.add_edge(u, v);
        }
    }

    /// Freeze into an immutable [`DiGraph`].
    ///
    /// Sorts and deduplicates the edge list; cost `O(m log m)`.
    pub fn build(self) -> Result<DiGraph, GraphError> {
        if self.n > u32::MAX as usize {
            return Err(GraphError::NodeIdOverflow(self.n));
        }
        let mut edges = self.edges;
        if self.symmetric {
            let rev: Vec<_> = edges.iter().map(|&(u, v)| (v, u)).collect();
            edges.extend(rev);
        }
        if !self.keep_self_loops {
            edges.retain(|&(u, v)| u != v);
        }
        edges.sort_unstable();
        edges.dedup();

        let n = self.n;
        let mut offsets = vec![0usize; n + 1];
        for &(u, _) in &edges {
            offsets[u.index() + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let targets: Vec<NodeId> = edges.iter().map(|&(_, v)| v).collect();
        let out = Csr::from_parts(offsets, targets);
        let inn = out.transpose();
        Ok(DiGraph::from_csr(out, inn))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedups_parallel_edges_and_drops_self_loops() {
        let mut b = GraphBuilder::new();
        b.add_edge(0u32, 1u32);
        b.add_edge(0u32, 1u32);
        b.add_edge(2u32, 2u32); // self loop, dropped
        b.add_edge(1u32, 0u32);
        let g = b.build().unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.out_neighbors(NodeId(0)), &[NodeId(1)]);
        assert_eq!(g.in_neighbors(NodeId(0)), &[NodeId(1)]);
    }

    #[test]
    fn keep_self_loops_opt_in() {
        let mut b = GraphBuilder::new().keep_self_loops(true);
        b.add_edge(0u32, 0u32);
        b.add_edge(0u32, 1u32);
        let g = b.build().unwrap();
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(NodeId(0), NodeId(0)));
    }

    #[test]
    fn symmetric_inserts_reverse_edges() {
        let mut b = GraphBuilder::new().symmetric(true);
        b.add_edge(0u32, 1u32);
        b.add_edge(1u32, 2u32);
        let g = b.build().unwrap();
        assert_eq!(g.num_edges(), 4);
        assert!(g.has_edge(NodeId(1), NodeId(0)));
        assert!(g.has_edge(NodeId(2), NodeId(1)));
        // in == out degree for every node of a symmetric graph
        for v in g.nodes() {
            assert_eq!(g.in_degree(v), g.out_degree(v));
        }
    }

    #[test]
    fn with_nodes_keeps_isolated_nodes() {
        let mut b = GraphBuilder::with_nodes(5);
        b.add_edge(0u32, 1u32);
        let g = b.build().unwrap();
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.in_degree(NodeId(4)), 0);
        assert_eq!(g.out_degree(NodeId(4)), 0);
    }

    #[test]
    fn empty_build() {
        let g = GraphBuilder::new().build().unwrap();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn in_out_adjacency_are_transposes() {
        let mut b = GraphBuilder::new();
        b.extend_edges([(0, 1), (0, 2), (1, 2), (3, 0), (2, 3)]);
        let g = b.build().unwrap();
        for u in g.nodes() {
            for &v in g.out_neighbors(u) {
                assert!(g.in_neighbors(v).contains(&u));
            }
            for &w in g.in_neighbors(u) {
                assert!(g.out_neighbors(w).contains(&u));
            }
        }
    }
}
