//! SNAP-style edge-list IO.
//!
//! The paper's datasets are distributed as whitespace-separated edge lists
//! with `#` comment lines (the SNAP format). This module parses and writes
//! that format so users can run the reproduction on the real datasets when
//! they have them; the bundled experiments use the synthetic analogues in
//! [`crate::datasets`].

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::builder::GraphBuilder;
use crate::digraph::DiGraph;
use crate::error::GraphError;

/// Options controlling edge-list parsing.
#[derive(Clone, Copy, Debug)]
pub struct ParseOptions {
    /// Insert the reverse of every edge (for undirected datasets).
    pub symmetric: bool,
    /// Keep self-loops (default false, matching the SimRank model).
    pub keep_self_loops: bool,
}

#[allow(clippy::derivable_impls)] // explicit defaults document the model choice
impl Default for ParseOptions {
    fn default() -> Self {
        ParseOptions {
            symmetric: false,
            keep_self_loops: false,
        }
    }
}

/// Parse an edge list from any reader.
///
/// Blank lines and lines starting with `#` or `%` are skipped. Each data
/// line must contain at least two integer tokens `src dst`; extra tokens
/// (e.g. weights or timestamps) are ignored.
pub fn parse<R: Read>(reader: R, opts: ParseOptions) -> Result<DiGraph, GraphError> {
    let mut builder = GraphBuilder::new()
        .symmetric(opts.symmetric)
        .keep_self_loops(opts.keep_self_loops);
    let buf = BufReader::new(reader);
    for (idx, line) in buf.lines().enumerate() {
        let line = line?;
        let line_no = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut tokens = trimmed.split_whitespace();
        let src = parse_token(tokens.next(), line_no)?;
        let dst = parse_token(tokens.next(), line_no)?;
        builder.add_edge(src, dst);
    }
    builder.build()
}

fn parse_token(tok: Option<&str>, line: usize) -> Result<u32, GraphError> {
    let tok = tok.ok_or_else(|| GraphError::Parse {
        line,
        message: "expected two integer tokens".into(),
    })?;
    tok.parse::<u32>().map_err(|e| GraphError::Parse {
        line,
        message: format!("bad node id {tok:?}: {e}"),
    })
}

/// Load an edge-list file from disk.
pub fn load_path(path: impl AsRef<Path>, opts: ParseOptions) -> Result<DiGraph, GraphError> {
    let file = std::fs::File::open(path)?;
    parse(file, opts)
}

/// Write a graph as a `# directed edge list` file.
pub fn write<W: Write>(graph: &DiGraph, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# nodes {} edges {}",
        graph.num_nodes(),
        graph.num_edges()
    )?;
    for (u, v) in graph.edges() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()?;
    Ok(())
}

/// Write a graph to a file path.
pub fn save_path(graph: &DiGraph, path: impl AsRef<Path>) -> Result<(), GraphError> {
    let file = std::fs::File::create(path)?;
    write(graph, file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;

    #[test]
    fn parses_comments_blanks_and_extra_tokens() {
        let text = "# a comment\n\n0 1\n1 2 999\n% another comment\n2 0\n";
        let g = parse(text.as_bytes(), ParseOptions::default()).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert!(g.has_edge(NodeId(1), NodeId(2)));
    }

    #[test]
    fn symmetric_parse_doubles_edges() {
        let text = "0 1\n1 2\n";
        let g = parse(
            text.as_bytes(),
            ParseOptions {
                symmetric: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn bad_tokens_error_with_line_number() {
        let text = "0 1\nnot_a_number 2\n";
        let err = parse(text.as_bytes(), ParseOptions::default()).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn missing_token_errors() {
        let err = parse("42\n".as_bytes(), ParseOptions::default()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn round_trip_through_writer() {
        let g = DiGraph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        let mut buf = Vec::new();
        write(&g, &mut buf).unwrap();
        let g2 = parse(buf.as_slice(), ParseOptions::default()).unwrap();
        assert_eq!(g2.num_nodes(), g.num_nodes());
        assert_eq!(g2.num_edges(), g.num_edges());
        let e1: Vec<_> = g.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        assert_eq!(e1, e2);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("sling_graph_edgelist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt");
        let g = DiGraph::from_edges(3, [(0, 1), (1, 2)]);
        save_path(&g, &path).unwrap();
        let g2 = load_path(&path, ParseOptions::default()).unwrap();
        assert_eq!(g2.num_edges(), 2);
        std::fs::remove_file(path).ok();
    }
}
