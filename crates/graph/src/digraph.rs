//! The immutable directed graph used by every SimRank method.

use crate::csr::Csr;
use crate::node::NodeId;

/// Immutable directed graph with CSR adjacency in both directions.
///
/// SimRank's definition (Eq. 1 of the paper) repeatedly touches in-neighbor
/// sets `I(v)`, while Algorithm 2's local updates and Algorithm 6's
/// forward propagation walk out-edges, so both directions are materialized
/// once at construction and shared read-only afterwards (the struct is
/// `Send + Sync` and is borrowed by worker threads during parallel index
/// construction).
#[derive(Clone, Debug)]
pub struct DiGraph {
    out: Csr,
    inn: Csr,
}

impl DiGraph {
    /// Assemble from prebuilt CSR halves. Callers must ensure `inn` is the
    /// transpose of `out`; [`crate::GraphBuilder`] does.
    pub(crate) fn from_csr(out: Csr, inn: Csr) -> Self {
        debug_assert_eq!(out.num_nodes(), inn.num_nodes());
        debug_assert_eq!(out.num_edges(), inn.num_edges());
        DiGraph { out, inn }
    }

    /// Assemble from an out-adjacency CSR alone; the in-adjacency is
    /// rebuilt by transposition. Used by [`crate::binfmt`], which persists
    /// only the out half.
    pub fn from_out_csr(out: Csr) -> Self {
        let inn = out.transpose();
        DiGraph { out, inn }
    }

    /// Convenience constructor from an edge iterator (directed, dedup,
    /// self-loops dropped).
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (u32, u32)>) -> Self {
        let mut b = crate::GraphBuilder::with_nodes(n);
        b.extend_edges(edges);
        b.build().expect("node count fits u32")
    }

    /// Number of nodes `n`.
    #[inline(always)]
    pub fn num_nodes(&self) -> usize {
        self.out.num_nodes()
    }

    /// Number of directed edges `m`.
    #[inline(always)]
    pub fn num_edges(&self) -> usize {
        self.out.num_edges()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.num_nodes() as u32).map(NodeId)
    }

    /// Out-neighbors of `v` (sorted).
    #[inline(always)]
    pub fn out_neighbors(&self, v: NodeId) -> &[NodeId] {
        self.out.neighbors(v)
    }

    /// In-neighbors `I(v)` (sorted).
    #[inline(always)]
    pub fn in_neighbors(&self, v: NodeId) -> &[NodeId] {
        self.inn.neighbors(v)
    }

    /// `|I(v)|`.
    #[inline(always)]
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.inn.degree(v)
    }

    /// Out-degree of `v`.
    #[inline(always)]
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.out.degree(v)
    }

    /// Whether the directed edge `u -> v` exists.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.out.contains(u, v)
    }

    /// Iterate all directed edges in `(source, target)` CSR order.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.out.iter_edges()
    }

    /// The out-adjacency CSR.
    pub fn out_csr(&self) -> &Csr {
        &self.out
    }

    /// The in-adjacency CSR.
    pub fn in_csr(&self) -> &Csr {
        &self.inn
    }

    /// η(v) of §5.2: `|I(v)| + Σ_{x ∈ I(v)} |I(x)|` — the cost of the exact
    /// two-hop HP computation (Algorithm 5) from `v`.
    pub fn two_hop_in_cost(&self, v: NodeId) -> usize {
        self.in_degree(v)
            + self
                .in_neighbors(v)
                .iter()
                .map(|&x| self.in_degree(x))
                .sum::<usize>()
    }

    /// Structural sanity check used by tests.
    pub fn validate(&self) -> bool {
        self.out.validate()
            && self.inn.validate()
            && self.out.num_edges() == self.inn.num_edges()
            && self.out.transpose() == self.inn
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DiGraph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        DiGraph::from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn degrees_and_neighbors() {
        let g = diamond();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.in_degree(NodeId(3)), 2);
        assert_eq!(g.in_neighbors(NodeId(3)), &[NodeId(1), NodeId(2)]);
        assert_eq!(g.out_degree(NodeId(0)), 2);
        assert_eq!(g.in_degree(NodeId(0)), 0);
        assert!(g.validate());
    }

    #[test]
    fn two_hop_in_cost_matches_definition() {
        let g = diamond();
        // I(3) = {1, 2}; |I(1)| = |I(2)| = 1  => eta = 2 + 2 = 4
        assert_eq!(g.two_hop_in_cost(NodeId(3)), 4);
        // I(0) = {} => eta = 0
        assert_eq!(g.two_hop_in_cost(NodeId(0)), 0);
    }

    #[test]
    fn edge_queries() {
        let g = diamond();
        assert!(g.has_edge(NodeId(0), NodeId(1)));
        assert!(!g.has_edge(NodeId(1), NodeId(0)));
        assert_eq!(g.edges().count(), 4);
    }

    #[test]
    fn nodes_iterator_is_dense() {
        let g = diamond();
        let ids: Vec<u32> = g.nodes().map(|v| v.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }
}
