//! # sling-graph
//!
//! Directed-graph substrate for the SLING SimRank reproduction
//! (Tian & Xiao, *SLING: A Near-Optimal Index Structure for SimRank*,
//! SIGMOD 2016).
//!
//! The crate provides everything the SimRank methods in this workspace need
//! from a graph library, built from scratch:
//!
//! * [`DiGraph`] — an immutable directed graph stored in compressed sparse
//!   row (CSR) form with **both** out-adjacency and in-adjacency, because
//!   SimRank is defined over in-neighbor sets `I(v)` while local-update
//!   propagation walks out-edges.
//! * [`GraphBuilder`] — mutable edge accumulator that deduplicates parallel
//!   edges, optionally drops self-loops, and symmetrizes undirected inputs.
//! * [`edgelist`] — SNAP-style whitespace edge-list parsing and writing.
//! * [`generators`] — deterministic random-graph generators (Erdős–Rényi,
//!   Barabási–Albert preferential attachment, R-MAT) plus closed-form
//!   utility graphs (cycles, stars, complete graphs, ...) used heavily by
//!   the test suites.
//! * [`datasets`] — the synthetic analogue of the paper's Table 3 dataset
//!   suite, scaled to laptop size (see `DESIGN.md` §6 for the substitution
//!   rationale).
//! * [`fxhash`] — a minimal FxHash-style hasher for integer keys, used
//!   across the workspace instead of SipHash-backed `std` maps.
//! * [`binfmt`] — compact binary graph persistence (CSR dump with full
//!   structural validation on decode).
//! * [`traversal`] / [`transform`] — BFS utilities and whole-graph passes
//!   (induced subgraphs, largest WCC, transpose, k-core, dangling peel).
//! * [`degree`] — degree-distribution summaries (quantiles, Gini) backing
//!   the dataset reports.
//! * [`weighted`] — weighted digraphs ([`WDiGraph`]) for the SimRank++
//!   family of variants.
//!
//! All generators take explicit seeds; every graph produced by this crate is
//! reproducible bit-for-bit.

pub mod binfmt;
pub mod builder;
pub mod components;
pub mod csr;
pub mod datasets;
pub mod degree;
pub mod digraph;
pub mod edgelist;
pub mod error;
pub mod fxhash;
pub mod generators;
pub mod node;
pub mod stats;
pub mod transform;
pub mod traversal;
pub mod weighted;

pub use builder::GraphBuilder;
pub use csr::Csr;
pub use degree::{DegreeDistribution, DegreeKind};
pub use digraph::DiGraph;
pub use error::GraphError;
pub use fxhash::{FxHashMap, FxHashSet};
pub use node::NodeId;
pub use stats::GraphStats;
pub use weighted::{WDiGraph, WGraphBuilder};
