//! Compressed sparse row adjacency storage.

use crate::node::NodeId;

/// One direction of adjacency (either out-neighbors or in-neighbors) in
/// compressed sparse row form.
///
/// `offsets` has `n + 1` entries; the neighbors of node `v` are
/// `targets[offsets[v] .. offsets[v + 1]]`, sorted ascending and free of
/// duplicates. The sortedness is relied on by binary-search membership
/// tests and by the deterministic iteration order of every algorithm in
/// the workspace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Csr {
    offsets: Vec<usize>,
    targets: Vec<NodeId>,
}

impl Csr {
    /// Build from a per-node list of neighbors. Each inner list must be
    /// sorted and deduplicated (the [`crate::GraphBuilder`] guarantees
    /// this).
    pub fn from_sorted_lists(lists: &[Vec<NodeId>]) -> Self {
        let mut offsets = Vec::with_capacity(lists.len() + 1);
        let total: usize = lists.iter().map(Vec::len).sum();
        let mut targets = Vec::with_capacity(total);
        offsets.push(0);
        for list in lists {
            debug_assert!(
                list.windows(2).all(|w| w[0] < w[1]),
                "list must be strictly sorted"
            );
            targets.extend_from_slice(list);
            offsets.push(targets.len());
        }
        Csr { offsets, targets }
    }

    /// Build directly from raw parts.
    ///
    /// # Panics
    /// Panics (debug) if the offsets are not monotone or do not cover
    /// `targets`.
    pub fn from_parts(offsets: Vec<usize>, targets: Vec<NodeId>) -> Self {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(*offsets.last().unwrap(), targets.len());
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        Csr { offsets, targets }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of stored (directed) edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Neighbors of `v` (sorted, deduplicated).
    #[inline(always)]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let i = v.index();
        &self.targets[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Degree of `v` in this direction.
    #[inline(always)]
    pub fn degree(&self, v: NodeId) -> usize {
        let i = v.index();
        self.offsets[i + 1] - self.offsets[i]
    }

    /// Whether the edge `v -> w` is present in this direction.
    #[inline]
    pub fn contains(&self, v: NodeId, w: NodeId) -> bool {
        self.neighbors(v).binary_search(&w).is_ok()
    }

    /// Iterate `(source, target)` pairs in CSR order.
    pub fn iter_edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.num_nodes()).flat_map(move |i| {
            let v = NodeId::from_index(i);
            self.neighbors(v).iter().map(move |&w| (v, w))
        })
    }

    /// The transposed adjacency (reverses every edge). Output lists remain
    /// sorted because sources are visited in ascending order.
    pub fn transpose(&self) -> Csr {
        let n = self.num_nodes();
        let mut counts = vec![0usize; n + 1];
        for &t in &self.targets {
            counts[t.index() + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut targets = vec![NodeId(0); self.targets.len()];
        for (src, dst) in self.iter_edges() {
            let slot = cursor[dst.index()];
            targets[slot] = src;
            cursor[dst.index()] += 1;
        }
        Csr { offsets, targets }
    }

    /// Raw offsets (length `n + 1`).
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Raw targets array.
    pub fn targets(&self) -> &[NodeId] {
        &self.targets
    }

    /// Verify structural invariants; used by tests and debug assertions.
    pub fn validate(&self) -> bool {
        if self.offsets.is_empty() || *self.offsets.last().unwrap() != self.targets.len() {
            return false;
        }
        if self.offsets.windows(2).any(|w| w[0] > w[1]) {
            return false;
        }
        let n = self.num_nodes();
        for i in 0..n {
            let list = &self.targets[self.offsets[i]..self.offsets[i + 1]];
            if list.windows(2).any(|w| w[0] >= w[1]) {
                return false;
            }
            if list.iter().any(|t| t.index() >= n) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        // 0 -> {1, 2}, 1 -> {2}, 2 -> {}, 3 -> {0}
        Csr::from_sorted_lists(&[
            vec![NodeId(1), NodeId(2)],
            vec![NodeId(2)],
            vec![],
            vec![NodeId(0)],
        ])
    }

    #[test]
    fn basic_accessors() {
        let csr = sample();
        assert_eq!(csr.num_nodes(), 4);
        assert_eq!(csr.num_edges(), 4);
        assert_eq!(csr.neighbors(NodeId(0)), &[NodeId(1), NodeId(2)]);
        assert_eq!(csr.degree(NodeId(2)), 0);
        assert!(csr.contains(NodeId(3), NodeId(0)));
        assert!(!csr.contains(NodeId(0), NodeId(3)));
        assert!(csr.validate());
    }

    #[test]
    fn edge_iteration_order() {
        let csr = sample();
        let edges: Vec<_> = csr.iter_edges().collect();
        assert_eq!(
            edges,
            vec![
                (NodeId(0), NodeId(1)),
                (NodeId(0), NodeId(2)),
                (NodeId(1), NodeId(2)),
                (NodeId(3), NodeId(0)),
            ]
        );
    }

    #[test]
    fn transpose_reverses_edges_and_stays_sorted() {
        let csr = sample();
        let t = csr.transpose();
        assert!(t.validate());
        assert_eq!(t.neighbors(NodeId(2)), &[NodeId(0), NodeId(1)]);
        assert_eq!(t.neighbors(NodeId(0)), &[NodeId(3)]);
        assert_eq!(t.neighbors(NodeId(3)), &[] as &[NodeId]);
        // Double transpose is identity.
        assert_eq!(t.transpose(), csr);
    }

    #[test]
    fn empty_graph() {
        let csr = Csr::from_sorted_lists(&[]);
        assert_eq!(csr.num_nodes(), 0);
        assert_eq!(csr.num_edges(), 0);
        assert!(csr.validate());
    }

    #[test]
    fn validate_rejects_bad_structures() {
        let bad = Csr {
            offsets: vec![0, 2],
            targets: vec![NodeId(1), NodeId(1)], // duplicate neighbor
        };
        assert!(!bad.validate());
        let bad2 = Csr {
            offsets: vec![0, 1],
            targets: vec![NodeId(5)], // out of range
        };
        assert!(!bad2.validate());
    }
}
