//! Breadth-first traversal utilities over [`DiGraph`].
//!
//! These are substrate helpers used by the transformation passes
//! ([`crate::transform`]), the dataset reports, and several examples: BFS
//! distance maps, reachability tests, and a double-sweep diameter lower
//! bound. All functions are `O(n + m)` unless stated otherwise.

use std::collections::VecDeque;

use crate::digraph::DiGraph;
use crate::node::NodeId;

/// Direction in which edges are followed during a traversal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Follow out-edges (`u -> v` is traversed from `u` to `v`).
    Out,
    /// Follow in-edges (`u -> v` is traversed from `v` to `u`).
    In,
    /// Follow edges in both directions (the underlying undirected graph).
    Both,
}

/// Unreachable marker in distance maps produced by [`bfs_distances`].
pub const UNREACHABLE: u32 = u32::MAX;

fn neighbors<'g>(g: &'g DiGraph, v: NodeId, dir: Direction) -> impl Iterator<Item = NodeId> + 'g {
    let (a, b): (&[NodeId], &[NodeId]) = match dir {
        Direction::Out => (g.out_neighbors(v), &[]),
        Direction::In => (g.in_neighbors(v), &[]),
        Direction::Both => (g.out_neighbors(v), g.in_neighbors(v)),
    };
    a.iter().chain(b.iter()).copied()
}

/// BFS distance (in hops) from `source` to every node, following edges in
/// direction `dir`. Unreachable nodes get [`UNREACHABLE`].
pub fn bfs_distances(g: &DiGraph, source: NodeId, dir: Direction) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; g.num_nodes()];
    if source.index() >= g.num_nodes() {
        return dist;
    }
    let mut queue = VecDeque::new();
    dist[source.index()] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()];
        for w in neighbors(g, u, dir) {
            if dist[w.index()] == UNREACHABLE {
                dist[w.index()] = du + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// Nodes visited by a BFS from `source`, in visit order (including
/// `source` itself).
pub fn bfs_order(g: &DiGraph, source: NodeId, dir: Direction) -> Vec<NodeId> {
    let mut seen = vec![false; g.num_nodes()];
    let mut order = Vec::new();
    if source.index() >= g.num_nodes() {
        return order;
    }
    let mut queue = VecDeque::new();
    seen[source.index()] = true;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for w in neighbors(g, u, dir) {
            if !seen[w.index()] {
                seen[w.index()] = true;
                queue.push_back(w);
            }
        }
    }
    order
}

/// Whether `target` is reachable from `source` following `dir` edges.
pub fn is_reachable(g: &DiGraph, source: NodeId, target: NodeId, dir: Direction) -> bool {
    if source == target {
        return source.index() < g.num_nodes();
    }
    let mut seen = vec![false; g.num_nodes()];
    if source.index() >= g.num_nodes() || target.index() >= g.num_nodes() {
        return false;
    }
    let mut queue = VecDeque::new();
    seen[source.index()] = true;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        for w in neighbors(g, u, dir) {
            if w == target {
                return true;
            }
            if !seen[w.index()] {
                seen[w.index()] = true;
                queue.push_back(w);
            }
        }
    }
    false
}

/// Eccentricity of `source` within its reachable set: the largest finite
/// BFS distance. Returns 0 for an isolated node.
pub fn eccentricity(g: &DiGraph, source: NodeId, dir: Direction) -> u32 {
    bfs_distances(g, source, dir)
        .into_iter()
        .filter(|&d| d != UNREACHABLE)
        .max()
        .unwrap_or(0)
}

/// Double-sweep lower bound on the diameter of the underlying undirected
/// graph: BFS from `start`, then BFS again from the farthest node found.
/// Exact on trees; a tight lower bound in practice on real graphs.
pub fn double_sweep_diameter(g: &DiGraph, start: NodeId) -> u32 {
    if g.num_nodes() == 0 || start.index() >= g.num_nodes() {
        return 0;
    }
    let first = bfs_distances(g, start, Direction::Both);
    let far = first
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d != UNREACHABLE)
        .max_by_key(|&(_, &d)| d)
        .map(|(i, _)| NodeId::from_index(i))
        .unwrap_or(start);
    eccentricity(g, far, Direction::Both)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{complete_graph, cycle_graph, path_graph, star_graph};

    #[test]
    fn path_distances_out() {
        // path_graph edges run v -> v+1.
        let g = path_graph(5);
        let d = bfs_distances(&g, NodeId(0), Direction::Out);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
        // Backwards nothing is reachable from node 0.
        let d_in = bfs_distances(&g, NodeId(0), Direction::In);
        assert_eq!(d_in[1], UNREACHABLE);
        assert_eq!(d_in[0], 0);
    }

    #[test]
    fn path_distances_in_from_tail() {
        let g = path_graph(4);
        let d = bfs_distances(&g, NodeId(3), Direction::In);
        assert_eq!(d, vec![3, 2, 1, 0]);
    }

    #[test]
    fn both_direction_ignores_orientation() {
        let g = path_graph(6);
        let d = bfs_distances(&g, NodeId(3), Direction::Both);
        assert_eq!(d, vec![3, 2, 1, 0, 1, 2]);
    }

    #[test]
    fn cycle_distance_wraps() {
        let g = cycle_graph(6);
        let d = bfs_distances(&g, NodeId(0), Direction::Out);
        assert_eq!(d[5], 5);
        let d_both = bfs_distances(&g, NodeId(0), Direction::Both);
        assert_eq!(d_both[5], 1);
        assert_eq!(d_both[3], 3);
    }

    #[test]
    fn bfs_order_visits_each_reachable_node_once() {
        let g = star_graph(8);
        let order = bfs_order(&g, NodeId(0), Direction::Both);
        assert_eq!(order.len(), 8);
        let mut seen: Vec<_> = order.iter().map(|v| v.index()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..8).collect::<Vec<_>>());
        assert_eq!(order[0], NodeId(0));
    }

    #[test]
    fn reachability_respects_direction() {
        let g = path_graph(3);
        assert!(is_reachable(&g, NodeId(0), NodeId(2), Direction::Out));
        assert!(!is_reachable(&g, NodeId(2), NodeId(0), Direction::Out));
        assert!(is_reachable(&g, NodeId(2), NodeId(0), Direction::In));
        assert!(is_reachable(&g, NodeId(2), NodeId(0), Direction::Both));
    }

    #[test]
    fn self_reachability() {
        let g = path_graph(2);
        assert!(is_reachable(&g, NodeId(1), NodeId(1), Direction::Out));
    }

    #[test]
    fn out_of_range_source_is_safe() {
        let g = path_graph(2);
        let d = bfs_distances(&g, NodeId(9), Direction::Out);
        assert!(d.iter().all(|&x| x == UNREACHABLE));
        assert!(bfs_order(&g, NodeId(9), Direction::Out).is_empty());
        assert!(!is_reachable(&g, NodeId(9), NodeId(0), Direction::Out));
    }

    #[test]
    fn eccentricity_on_star() {
        let g = star_graph(5);
        assert_eq!(eccentricity(&g, NodeId(0), Direction::Both), 1);
        assert_eq!(eccentricity(&g, NodeId(1), Direction::Both), 2);
    }

    #[test]
    fn double_sweep_exact_on_path() {
        let g = path_graph(10);
        assert_eq!(double_sweep_diameter(&g, NodeId(4)), 9);
    }

    #[test]
    fn double_sweep_on_complete_graph() {
        let g = complete_graph(6);
        assert_eq!(double_sweep_diameter(&g, NodeId(0)), 1);
    }

    #[test]
    fn empty_graph_diameter() {
        let g = DiGraph::from_edges(0, Vec::<(u32, u32)>::new());
        assert_eq!(double_sweep_diameter(&g, NodeId(0)), 0);
    }
}
