//! Connectivity analysis: weakly and strongly connected components.
//!
//! Used by the dataset reports (`repro table3`) and useful when running
//! the reproduction on real SNAP graphs, whose readmes quote WCC/SCC
//! sizes. Weak components via union-find; strong components via an
//! iterative Tarjan (explicit stack — real web graphs have paths far
//! deeper than the call stack).

use crate::digraph::DiGraph;
use crate::node::NodeId;

/// Union-find with path halving and union by size.
struct Dsu {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            self.parent[x as usize] = self.parent[self.parent[x as usize] as usize];
            x = self.parent[x as usize];
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        if self.size[ra as usize] < self.size[rb as usize] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb as usize] = ra;
        self.size[ra as usize] += self.size[rb as usize];
    }
}

/// Weakly connected components: `labels[v]` is a component id in
/// `0..count`, ids assigned in first-seen node order.
pub fn weakly_connected_components(g: &DiGraph) -> (Vec<u32>, usize) {
    let n = g.num_nodes();
    let mut dsu = Dsu::new(n);
    for (u, v) in g.edges() {
        dsu.union(u.0, v.0);
    }
    let mut labels = vec![u32::MAX; n];
    let mut count = 0u32;
    for v in 0..n as u32 {
        let root = dsu.find(v) as usize;
        if labels[root] == u32::MAX {
            labels[root] = count;
            count += 1;
        }
        labels[v as usize] = labels[root];
    }
    (labels, count as usize)
}

/// Strongly connected components via iterative Tarjan. Returns
/// (`labels`, `count`); labels are in reverse topological order of the
/// condensation (standard Tarjan numbering).
pub fn strongly_connected_components(g: &DiGraph) -> (Vec<u32>, usize) {
    let n = g.num_nodes();
    const UNSET: u32 = u32::MAX;
    let mut index = vec![UNSET; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut labels = vec![UNSET; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut count = 0u32;

    // Explicit DFS frames: (node, next out-neighbor offset).
    let mut frames: Vec<(u32, usize)> = Vec::new();
    for start in 0..n as u32 {
        if index[start as usize] != UNSET {
            continue;
        }
        frames.push((start, 0));
        index[start as usize] = next_index;
        lowlink[start as usize] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start as usize] = true;

        while let Some(&mut (v, ref mut ptr)) = frames.last_mut() {
            let outs = g.out_neighbors(NodeId(v));
            if *ptr < outs.len() {
                let w = outs[*ptr].0;
                *ptr += 1;
                if index[w as usize] == UNSET {
                    index[w as usize] = next_index;
                    lowlink[w as usize] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    frames.push((w, 0));
                } else if on_stack[w as usize] {
                    lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                }
            } else {
                frames.pop();
                if let Some(&mut (parent, _)) = frames.last_mut() {
                    lowlink[parent as usize] = lowlink[parent as usize].min(lowlink[v as usize]);
                }
                if lowlink[v as usize] == index[v as usize] {
                    loop {
                        let w = stack.pop().expect("stack holds the component");
                        on_stack[w as usize] = false;
                        labels[w as usize] = count;
                        if w == v {
                            break;
                        }
                    }
                    count += 1;
                }
            }
        }
    }
    (labels, count as usize)
}

/// Size of the largest component given labels from either routine.
pub fn largest_component_size(labels: &[u32], count: usize) -> usize {
    let mut sizes = vec![0usize; count];
    for &l in labels {
        sizes[l as usize] += 1;
    }
    sizes.into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{cycle_graph, path_graph, two_cliques_bridge};
    use crate::GraphBuilder;

    #[test]
    fn wcc_on_disjoint_cliques() {
        let k = 3u32;
        let mut b = GraphBuilder::new().symmetric(true);
        for u in 0..k {
            for v in (u + 1)..k {
                b.add_edge(u, v);
                b.add_edge(u + k, v + k);
            }
        }
        let g = b.build().unwrap();
        let (labels, count) = weakly_connected_components(&g);
        assert_eq!(count, 2);
        assert_eq!(labels[0], labels[2]);
        assert_ne!(labels[0], labels[3]);
        assert_eq!(largest_component_size(&labels, count), 3);
    }

    #[test]
    fn wcc_ignores_edge_direction() {
        let g = path_graph(5); // 0 -> 1 -> 2 -> 3 -> 4
        let (_, count) = weakly_connected_components(&g);
        assert_eq!(count, 1);
    }

    #[test]
    fn scc_on_cycle_is_one_component() {
        let g = cycle_graph(6);
        let (labels, count) = strongly_connected_components(&g);
        assert_eq!(count, 1);
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn scc_on_path_is_singletons() {
        let g = path_graph(4);
        let (labels, count) = strongly_connected_components(&g);
        assert_eq!(count, 4);
        let mut sorted = labels.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4);
    }

    #[test]
    fn scc_mixed_graph() {
        // Cycle {0,1,2} plus a tail 2 -> 3 -> 4 and a back-edge 4 -> 3?
        // no: 3 -> 4 only, so {3} and {4} are singletons.
        let mut b = GraphBuilder::new();
        b.extend_edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)]);
        let g = b.build().unwrap();
        let (labels, count) = strongly_connected_components(&g);
        assert_eq!(count, 3);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_ne!(labels[2], labels[3]);
        assert_ne!(labels[3], labels[4]);
        assert_eq!(largest_component_size(&labels, count), 3);
    }

    #[test]
    fn symmetric_graph_wcc_equals_scc() {
        let g = two_cliques_bridge(4);
        let (_, wcc) = weakly_connected_components(&g);
        let (_, scc) = strongly_connected_components(&g);
        assert_eq!(wcc, 1);
        assert_eq!(scc, 1);
    }

    #[test]
    fn deep_graph_does_not_overflow_stack() {
        // 200k-node directed path: recursive Tarjan would blow the stack.
        let n = 200_000;
        let g = path_graph(n);
        let (_, count) = strongly_connected_components(&g);
        assert_eq!(count, n);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build().unwrap();
        assert_eq!(weakly_connected_components(&g).1, 0);
        assert_eq!(strongly_connected_components(&g).1, 0);
    }
}
