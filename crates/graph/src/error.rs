//! Error types for graph construction and IO.

use std::fmt;
use std::io;

/// Errors produced by graph building, parsing, and IO.
#[derive(Debug)]
pub enum GraphError {
    /// An edge referenced a node id that does not fit in `u32`.
    NodeIdOverflow(usize),
    /// An edge endpoint was `>= n` for a builder with a fixed node count.
    NodeOutOfRange { node: u32, n: u32 },
    /// A line of an edge-list file could not be parsed.
    Parse { line: usize, message: String },
    /// Underlying IO failure.
    Io(io::Error),
    /// A generator was asked for an impossible configuration
    /// (e.g. more edges than a simple graph can hold).
    InvalidGenerator(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeIdOverflow(i) => {
                write!(f, "node index {i} does not fit in a u32 node id")
            }
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node id {node} out of range for graph with {n} nodes")
            }
            GraphError::Parse { line, message } => {
                write!(f, "edge list parse error on line {line}: {message}")
            }
            GraphError::Io(e) => write!(f, "io error: {e}"),
            GraphError::InvalidGenerator(msg) => write!(f, "invalid generator config: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for GraphError {
    fn from(e: io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::NodeOutOfRange { node: 9, n: 5 };
        assert!(e.to_string().contains("9"));
        assert!(e.to_string().contains("5"));
        let e = GraphError::Parse {
            line: 3,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn io_error_round_trips_through_source() {
        let e: GraphError = io::Error::new(io::ErrorKind::NotFound, "nope").into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
