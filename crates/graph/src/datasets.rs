//! Synthetic analogue of the paper's Table 3 dataset suite.
//!
//! The paper evaluates on twelve public SNAP / LAW graphs (GrQc … Indochina,
//! 5 k – 7.4 M nodes). Those files are not bundled here, so each dataset is
//! replaced by a deterministic synthetic graph that matches its *type*
//! (directed vs. undirected), its density regime, and its degree-distribution
//! family, scaled to laptop size:
//!
//! * collaboration / social graphs (GrQc, HepTh, Enron, LiveJournal) →
//!   Barabási–Albert preferential attachment (heavy-tailed, symmetric);
//! * internet topology (AS) → sparse undirected Erdős–Rényi;
//! * voting / web / hyperlink graphs (Wiki-Vote, Slashdot, EuAll,
//!   NotreDame, Google, In-2004, Indochina) → R-MAT with the canonical
//!   skew parameters.
//!
//! SimRank methods only interact with topology statistics, so the paper's
//! comparative results (who wins, by what rough factor) are preserved; see
//! `DESIGN.md` §6 and `EXPERIMENTS.md` for the substitution discussion.

use crate::digraph::DiGraph;
use crate::generators::{barabasi_albert, erdos_renyi_undirected, rmat, RmatConfig};

/// Size tier of a dataset, controlling which experiments include it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Tier {
    /// Ground-truth-feasible (power method runs): Figures 5–7.
    Small,
    /// Default performance experiments: Figures 1–4.
    Medium,
    /// Opt-in scale experiments: Figures 9–10 and `--large` runs.
    Large,
}

/// A named synthetic dataset mirroring one row of the paper's Table 3.
#[derive(Clone, Copy, Debug)]
pub struct DatasetSpec {
    /// Name used by the benchmark harness (e.g. `grqc-sim`).
    pub name: &'static str,
    /// The Table 3 dataset this stands in for.
    pub paper_name: &'static str,
    /// Whether the original dataset is directed.
    pub directed: bool,
    /// Size tier.
    pub tier: Tier,
    /// n of the original dataset (for the Table 3 report).
    pub paper_n: usize,
    /// m of the original dataset.
    pub paper_m: usize,
    kind: Kind,
}

#[derive(Clone, Copy, Debug)]
enum Kind {
    /// Barabási–Albert with attachment factor k.
    Ba { n: usize, k: usize },
    /// Undirected Erdős–Rényi with m undirected edges.
    ErUndirected { n: usize, m: usize },
    /// R-MAT with 2^scale nodes and m directed edges.
    Rmat { scale: u32, m: usize },
}

/// Deterministic seed per dataset so every run sees identical graphs.
fn seed_for(name: &str) -> u64 {
    // FNV-1a over the name: stable across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl DatasetSpec {
    /// Materialize the graph (deterministic in the dataset name).
    pub fn build(&self) -> DiGraph {
        let seed = seed_for(self.name);
        match self.kind {
            Kind::Ba { n, k } => barabasi_albert(n, k, seed).expect("valid BA config"),
            Kind::ErUndirected { n, m } => {
                erdos_renyi_undirected(n, m, seed).expect("valid ER config")
            }
            Kind::Rmat { scale, m } => {
                rmat(scale, m, RmatConfig::default(), seed).expect("valid RMAT config")
            }
        }
    }
}

/// The full suite, in the paper's Table 3 order.
pub fn suite() -> &'static [DatasetSpec] {
    &SUITE
}

/// Datasets of at most the given tier.
pub fn up_to_tier(tier: Tier) -> impl Iterator<Item = &'static DatasetSpec> {
    SUITE.iter().filter(move |d| d.tier <= tier)
}

/// Look up a dataset by harness name.
pub fn by_name(name: &str) -> Option<&'static DatasetSpec> {
    SUITE.iter().find(|d| d.name == name)
}

static SUITE: [DatasetSpec; 10] = [
    DatasetSpec {
        name: "grqc-sim",
        paper_name: "GrQc",
        directed: false,
        tier: Tier::Small,
        paper_n: 5_242,
        paper_m: 14_496,
        kind: Kind::Ba { n: 3_000, k: 3 },
    },
    DatasetSpec {
        name: "as-sim",
        paper_name: "AS",
        directed: false,
        tier: Tier::Small,
        paper_n: 6_474,
        paper_m: 13_895,
        kind: Kind::ErUndirected { n: 3_200, m: 6_800 },
    },
    DatasetSpec {
        name: "wikivote-sim",
        paper_name: "Wiki-Vote",
        directed: true,
        tier: Tier::Small,
        paper_n: 7_115,
        paper_m: 103_689,
        kind: Kind::Rmat {
            scale: 11,
            m: 30_000,
        },
    },
    DatasetSpec {
        name: "hepth-sim",
        paper_name: "HepTh",
        directed: false,
        tier: Tier::Small,
        paper_n: 9_877,
        paper_m: 25_998,
        kind: Kind::Ba { n: 4_000, k: 3 },
    },
    DatasetSpec {
        name: "enron-sim",
        paper_name: "Enron",
        directed: false,
        tier: Tier::Medium,
        paper_n: 36_692,
        paper_m: 183_831,
        kind: Kind::Ba { n: 15_000, k: 5 },
    },
    DatasetSpec {
        name: "slashdot-sim",
        paper_name: "Slashdot",
        directed: true,
        tier: Tier::Medium,
        paper_n: 77_360,
        paper_m: 905_468,
        kind: Kind::Rmat {
            scale: 15,
            m: 300_000,
        },
    },
    DatasetSpec {
        name: "euall-sim",
        paper_name: "EuAll",
        directed: true,
        tier: Tier::Medium,
        paper_n: 265_214,
        paper_m: 400_045,
        kind: Kind::Rmat {
            scale: 16,
            m: 110_000,
        },
    },
    DatasetSpec {
        name: "notredame-sim",
        paper_name: "NotreDame",
        directed: true,
        tier: Tier::Medium,
        paper_n: 325_728,
        paper_m: 1_497_134,
        kind: Kind::Rmat {
            scale: 17,
            m: 600_000,
        },
    },
    DatasetSpec {
        name: "google-sim",
        paper_name: "Google",
        directed: true,
        tier: Tier::Large,
        paper_n: 875_713,
        paper_m: 5_105_049,
        kind: Kind::Rmat {
            scale: 18,
            m: 1_500_000,
        },
    },
    DatasetSpec {
        name: "livejournal-sim",
        paper_name: "LiveJournal",
        directed: true,
        tier: Tier::Large,
        paper_n: 4_847_571,
        paper_m: 68_993_773,
        kind: Kind::Rmat {
            scale: 19,
            m: 3_000_000,
        },
    },
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::GraphStats;

    #[test]
    fn suite_names_are_unique() {
        let mut names: Vec<_> = suite().iter().map(|d| d.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), suite().len());
    }

    #[test]
    fn small_tier_builds_and_matches_type() {
        for spec in up_to_tier(Tier::Small) {
            let g = spec.build();
            assert!(g.num_nodes() >= 1_000, "{} too small", spec.name);
            assert!(g.validate(), "{} invalid", spec.name);
            let stats = GraphStats::compute(&g);
            assert_eq!(
                stats.symmetric, !spec.directed,
                "{} directedness mismatch",
                spec.name
            );
        }
    }

    #[test]
    fn build_is_deterministic() {
        let spec = by_name("grqc-sim").unwrap();
        let a = spec.build();
        let b = spec.build();
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }

    #[test]
    fn by_name_lookup() {
        assert!(by_name("wikivote-sim").is_some());
        assert!(by_name("no-such-dataset").is_none());
    }

    #[test]
    fn tier_filter_is_monotone() {
        let small = up_to_tier(Tier::Small).count();
        let medium = up_to_tier(Tier::Medium).count();
        let large = up_to_tier(Tier::Large).count();
        assert!(small <= medium && medium <= large);
        assert_eq!(large, suite().len());
        assert_eq!(small, 4);
    }
}
