//! Whole-graph transformation passes.
//!
//! Dataset preparation for SimRank experiments routinely needs a few
//! structural passes: extracting the largest weakly-connected component
//! (what the SNAP datasets in the paper's Table 3 effectively are),
//! taking node-induced subgraphs with compact relabeling, transposing,
//! and peeling low-degree nodes (k-core). Each pass returns a new
//! [`DiGraph`] plus, where node identities change, the mapping back to the
//! original ids.

use crate::components::{largest_component_size, weakly_connected_components};
use crate::digraph::DiGraph;
use crate::node::NodeId;

/// Result of a pass that renumbers nodes: the new graph plus, for each new
/// node id, the original id it came from.
#[derive(Clone, Debug)]
pub struct Relabeled {
    /// The transformed graph with node ids `0..new_n`.
    pub graph: DiGraph,
    /// `original[i]` is the original id of new node `i`.
    pub original: Vec<NodeId>,
}

impl Relabeled {
    /// Inverse mapping: for each *original* id, the new id (or `None` if the
    /// node was dropped by the pass).
    pub fn new_ids(&self, original_n: usize) -> Vec<Option<NodeId>> {
        let mut map = vec![None; original_n];
        for (new, &orig) in self.original.iter().enumerate() {
            map[orig.index()] = Some(NodeId::from_index(new));
        }
        map
    }
}

/// Node-induced subgraph on `keep` (need not be sorted; duplicates are
/// ignored). Nodes are renumbered compactly in ascending original-id order.
pub fn induced_subgraph(g: &DiGraph, keep: &[NodeId]) -> Relabeled {
    let mut in_set = vec![false; g.num_nodes()];
    for &v in keep {
        if v.index() < g.num_nodes() {
            in_set[v.index()] = true;
        }
    }
    let original: Vec<NodeId> = (0..g.num_nodes())
        .filter(|&i| in_set[i])
        .map(NodeId::from_index)
        .collect();
    let mut new_id = vec![u32::MAX; g.num_nodes()];
    for (new, &orig) in original.iter().enumerate() {
        new_id[orig.index()] = new as u32;
    }
    let mut edges = Vec::new();
    for (u, v) in g.edges() {
        if in_set[u.index()] && in_set[v.index()] {
            edges.push((new_id[u.index()], new_id[v.index()]));
        }
    }
    Relabeled {
        graph: DiGraph::from_edges(original.len(), edges),
        original,
    }
}

/// Extract the largest weakly-connected component, renumbered compactly.
/// Ties are broken by the smallest component label (deterministic).
pub fn largest_wcc(g: &DiGraph) -> Relabeled {
    let (labels, count) = weakly_connected_components(g);
    if count == 0 {
        return Relabeled {
            graph: DiGraph::from_edges(0, Vec::<(u32, u32)>::new()),
            original: Vec::new(),
        };
    }
    let target_size = largest_component_size(&labels, count);
    let mut sizes = vec![0usize; count];
    for &l in &labels {
        sizes[l as usize] += 1;
    }
    let target = sizes
        .iter()
        .position(|&s| s == target_size)
        .expect("a component of the largest size exists") as u32;
    let keep: Vec<NodeId> = labels
        .iter()
        .enumerate()
        .filter(|&(_, &l)| l == target)
        .map(|(i, _)| NodeId::from_index(i))
        .collect();
    induced_subgraph(g, &keep)
}

/// The transpose graph: every edge `u -> v` becomes `v -> u`. Node ids are
/// unchanged. SimRank on the transpose equals "out-neighbor SimRank" on the
/// original, which is how co-citation vs. bibliographic-coupling styles of
/// similarity are switched.
pub fn transpose(g: &DiGraph) -> DiGraph {
    DiGraph::from_edges(g.num_nodes(), g.edges().map(|(u, v)| (v.0, u.0)))
}

/// Iteratively remove nodes whose **total** degree (in + out) is below `k`,
/// until none remain; returns the k-core, renumbered compactly. The classic
/// peeling loop; `O((n + m) · rounds)` worst case, near-linear in practice.
pub fn k_core(g: &DiGraph, k: usize) -> Relabeled {
    let n = g.num_nodes();
    let mut alive = vec![true; n];
    let mut deg: Vec<usize> = (0..n)
        .map(|i| {
            let v = NodeId::from_index(i);
            g.in_degree(v) + g.out_degree(v)
        })
        .collect();
    let mut queue: Vec<usize> = (0..n).filter(|&i| deg[i] < k).collect();
    while let Some(i) = queue.pop() {
        if !alive[i] {
            continue;
        }
        alive[i] = false;
        let v = NodeId::from_index(i);
        for &w in g.out_neighbors(v).iter().chain(g.in_neighbors(v)) {
            let j = w.index();
            if alive[j] {
                deg[j] -= 1;
                if deg[j] < k {
                    queue.push(j);
                }
            }
        }
    }
    let keep: Vec<NodeId> = (0..n)
        .filter(|&i| alive[i])
        .map(NodeId::from_index)
        .collect();
    induced_subgraph(g, &keep)
}

/// Remove nodes with no in-neighbors, repeatedly, until every remaining node
/// has at least one in-neighbor (or the graph is empty). Dangling-in nodes
/// kill √c-walks instantly, so some experiments want them peeled.
pub fn peel_dangling_in(g: &DiGraph) -> Relabeled {
    let n = g.num_nodes();
    let mut alive = vec![true; n];
    let mut indeg: Vec<usize> = (0..n).map(|i| g.in_degree(NodeId::from_index(i))).collect();
    let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    while let Some(i) = queue.pop() {
        if !alive[i] {
            continue;
        }
        alive[i] = false;
        for &w in g.out_neighbors(NodeId::from_index(i)) {
            let j = w.index();
            if alive[j] {
                indeg[j] -= 1;
                if indeg[j] == 0 {
                    queue.push(j);
                }
            }
        }
    }
    let keep: Vec<NodeId> = (0..n)
        .filter(|&i| alive[i])
        .map(NodeId::from_index)
        .collect();
    induced_subgraph(g, &keep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{
        complete_graph, cycle_graph, path_graph, star_graph, two_cliques_bridge,
    };

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let g = path_graph(5); // 0->1->2->3->4
        let sub = induced_subgraph(&g, &[NodeId(1), NodeId(2), NodeId(4)]);
        assert_eq!(sub.graph.num_nodes(), 3);
        // Only 1->2 survives; relabeled 0->1.
        assert_eq!(sub.graph.num_edges(), 1);
        assert!(sub.graph.has_edge(NodeId(0), NodeId(1)));
        assert_eq!(sub.original, vec![NodeId(1), NodeId(2), NodeId(4)]);
    }

    #[test]
    fn induced_subgraph_ignores_out_of_range_and_duplicates() {
        let g = path_graph(3);
        let sub = induced_subgraph(&g, &[NodeId(0), NodeId(0), NodeId(99)]);
        assert_eq!(sub.graph.num_nodes(), 1);
        assert_eq!(sub.graph.num_edges(), 0);
    }

    #[test]
    fn new_ids_roundtrip() {
        let g = path_graph(4);
        let sub = induced_subgraph(&g, &[NodeId(1), NodeId(3)]);
        let map = sub.new_ids(4);
        assert_eq!(map[0], None);
        assert_eq!(map[1], Some(NodeId(0)));
        assert_eq!(map[2], None);
        assert_eq!(map[3], Some(NodeId(1)));
    }

    #[test]
    fn largest_wcc_of_disconnected_graph() {
        // Component A: 0->1->2 (3 nodes). Component B: 3->4 (2 nodes).
        let g = DiGraph::from_edges(5, vec![(0, 1), (1, 2), (3, 4)]);
        let wcc = largest_wcc(&g);
        assert_eq!(wcc.graph.num_nodes(), 3);
        assert_eq!(wcc.graph.num_edges(), 2);
        assert_eq!(wcc.original, vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn largest_wcc_of_connected_graph_is_identity_shape() {
        let g = two_cliques_bridge(4);
        let wcc = largest_wcc(&g);
        assert_eq!(wcc.graph.num_nodes(), g.num_nodes());
        assert_eq!(wcc.graph.num_edges(), g.num_edges());
    }

    #[test]
    fn largest_wcc_of_empty_graph() {
        let g = DiGraph::from_edges(0, Vec::<(u32, u32)>::new());
        let wcc = largest_wcc(&g);
        assert_eq!(wcc.graph.num_nodes(), 0);
    }

    #[test]
    fn transpose_reverses_every_edge() {
        let g = path_graph(4);
        let t = transpose(&g);
        assert_eq!(t.num_edges(), g.num_edges());
        for (u, v) in g.edges() {
            assert!(t.has_edge(v, u));
            assert!(!t.has_edge(u, v) || g.has_edge(v, u));
        }
    }

    #[test]
    fn transpose_is_involution() {
        let g = star_graph(6);
        let tt = transpose(&transpose(&g));
        assert_eq!(tt.num_nodes(), g.num_nodes());
        for (u, v) in g.edges() {
            assert!(tt.has_edge(u, v));
        }
        assert_eq!(tt.num_edges(), g.num_edges());
    }

    #[test]
    fn k_core_peels_path_completely() {
        // Every node of a directed path has total degree <= 2; 3-core is empty.
        let g = path_graph(6);
        let core = k_core(&g, 3);
        assert_eq!(core.graph.num_nodes(), 0);
    }

    #[test]
    fn k_core_keeps_clique() {
        // complete_graph(5): total degree 8 per node (4 in + 4 out).
        let g = complete_graph(5);
        let core = k_core(&g, 8);
        assert_eq!(core.graph.num_nodes(), 5);
        assert_eq!(core.graph.num_edges(), 20);
    }

    #[test]
    fn k_core_zero_is_identity() {
        let g = cycle_graph(5);
        let core = k_core(&g, 0);
        assert_eq!(core.graph.num_nodes(), 5);
        assert_eq!(core.graph.num_edges(), 5);
    }

    #[test]
    fn peel_dangling_in_removes_chain_heads() {
        // 0->1->2 and a cycle 2->3->4->2: peeling removes 0 then 1.
        let g = DiGraph::from_edges(5, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 2)]);
        let peeled = peel_dangling_in(&g);
        assert_eq!(peeled.graph.num_nodes(), 3);
        assert_eq!(peeled.graph.num_edges(), 3);
        assert_eq!(peeled.original, vec![NodeId(2), NodeId(3), NodeId(4)]);
    }

    #[test]
    fn peel_dangling_in_on_cycle_is_identity() {
        let g = cycle_graph(4);
        let peeled = peel_dangling_in(&g);
        assert_eq!(peeled.graph.num_nodes(), 4);
    }
}
