//! Strongly-typed node identifiers.

use std::fmt;

/// Identifier of a node in a [`crate::DiGraph`].
///
/// Node ids are dense: a graph with `n` nodes uses exactly the ids
/// `0..n`. Using a `u32` newtype (rather than `usize`) halves the size of
/// adjacency arrays and hitting-probability entries, which matters because
/// the SLING index stores `O(n/ε)` of them.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Largest representable id, used as a sentinel by some algorithms.
    pub const MAX: NodeId = NodeId(u32::MAX);

    /// The id as an array index.
    #[inline(always)]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from an array index.
    ///
    /// # Panics
    /// Panics if `i` does not fit in `u32`.
    #[inline(always)]
    pub fn from_index(i: usize) -> Self {
        debug_assert!(i <= u32::MAX as usize, "node index {i} overflows u32");
        NodeId(i as u32)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for NodeId {
    #[inline]
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<NodeId> for u32 {
    #[inline]
    fn from(v: NodeId) -> Self {
        v.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        for i in [0usize, 1, 17, 65_535, 1_000_000] {
            assert_eq!(NodeId::from_index(i).index(), i);
        }
    }

    #[test]
    fn conversions() {
        let v: NodeId = 42u32.into();
        assert_eq!(u32::from(v), 42);
        assert_eq!(v, NodeId(42));
    }

    #[test]
    fn debug_and_display() {
        assert_eq!(format!("{:?}", NodeId(7)), "v7");
        assert_eq!(format!("{}", NodeId(7)), "7");
    }

    #[test]
    fn ordering_follows_raw_id() {
        assert!(NodeId(3) < NodeId(4));
        assert!(NodeId::MAX > NodeId(0));
    }
}
