//! Random bipartite generators.
//!
//! Bipartite graphs are the natural home of several SimRank applications
//! the paper's introduction motivates: query–ad click graphs (SimRank++),
//! user–item graphs for collaborative filtering, and author–paper graphs.
//! Nodes `0..left` form the left side; `left..left+right` the right side.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use crate::builder::GraphBuilder;
use crate::digraph::DiGraph;
use crate::error::GraphError;
use crate::fxhash::FxHashSet;

/// Uniform random bipartite graph with exactly `m` distinct edges, each
/// directed left → right. Deterministic in `seed`.
pub fn random_bipartite(
    left: usize,
    right: usize,
    m: usize,
    seed: u64,
) -> Result<DiGraph, GraphError> {
    let max = left.saturating_mul(right);
    if m > max {
        return Err(GraphError::InvalidGenerator(format!(
            "bipartite({left}, {right}) holds at most {max} edges, asked for {m}"
        )));
    }
    if m > 0 && (left == 0 || right == 0) {
        return Err(GraphError::InvalidGenerator(
            "bipartite edges require both sides non-empty".to_string(),
        ));
    }
    let n = left + right;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut seen: FxHashSet<(u32, u32)> = FxHashSet::default();
    let mut builder = GraphBuilder::with_nodes(n);
    while seen.len() < m {
        let u = rng.random_range(0..left as u32);
        let v = left as u32 + rng.random_range(0..right as u32);
        if seen.insert((u, v)) {
            builder.add_edge(u, v);
        }
    }
    builder.build()
}

/// Bipartite graph where each left node links to `per_left` right nodes
/// sampled by preferential attachment over right-side degree (plus-one
/// smoothing), yielding the skewed popularity distribution of real
/// click/rating data. Edges are directed left → right; symmetric pass
/// optional via [`crate::transform::transpose`] composition downstream.
pub fn preferential_bipartite(
    left: usize,
    right: usize,
    per_left: usize,
    seed: u64,
) -> Result<DiGraph, GraphError> {
    if per_left > right {
        return Err(GraphError::InvalidGenerator(format!(
            "per_left = {per_left} exceeds right side size {right}"
        )));
    }
    let n = left + right;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_nodes(n);
    // Repeated-targets urn: each chosen right node is pushed back, making
    // popular nodes more likely to be chosen again.
    let mut urn: Vec<u32> = (0..right as u32).map(|r| left as u32 + r).collect();
    let base = urn.len();
    for u in 0..left as u32 {
        let mut picked: FxHashSet<u32> = FxHashSet::default();
        while picked.len() < per_left {
            let idx = rng.random_range(0..urn.len());
            let v = urn[idx];
            if picked.insert(v) {
                builder.add_edge(u, v);
            }
        }
        for &v in &picked {
            urn.push(v);
        }
        debug_assert!(urn.len() >= base);
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    #[test]
    fn uniform_bipartite_respects_sides() {
        let g = random_bipartite(10, 15, 40, 1).unwrap();
        assert_eq!(g.num_nodes(), 25);
        assert_eq!(g.num_edges(), 40);
        for (u, v) in g.edges() {
            assert!(u.0 < 10, "source on left side");
            assert!((10..25).contains(&v.0), "target on right side");
        }
    }

    #[test]
    fn uniform_bipartite_full() {
        let g = random_bipartite(3, 4, 12, 2).unwrap();
        assert_eq!(g.num_edges(), 12);
    }

    #[test]
    fn uniform_bipartite_rejects_overfull() {
        assert!(random_bipartite(3, 4, 13, 0).is_err());
        assert!(random_bipartite(0, 4, 1, 0).is_err());
    }

    #[test]
    fn empty_bipartite_is_fine() {
        let g = random_bipartite(5, 5, 0, 0).unwrap();
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn preferential_bipartite_degrees() {
        let g = preferential_bipartite(100, 20, 3, 7).unwrap();
        assert_eq!(g.num_edges(), 300);
        for u in 0..100u32 {
            assert_eq!(g.out_degree(NodeId(u)), 3);
        }
        // Popularity should be skewed: max right in-degree well above mean.
        let mean = 300.0 / 20.0;
        let max_in = (100..120u32).map(|v| g.in_degree(NodeId(v))).max().unwrap();
        assert!(max_in as f64 > mean, "max {max_in} <= mean {mean}");
    }

    #[test]
    fn preferential_bipartite_rejects_impossible_fanout() {
        assert!(preferential_bipartite(5, 2, 3, 0).is_err());
    }

    #[test]
    fn deterministic_in_seed() {
        let a = random_bipartite(8, 8, 20, 5).unwrap();
        let b = random_bipartite(8, 8, 20, 5).unwrap();
        assert!(a.edges().eq(b.edges()));
    }
}
