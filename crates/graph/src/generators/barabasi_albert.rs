//! Barabási–Albert preferential attachment.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use crate::builder::GraphBuilder;
use crate::digraph::DiGraph;
use crate::error::GraphError;

/// Undirected Barabási–Albert graph: starts from a small clique and
/// attaches each new node to `k` existing nodes chosen proportionally to
/// degree (the classic repeated-endpoint trick: sampling a uniform element
/// of the running edge-endpoint list is degree-proportional).
///
/// Produces the heavy-tailed degree distributions characteristic of the
/// paper's collaboration and social-network datasets (GrQc, HepTh, Enron).
/// Materialized as a symmetric directed graph.
pub fn barabasi_albert(n: usize, k: usize, seed: u64) -> Result<DiGraph, GraphError> {
    if k == 0 {
        return Err(GraphError::InvalidGenerator("k must be >= 1".into()));
    }
    if n <= k {
        return Err(GraphError::InvalidGenerator(format!(
            "need n > k (got n={n}, k={k})"
        )));
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_nodes(n).symmetric(true);
    // Endpoint multiset for degree-proportional sampling.
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * n * k);

    // Seed clique over nodes 0..=k so every early node has nonzero degree.
    for u in 0..=(k as u32) {
        for v in (u + 1)..=(k as u32) {
            builder.add_edge(u, v);
            endpoints.push(u);
            endpoints.push(v);
        }
    }

    for new in (k + 1)..n {
        let new = new as u32;
        let mut chosen: Vec<u32> = Vec::with_capacity(k);
        // Rejection-sample k distinct degree-proportional targets.
        while chosen.len() < k {
            let t = endpoints[rng.random_range(0..endpoints.len())];
            if t != new && !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            builder.add_edge(new, t);
            endpoints.push(new);
            endpoints.push(t);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::GraphStats;

    #[test]
    fn node_and_edge_counts() {
        let (n, k) = (500, 3);
        let g = barabasi_albert(n, k, 11).unwrap();
        assert_eq!(g.num_nodes(), n);
        // clique edges + k per new node, each counted twice (symmetric)
        let clique = (k + 1) * k / 2;
        let expected = 2 * (clique + (n - k - 1) * k);
        assert_eq!(g.num_edges(), expected);
        assert!(g.validate());
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let g = barabasi_albert(2000, 2, 5).unwrap();
        let stats = GraphStats::compute(&g);
        // A hub should exist: max degree far above the mean for BA graphs.
        assert!(stats.max_in_degree as f64 > 8.0 * stats.avg_in_degree);
    }

    #[test]
    fn deterministic() {
        let a = barabasi_albert(100, 2, 1).unwrap();
        let b = barabasi_albert(100, 2, 1).unwrap();
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(barabasi_albert(3, 0, 0).is_err());
        assert!(barabasi_albert(3, 3, 0).is_err());
    }

    #[test]
    fn every_node_connected() {
        let g = barabasi_albert(200, 2, 9).unwrap();
        for v in g.nodes() {
            assert!(g.in_degree(v) >= 1, "{v:?} isolated");
        }
    }
}
