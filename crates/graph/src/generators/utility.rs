//! Closed-form utility graphs with hand-derivable SimRank values; the
//! backbone of the workspace's correctness tests.

use crate::builder::GraphBuilder;
use crate::digraph::DiGraph;

/// Directed cycle `0 -> 1 -> ... -> n-1 -> 0`.
///
/// Every node has exactly one in-neighbor, so two √c-walks from distinct
/// nodes move deterministically and never collide unless they started at
/// the same node: `s(u, v) = 0` for `u != v`. This is also the paper's
/// Figure 8 graph for `n = 4` (the adversarial case for linearization).
pub fn cycle_graph(n: usize) -> DiGraph {
    let mut b = GraphBuilder::with_nodes(n);
    for u in 0..n as u32 {
        b.add_edge(u, (u + 1) % n as u32);
    }
    b.build().expect("cycle fits u32")
}

/// Directed path `0 -> 1 -> ... -> n-1`.
pub fn path_graph(n: usize) -> DiGraph {
    let mut b = GraphBuilder::with_nodes(n);
    for u in 0..(n as u32).saturating_sub(1) {
        b.add_edge(u, u + 1);
    }
    b.build().expect("path fits u32")
}

/// In-star: every leaf `1..n` points at the hub `0`.
///
/// All leaves have no in-neighbors, the hub has `n - 1`. For two distinct
/// leaves `s = 0`; `s(0, leaf) = 0` as well (a walk from a leaf dies
/// immediately).
pub fn star_graph(n: usize) -> DiGraph {
    let mut b = GraphBuilder::with_nodes(n);
    for u in 1..n as u32 {
        b.add_edge(u, 0u32);
    }
    b.build().expect("star fits u32")
}

/// Complete symmetric digraph on `n` nodes (every ordered pair, no loops).
///
/// By symmetry all off-diagonal SimRank scores are equal; the fixed point
/// of Eq. (1) is `s = c(n-2) / ((1-c)(n-1)² + c(n-2))`, which several
/// test suites in this workspace use as a closed-form oracle.
pub fn complete_graph(n: usize) -> DiGraph {
    let mut b = GraphBuilder::with_nodes(n);
    for u in 0..n as u32 {
        for v in 0..n as u32 {
            if u != v {
                b.add_edge(u, v);
            }
        }
    }
    b.build().expect("complete graph fits u32")
}

/// Two symmetric cliques of size `k` joined by one bridge edge pair;
/// a classic community-structure toy graph for similarity sanity checks
/// (nodes inside one clique should be much more similar to each other than
/// to nodes across the bridge).
pub fn two_cliques_bridge(k: usize) -> DiGraph {
    let mut b = GraphBuilder::with_nodes(2 * k).symmetric(true);
    for u in 0..k as u32 {
        for v in (u + 1)..k as u32 {
            b.add_edge(u, v);
            b.add_edge(u + k as u32, v + k as u32);
        }
    }
    b.add_edge(0u32, k as u32);
    b.build().expect("cliques fit u32")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;

    #[test]
    fn cycle_degrees() {
        let g = cycle_graph(5);
        assert_eq!(g.num_edges(), 5);
        for v in g.nodes() {
            assert_eq!(g.in_degree(v), 1);
            assert_eq!(g.out_degree(v), 1);
        }
    }

    #[test]
    fn path_endpoints() {
        let g = path_graph(4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.in_degree(NodeId(0)), 0);
        assert_eq!(g.out_degree(NodeId(3)), 0);
    }

    #[test]
    fn star_shape() {
        let g = star_graph(6);
        assert_eq!(g.in_degree(NodeId(0)), 5);
        for leaf in 1..6u32 {
            assert_eq!(g.in_degree(NodeId(leaf)), 0);
            assert_eq!(g.out_degree(NodeId(leaf)), 1);
        }
    }

    #[test]
    fn complete_graph_degrees() {
        let g = complete_graph(5);
        assert_eq!(g.num_edges(), 20);
        for v in g.nodes() {
            assert_eq!(g.in_degree(v), 4);
        }
    }

    #[test]
    fn two_cliques_sizes() {
        let g = two_cliques_bridge(4);
        assert_eq!(g.num_nodes(), 8);
        // each clique: 4*3 directed edges = 12, x2 cliques, + 2 bridge
        assert_eq!(g.num_edges(), 26);
        assert!(g.has_edge(NodeId(0), NodeId(4)));
        assert!(g.has_edge(NodeId(4), NodeId(0)));
    }

    #[test]
    fn degenerate_sizes() {
        assert_eq!(cycle_graph(1).num_edges(), 0); // self loop dropped
        assert_eq!(path_graph(1).num_edges(), 0);
        assert_eq!(star_graph(1).num_edges(), 0);
        assert_eq!(complete_graph(1).num_edges(), 0);
    }
}
