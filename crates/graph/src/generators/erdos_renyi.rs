//! Erdős–Rényi G(n, m) generators.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use crate::builder::GraphBuilder;
use crate::digraph::DiGraph;
use crate::error::GraphError;
use crate::fxhash::FxHashSet;

/// Directed G(n, m): exactly `m` distinct directed edges (no self-loops),
/// sampled uniformly, deterministic in `seed`.
pub fn erdos_renyi_directed(n: usize, m: usize, seed: u64) -> Result<DiGraph, GraphError> {
    let max = n.saturating_mul(n.saturating_sub(1));
    if m > max {
        return Err(GraphError::InvalidGenerator(format!(
            "G({n}, m={m}) exceeds the {max} possible directed edges"
        )));
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut seen: FxHashSet<(u32, u32)> = FxHashSet::default();
    let mut builder = GraphBuilder::with_nodes(n);
    while seen.len() < m {
        let u = rng.random_range(0..n as u32);
        let v = rng.random_range(0..n as u32);
        if u != v && seen.insert((u, v)) {
            builder.add_edge(u, v);
        }
    }
    builder.build()
}

/// Undirected G(n, m): `m` distinct undirected edges, materialized as `2m`
/// directed edges — the paper's treatment of its undirected datasets.
pub fn erdos_renyi_undirected(n: usize, m: usize, seed: u64) -> Result<DiGraph, GraphError> {
    let max = n.saturating_mul(n.saturating_sub(1)) / 2;
    if m > max {
        return Err(GraphError::InvalidGenerator(format!(
            "G({n}, m={m}) exceeds the {max} possible undirected edges"
        )));
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut seen: FxHashSet<(u32, u32)> = FxHashSet::default();
    let mut builder = GraphBuilder::with_nodes(n).symmetric(true);
    while seen.len() < m {
        let u = rng.random_range(0..n as u32);
        let v = rng.random_range(0..n as u32);
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if seen.insert(key) {
            builder.add_edge(key.0, key.1);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directed_has_exact_edge_count() {
        let g = erdos_renyi_directed(50, 200, 7).unwrap();
        assert_eq!(g.num_nodes(), 50);
        assert_eq!(g.num_edges(), 200);
        assert!(g.validate());
    }

    #[test]
    fn undirected_is_symmetric() {
        let g = erdos_renyi_undirected(40, 100, 7).unwrap();
        assert_eq!(g.num_edges(), 200);
        for (u, v) in g.edges() {
            assert!(g.has_edge(v, u));
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = erdos_renyi_directed(30, 80, 99).unwrap();
        let b = erdos_renyi_directed(30, 80, 99).unwrap();
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
        let c = erdos_renyi_directed(30, 80, 100).unwrap();
        assert_ne!(a.edges().collect::<Vec<_>>(), c.edges().collect::<Vec<_>>());
    }

    #[test]
    fn rejects_impossible_density() {
        assert!(erdos_renyi_directed(3, 7, 0).is_err());
        assert!(erdos_renyi_undirected(3, 4, 0).is_err());
    }

    #[test]
    fn dense_case_terminates() {
        // m equal to the maximum should still terminate (complete digraph).
        let g = erdos_renyi_directed(6, 30, 3).unwrap();
        assert_eq!(g.num_edges(), 30);
    }
}
