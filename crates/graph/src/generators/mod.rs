//! Deterministic random-graph generators and closed-form utility graphs.
//!
//! These stand in for the paper's real-world datasets (see `DESIGN.md` §6)
//! and supply the small structured graphs the test suites use to check
//! SimRank values against hand-computed results.

mod barabasi_albert;
mod bipartite;
mod erdos_renyi;
mod lattice;
mod rmat;
mod utility;
mod watts_strogatz;

pub use barabasi_albert::barabasi_albert;
pub use bipartite::{preferential_bipartite, random_bipartite};
pub use erdos_renyi::{erdos_renyi_directed, erdos_renyi_undirected};
pub use lattice::{binary_in_tree, grid_graph};
pub use rmat::{rmat, RmatConfig};
pub use utility::{complete_graph, cycle_graph, path_graph, star_graph, two_cliques_bridge};
pub use watts_strogatz::watts_strogatz;
