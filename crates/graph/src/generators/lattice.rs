//! Grid/lattice graphs with known closed-form structure.
//!
//! Lattices give the test-suites graphs whose SimRank values have symmetric
//! structure (nodes at mirrored positions are exchangeable), which makes
//! strong metamorphic assertions possible without ground-truth solvers.

use crate::builder::GraphBuilder;
use crate::digraph::DiGraph;

/// Undirected `rows x cols` grid: node `(r, c)` is `r * cols + c`, edges to
/// the 4-neighborhood, materialized symmetrically.
pub fn grid_graph(rows: usize, cols: usize) -> DiGraph {
    let n = rows * cols;
    let mut b = GraphBuilder::with_nodes(n).symmetric(true);
    for r in 0..rows {
        for c in 0..cols {
            let v = (r * cols + c) as u32;
            if c + 1 < cols {
                b.add_edge(v, v + 1);
            }
            if r + 1 < rows {
                b.add_edge(v, v + cols as u32);
            }
        }
    }
    b.build().expect("grid node count fits u32")
}

/// Complete binary tree of the given `depth` with edges parent → child, so
/// every non-root node has exactly one in-neighbor (its parent). Node 0 is
/// the root; node `v`'s children are `2v+1` and `2v+2`. Reverse random
/// walks (which follow in-edges) from the leaves therefore climb
/// deterministically toward the root — a useful worst case for
/// hitting-probability concentration.
pub fn binary_in_tree(depth: u32) -> DiGraph {
    let n = (1usize << (depth + 1)) - 1;
    let mut b = GraphBuilder::with_nodes(n);
    for v in 1..n as u32 {
        let parent = (v - 1) / 2;
        b.add_edge(parent, v); // parent -> child: child's in-neighbor is parent
    }
    b.build().expect("tree node count fits u32")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::GraphStats;
    use crate::NodeId;

    #[test]
    fn grid_counts() {
        let g = grid_graph(3, 4);
        assert_eq!(g.num_nodes(), 12);
        // 3*3 horizontal + 2*4 vertical undirected edges = 17 -> 34 directed.
        assert_eq!(g.num_edges(), 34);
        assert!(GraphStats::compute(&g).symmetric);
    }

    #[test]
    fn grid_corner_and_center_degrees() {
        let g = grid_graph(3, 3);
        assert_eq!(g.out_degree(NodeId(0)), 2); // corner
        assert_eq!(g.out_degree(NodeId(4)), 4); // center
        assert_eq!(g.out_degree(NodeId(1)), 3); // edge midpoint
    }

    #[test]
    fn degenerate_grids() {
        assert_eq!(grid_graph(1, 1).num_edges(), 0);
        let line = grid_graph(1, 5);
        assert_eq!(line.num_edges(), 8); // path of 5, symmetric
        assert_eq!(grid_graph(0, 9).num_nodes(), 0);
    }

    #[test]
    fn tree_structure() {
        let g = binary_in_tree(3);
        assert_eq!(g.num_nodes(), 15);
        assert_eq!(g.num_edges(), 14);
        // Root has no in-neighbors; every other node has exactly one.
        assert_eq!(g.in_degree(NodeId(0)), 0);
        for v in 1..15u32 {
            assert_eq!(g.in_degree(NodeId(v)), 1);
        }
        // Internal nodes have out-degree 2, leaves 0.
        assert_eq!(g.out_degree(NodeId(0)), 2);
        assert_eq!(g.out_degree(NodeId(14)), 0);
    }
}
