//! R-MAT recursive-matrix generator (Chakrabarti et al.), used here to
//! synthesize web-graph-like and wiki-like directed datasets with skewed
//! in- and out-degree distributions.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use crate::builder::GraphBuilder;
use crate::digraph::DiGraph;
use crate::error::GraphError;
use crate::fxhash::FxHashSet;

/// R-MAT quadrant probabilities. Must sum to 1.
#[derive(Clone, Copy, Debug)]
pub struct RmatConfig {
    /// Probability of the (0,0) quadrant; larger `a` means more skew.
    pub a: f64,
    /// Probability of the (0,1) quadrant.
    pub b: f64,
    /// Probability of the (1,0) quadrant.
    pub c: f64,
    /// Probability of the (1,1) quadrant.
    pub d: f64,
    /// Per-level probability perturbation to avoid exact self-similarity.
    pub noise: f64,
}

impl Default for RmatConfig {
    fn default() -> Self {
        // The canonical web-graph parameterization.
        RmatConfig {
            a: 0.57,
            b: 0.19,
            c: 0.19,
            d: 0.05,
            noise: 0.1,
        }
    }
}

/// Generate a directed graph with `n = 2^scale` nodes and `m` distinct
/// edges via R-MAT recursive quadrant descent.
pub fn rmat(scale: u32, m: usize, config: RmatConfig, seed: u64) -> Result<DiGraph, GraphError> {
    let sum = config.a + config.b + config.c + config.d;
    if (sum - 1.0).abs() > 1e-9 {
        return Err(GraphError::InvalidGenerator(format!(
            "quadrant probabilities sum to {sum}, expected 1"
        )));
    }
    if scale == 0 || scale > 31 {
        return Err(GraphError::InvalidGenerator(format!(
            "scale {scale} out of supported range 1..=31"
        )));
    }
    let n = 1usize << scale;
    let max = n * (n - 1);
    if m > max / 2 {
        return Err(GraphError::InvalidGenerator(format!(
            "m={m} too dense for RMAT with n={n}"
        )));
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut seen: FxHashSet<(u32, u32)> = FxHashSet::default();
    let mut builder = GraphBuilder::with_nodes(n);
    while seen.len() < m {
        let (u, v) = sample_edge(scale, &config, &mut rng);
        if u != v && seen.insert((u, v)) {
            builder.add_edge(u, v);
        }
    }
    builder.build()
}

fn sample_edge(scale: u32, cfg: &RmatConfig, rng: &mut SmallRng) -> (u32, u32) {
    let (mut u, mut v) = (0u32, 0u32);
    for _ in 0..scale {
        u <<= 1;
        v <<= 1;
        // Perturb quadrant probabilities per level, then renormalize.
        let mut jitter = |p: f64| p * (1.0 - cfg.noise + 2.0 * cfg.noise * rng.random::<f64>());
        let (a, b, c, d) = (jitter(cfg.a), jitter(cfg.b), jitter(cfg.c), jitter(cfg.d));
        let _ = &jitter;
        let total = a + b + c + d;
        let r = rng.random::<f64>() * total;
        if r < a {
            // (0,0): nothing to add
        } else if r < a + b {
            v |= 1;
        } else if r < a + b + c {
            u |= 1;
        } else {
            u |= 1;
            v |= 1;
        }
    }
    (u, v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::GraphStats;

    #[test]
    fn respects_edge_count_and_bounds() {
        let g = rmat(10, 5000, RmatConfig::default(), 42).unwrap();
        assert_eq!(g.num_nodes(), 1024);
        assert_eq!(g.num_edges(), 5000);
        assert!(g.validate());
    }

    #[test]
    fn skewed_in_degrees() {
        let g = rmat(12, 40_000, RmatConfig::default(), 7).unwrap();
        let stats = GraphStats::compute(&g);
        assert!(
            stats.max_in_degree as f64 > 10.0 * stats.avg_in_degree,
            "expected hub nodes, max {} avg {}",
            stats.max_in_degree,
            stats.avg_in_degree
        );
    }

    #[test]
    fn deterministic() {
        let a = rmat(8, 800, RmatConfig::default(), 3).unwrap();
        let b = rmat(8, 800, RmatConfig::default(), 3).unwrap();
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }

    #[test]
    fn validates_config() {
        let bad = RmatConfig {
            a: 0.9,
            b: 0.9,
            c: 0.0,
            d: 0.0,
            noise: 0.0,
        };
        assert!(rmat(8, 10, bad, 0).is_err());
        assert!(rmat(0, 10, RmatConfig::default(), 0).is_err());
        assert!(rmat(2, 100, RmatConfig::default(), 0).is_err());
    }
}
