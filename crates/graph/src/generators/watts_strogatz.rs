//! Watts–Strogatz small-world generator.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use crate::builder::GraphBuilder;
use crate::digraph::DiGraph;
use crate::error::GraphError;
use crate::fxhash::FxHashSet;

/// Watts–Strogatz small-world graph: a ring of `n` nodes, each connected to
/// its `k` nearest neighbors on each side, with every edge rewired to a
/// uniform random endpoint with probability `beta`. Materialized as an
/// undirected graph (`2·n·k` directed edges before dedup), matching the
/// paper's treatment of undirected datasets.
///
/// Requires `n > 2k` (so the initial ring lattice is simple) and
/// `beta ∈ [0, 1]`. Deterministic in `seed`.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> Result<DiGraph, GraphError> {
    if k == 0 || n <= 2 * k {
        return Err(GraphError::InvalidGenerator(format!(
            "watts_strogatz requires n > 2k (got n = {n}, k = {k})"
        )));
    }
    if !(0.0..=1.0).contains(&beta) {
        return Err(GraphError::InvalidGenerator(format!(
            "rewire probability beta = {beta} outside [0, 1]"
        )));
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    // Undirected edge set as canonical (min, max) pairs.
    let mut edges: FxHashSet<(u32, u32)> = FxHashSet::default();
    let canon = |a: u32, b: u32| (a.min(b), a.max(b));
    for u in 0..n as u32 {
        for j in 1..=k as u32 {
            let v = (u + j) % n as u32;
            edges.insert(canon(u, v));
        }
    }
    // Rewire each original lattice edge (u, u+j) with probability beta,
    // keeping u fixed and resampling the far endpoint.
    for u in 0..n as u32 {
        for j in 1..=k as u32 {
            if rng.random::<f64>() >= beta {
                continue;
            }
            let v = (u + j) % n as u32;
            let old = canon(u, v);
            if !edges.contains(&old) {
                continue; // already rewired away by an earlier step
            }
            // Reject self-loops and duplicate edges; a simple graph with
            // n > 2k always has a free slot, so this terminates.
            for _ in 0..4 * n {
                let w = rng.random_range(0..n as u32);
                let candidate = canon(u, w);
                if w != u && !edges.contains(&candidate) {
                    edges.remove(&old);
                    edges.insert(candidate);
                    break;
                }
            }
        }
    }
    let mut builder = GraphBuilder::with_nodes(n).symmetric(true);
    for (a, b) in edges {
        builder.add_edge(a, b);
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::GraphStats;
    use crate::traversal::{bfs_distances, Direction, UNREACHABLE};
    use crate::NodeId;

    #[test]
    fn beta_zero_is_ring_lattice() {
        let g = watts_strogatz(20, 2, 0.0, 1).unwrap();
        // Each node: 2 forward + 2 backward neighbors, symmetric.
        assert_eq!(g.num_edges(), 20 * 2 * 2);
        for v in g.nodes() {
            assert_eq!(g.out_degree(v), 4);
            assert_eq!(g.in_degree(v), 4);
        }
        assert!(GraphStats::compute(&g).symmetric);
    }

    #[test]
    fn edge_count_is_preserved_by_rewiring() {
        let g = watts_strogatz(50, 3, 0.5, 7).unwrap();
        // Rewiring moves edges; it never adds or removes them.
        assert_eq!(g.num_edges(), 50 * 3 * 2);
        assert!(GraphStats::compute(&g).symmetric);
    }

    #[test]
    fn rewiring_shrinks_path_lengths() {
        // Small-world effect: distances on the rewired ring are shorter
        // than on the pure lattice.
        let lattice = watts_strogatz(200, 2, 0.0, 3).unwrap();
        let small_world = watts_strogatz(200, 2, 0.3, 3).unwrap();
        let avg = |g: &DiGraph| {
            let d = bfs_distances(g, NodeId(0), Direction::Out);
            let reach: Vec<u32> = d.into_iter().filter(|&x| x != UNREACHABLE).collect();
            reach.iter().map(|&x| x as f64).sum::<f64>() / reach.len() as f64
        };
        assert!(avg(&small_world) < avg(&lattice));
    }

    #[test]
    fn deterministic_in_seed() {
        let a = watts_strogatz(30, 2, 0.4, 99).unwrap();
        let b = watts_strogatz(30, 2, 0.4, 99).unwrap();
        assert!(a.edges().eq(b.edges()));
    }

    #[test]
    fn rejects_degenerate_parameters() {
        assert!(watts_strogatz(4, 2, 0.1, 0).is_err());
        assert!(watts_strogatz(10, 0, 0.1, 0).is_err());
        assert!(watts_strogatz(10, 2, 1.5, 0).is_err());
    }
}
