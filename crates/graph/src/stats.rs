//! Summary statistics for graphs (the `repro table3` report).

use crate::digraph::DiGraph;

/// Degree and size statistics of a graph.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of directed edges.
    pub edges: usize,
    /// Mean in-degree (= mean out-degree = m/n).
    pub avg_in_degree: f64,
    /// Largest in-degree.
    pub max_in_degree: usize,
    /// Largest out-degree.
    pub max_out_degree: usize,
    /// Nodes with no in-neighbors (√c-walks from these halt immediately).
    pub dangling_in: usize,
    /// Nodes with no out-neighbors.
    pub dangling_out: usize,
    /// Whether every edge has its reverse (the graph is symmetric /
    /// undirected in the paper's sense).
    pub symmetric: bool,
}

impl GraphStats {
    /// Compute statistics in `O(n + m)` (plus `O(m log d)` for the symmetry
    /// check's binary searches).
    pub fn compute(g: &DiGraph) -> Self {
        let n = g.num_nodes();
        let m = g.num_edges();
        let mut max_in = 0;
        let mut max_out = 0;
        let mut dangling_in = 0;
        let mut dangling_out = 0;
        for v in g.nodes() {
            let din = g.in_degree(v);
            let dout = g.out_degree(v);
            max_in = max_in.max(din);
            max_out = max_out.max(dout);
            if din == 0 {
                dangling_in += 1;
            }
            if dout == 0 {
                dangling_out += 1;
            }
        }
        let symmetric = g.edges().all(|(u, v)| g.has_edge(v, u));
        GraphStats {
            nodes: n,
            edges: m,
            avg_in_degree: if n == 0 { 0.0 } else { m as f64 / n as f64 },
            max_in_degree: max_in,
            max_out_degree: max_out,
            dangling_in,
            dangling_out,
            symmetric,
        }
    }
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} m={} avg_deg={:.2} max_in={} max_out={} dangling_in={} type={}",
            self.nodes,
            self.edges,
            self.avg_in_degree,
            self.max_in_degree,
            self.max_out_degree,
            self.dangling_in,
            if self.symmetric {
                "undirected"
            } else {
                "directed"
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{cycle_graph, star_graph, two_cliques_bridge};

    #[test]
    fn cycle_stats() {
        let s = GraphStats::compute(&cycle_graph(10));
        assert_eq!(s.nodes, 10);
        assert_eq!(s.edges, 10);
        assert_eq!(s.max_in_degree, 1);
        assert_eq!(s.dangling_in, 0);
        assert!(!s.symmetric);
        assert!((s.avg_in_degree - 1.0).abs() < 1e-12);
    }

    #[test]
    fn star_stats() {
        let s = GraphStats::compute(&star_graph(8));
        assert_eq!(s.max_in_degree, 7);
        assert_eq!(s.dangling_in, 7);
        assert_eq!(s.dangling_out, 1);
    }

    #[test]
    fn symmetric_detection() {
        let s = GraphStats::compute(&two_cliques_bridge(3));
        assert!(s.symmetric);
    }

    #[test]
    fn display_mentions_type() {
        let s = GraphStats::compute(&cycle_graph(4));
        assert!(s.to_string().contains("directed"));
    }
}
