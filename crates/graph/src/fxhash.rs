//! A minimal FxHash-style hasher for integer-keyed maps.
//!
//! SimRank index construction hashes millions of `u32`/`u64` keys; the
//! standard library's SipHash is a measurable bottleneck there. This module
//! implements the multiply-and-rotate hash popularized by the Firefox and
//! rustc codebases (`rustc-hash`), which is not on this workspace's allowed
//! dependency list, so we carry the ~40 lines ourselves.
//!
//! The hash is **not** HashDoS-resistant; all keys in this workspace are
//! internally generated node ids, never attacker-controlled input.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Fast, low-quality hasher for trusted integer keys.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline(always)]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Mix 8 bytes at a time; the tail is padded into one word.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut word = [0u8; 8];
            word[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline(always)]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline(always)]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline(always)]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline(always)]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline(always)]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline(always)]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_basics() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&7], 14);
        assert_eq!(m.get(&1000), None);
    }

    #[test]
    fn set_dedups() {
        let mut s: FxHashSet<(u32, u32)> = FxHashSet::default();
        s.insert((1, 2));
        s.insert((1, 2));
        s.insert((2, 1));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn hash_is_deterministic_and_spreads() {
        let h = |x: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(x);
            hasher.finish()
        };
        assert_eq!(h(42), h(42));
        // Consecutive keys should not collide in the low bits used by
        // hashbrown's bucket selection.
        let mut lows: FxHashSet<u64> = FxHashSet::default();
        for i in 0..4096u64 {
            lows.insert(h(i) >> 57);
        }
        assert!(lows.len() > 16, "top bits should vary across nearby keys");
    }

    #[test]
    fn byte_stream_tail_handling() {
        // write() with a non-multiple-of-8 length must not panic and must
        // distinguish different tails.
        let mut a = FxHasher::default();
        a.write(b"abcdefghi");
        let mut b = FxHasher::default();
        b.write(b"abcdefghj");
        assert_ne!(a.finish(), b.finish());
    }
}
