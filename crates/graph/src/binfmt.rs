//! Compact binary graph persistence.
//!
//! The SNAP text format ([`crate::edgelist`]) is convenient for interchange
//! but slow to parse and ~3x larger than necessary. This module stores a
//! [`DiGraph`] as its out-CSR in a little-endian binary layout:
//!
//! ```text
//! magic "SLNGGRF1" | n: u64 | m: u64 | offsets: (n+1) x u64 | targets: m x u32
//! ```
//!
//! The in-CSR is rebuilt on load by transposition, which is cheaper than
//! storing it. Decoding validates every structural invariant (monotone
//! offsets, in-range targets, sorted adjacency) so a truncated or corrupted
//! file yields a [`GraphError::Parse`], never a malformed graph.

use std::fs::File;
use std::io::{Read, Write};
use std::path::Path;

use bytes::{Buf, BufMut};

use crate::csr::Csr;
use crate::digraph::DiGraph;
use crate::error::GraphError;
use crate::node::NodeId;

const MAGIC: &[u8; 8] = b"SLNGGRF1";

/// Serialize a graph into a byte vector.
pub fn to_bytes(g: &DiGraph) -> Vec<u8> {
    let n = g.num_nodes();
    let m = g.num_edges();
    let csr = g.out_csr();
    let mut out = Vec::with_capacity(24 + (n + 1) * 8 + m * 4);
    out.put_slice(MAGIC);
    out.put_u64_le(n as u64);
    out.put_u64_le(m as u64);
    for &o in csr.offsets() {
        out.put_u64_le(o as u64);
    }
    for &t in csr.targets() {
        out.put_u32_le(t.0);
    }
    out
}

fn corrupt(message: impl Into<String>) -> GraphError {
    GraphError::Parse {
        line: 0,
        message: message.into(),
    }
}

/// Decode a graph from bytes produced by [`to_bytes`].
pub fn from_bytes(mut buf: &[u8]) -> Result<DiGraph, GraphError> {
    if buf.len() < 24 {
        return Err(corrupt("binary graph shorter than its header"));
    }
    let mut magic = [0u8; 8];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(corrupt("bad magic: not a SLNGGRF1 graph file"));
    }
    let n = buf.get_u64_le() as usize;
    let m = buf.get_u64_le() as usize;
    let need = (n + 1)
        .checked_mul(8)
        .and_then(|x| m.checked_mul(4).map(|y| x + y))
        .ok_or_else(|| corrupt("header sizes overflow"))?;
    if buf.remaining() != need {
        return Err(corrupt(format!(
            "body length {} does not match header (expected {need})",
            buf.remaining()
        )));
    }
    let mut offsets = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        offsets.push(buf.get_u64_le() as usize);
    }
    if offsets.first() != Some(&0) || offsets.last() != Some(&m) {
        return Err(corrupt("offset array endpoints are inconsistent"));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(corrupt("offset array is not monotone"));
    }
    let mut targets = Vec::with_capacity(m);
    for _ in 0..m {
        let t = buf.get_u32_le();
        if t as usize >= n {
            return Err(corrupt(format!("edge target {t} out of range (n = {n})")));
        }
        targets.push(NodeId(t));
    }
    for w in offsets.windows(2) {
        let row = &targets[w[0]..w[1]];
        if row.windows(2).any(|p| p[0] >= p[1]) {
            return Err(corrupt("adjacency row is not strictly sorted"));
        }
    }
    let out = Csr::from_parts(offsets, targets);
    Ok(DiGraph::from_out_csr(out))
}

/// Write a graph to a file in the binary format.
pub fn save_path(g: &DiGraph, path: impl AsRef<Path>) -> Result<(), GraphError> {
    let bytes = to_bytes(g);
    let mut f = File::create(path)?;
    f.write_all(&bytes)?;
    Ok(())
}

/// Load a graph from a file in the binary format.
pub fn load_path(path: impl AsRef<Path>) -> Result<DiGraph, GraphError> {
    let mut f = File::open(path)?;
    let mut bytes = Vec::new();
    f.read_to_end(&mut bytes)?;
    from_bytes(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{complete_graph, erdos_renyi_directed, path_graph};

    fn graphs_equal(a: &DiGraph, b: &DiGraph) -> bool {
        a.num_nodes() == b.num_nodes()
            && a.num_edges() == b.num_edges()
            && a.edges().zip(b.edges()).all(|(x, y)| x == y)
    }

    #[test]
    fn roundtrip_small() {
        let g = complete_graph(7);
        let back = from_bytes(&to_bytes(&g)).unwrap();
        assert!(graphs_equal(&g, &back));
    }

    #[test]
    fn roundtrip_random() {
        let g = erdos_renyi_directed(200, 1500, 42).unwrap();
        let back = from_bytes(&to_bytes(&g)).unwrap();
        assert!(graphs_equal(&g, &back));
        // In-adjacency must be rebuilt correctly, not just out-adjacency.
        for v in g.nodes() {
            assert_eq!(g.in_neighbors(v), back.in_neighbors(v));
        }
    }

    #[test]
    fn roundtrip_empty() {
        let g = DiGraph::from_edges(0, Vec::<(u32, u32)>::new());
        let back = from_bytes(&to_bytes(&g)).unwrap();
        assert_eq!(back.num_nodes(), 0);
        assert_eq!(back.num_edges(), 0);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = to_bytes(&path_graph(3));
        bytes[0] = b'X';
        assert!(from_bytes(&bytes).is_err());
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let bytes = to_bytes(&erdos_renyi_directed(20, 60, 7).unwrap());
        for cut in [0, 10, 23, 24, bytes.len() / 2, bytes.len() - 1] {
            assert!(from_bytes(&bytes[..cut]).is_err(), "cut = {cut}");
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = to_bytes(&path_graph(4));
        bytes.extend_from_slice(&[0, 1, 2, 3]);
        assert!(from_bytes(&bytes).is_err());
    }

    #[test]
    fn rejects_out_of_range_target() {
        let g = path_graph(3);
        let mut bytes = to_bytes(&g);
        // The last 4 bytes are the final edge target; point it past n.
        let len = bytes.len();
        bytes[len - 4..].copy_from_slice(&99u32.to_le_bytes());
        assert!(from_bytes(&bytes).is_err());
    }

    #[test]
    fn rejects_non_monotone_offsets() {
        let g = path_graph(5);
        let mut bytes = to_bytes(&g);
        // Offsets start at byte 24; clobber the second offset with a huge value.
        bytes[32..40].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(from_bytes(&bytes).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("sling_binfmt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.bin");
        let g = erdos_renyi_directed(50, 300, 5).unwrap();
        save_path(&g, &path).unwrap();
        let back = load_path(&path).unwrap();
        assert!(graphs_equal(&g, &back));
        std::fs::remove_file(&path).ok();
    }
}
