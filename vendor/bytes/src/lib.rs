//! Offline stand-in for the `bytes` crate.
//!
//! The workspace only uses the cursor-style [`Buf`] / [`BufMut`] traits
//! over `&[u8]` and `Vec<u8>` for little-endian binary formats, so that is
//! all this crate provides. Semantics match upstream for that subset:
//! reads panic when the buffer has fewer bytes than requested (callers in
//! this workspace check `remaining()` first).

/// Read cursor over a byte buffer.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];
    /// Consume `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Copy `dst.len()` bytes out, consuming them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "Buf underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    #[inline]
    fn remaining(&self) -> usize {
        self.len()
    }

    #[inline]
    fn chunk(&self) -> &[u8] {
        self
    }

    #[inline]
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "Buf underflow");
        *self = &self[cnt..];
    }
}

/// Append cursor over a growable byte buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    #[inline]
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut out: Vec<u8> = Vec::new();
        out.put_u8(7);
        out.put_u16_le(300);
        out.put_u32_le(70_000);
        out.put_u64_le(1 << 40);
        out.put_f64_le(0.25);
        out.put_slice(b"xy");
        let mut buf = out.as_slice();
        assert_eq!(buf.remaining(), 1 + 2 + 4 + 8 + 8 + 2);
        assert_eq!(buf.get_u8(), 7);
        assert_eq!(buf.get_u16_le(), 300);
        assert_eq!(buf.get_u32_le(), 70_000);
        assert_eq!(buf.get_u64_le(), 1 << 40);
        assert_eq!(buf.get_f64_le(), 0.25);
        let mut tail = [0u8; 2];
        buf.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xy");
        assert_eq!(buf.remaining(), 0);
    }

    #[test]
    #[should_panic]
    fn underflow_panics() {
        let mut buf: &[u8] = &[1, 2];
        let _ = buf.get_u32_le();
    }
}
