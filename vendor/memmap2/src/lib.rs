//! Offline stand-in for the `memmap2` crate (read-only subset).
//!
//! [`Mmap::map`] creates a private read-only mapping of a file with the
//! `mmap(2)` / `munmap(2)` from the C runtime Rust's std already links on
//! Linux, so no external crate is needed. Only what this workspace uses
//! is provided: mapping a whole file, dereferencing it as `&[u8]`, and
//! issuing `madvise(2)` hints through [`Mmap::advise_range`].

#![cfg(unix)]

use std::fs::File;
use std::io;
use std::ops::Deref;
use std::os::fd::AsRawFd;
use std::os::raw::{c_int, c_void};

extern "C" {
    fn mmap(
        addr: *mut c_void,
        length: usize,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: i64,
    ) -> *mut c_void;
    fn munmap(addr: *mut c_void, length: usize) -> c_int;
    fn madvise(addr: *mut c_void, length: usize, advice: c_int) -> c_int;
}

const PROT_READ: c_int = 1;
const MAP_PRIVATE: c_int = 2;
const MAP_FAILED: *mut c_void = !0usize as *mut c_void;
const MADV_WILLNEED: c_int = 3;

/// Alignment used to widen advised ranges. `madvise` requires a
/// page-aligned start; mapping bases are page-aligned, so rounding the
/// offset down to a 64 KiB boundary is correct for every page size that
/// divides 64 KiB — 4 KiB (x86-64), 16 KiB (Apple Silicon), and 64 KiB
/// (some arm64/POWER kernels) — without a platform-specific `sysconf`
/// constant (`_SC_PAGESIZE` differs between libcs). Over-advising a few
/// extra pages is harmless for hints.
const ADVISE_ALIGN: usize = 64 * 1024;

/// Advisory access hints for [`Mmap::advise_range`] (the `madvise(2)`
/// subset this workspace uses).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Advice {
    /// The range will be accessed soon; the kernel may read it ahead in
    /// one batch instead of one major fault per touched page.
    WillNeed,
}

/// A read-only memory mapping of a file, unmapped on drop.
#[derive(Debug)]
pub struct Mmap {
    ptr: *mut c_void,
    len: usize,
}

// The mapping is immutable shared memory of a private, read-only map.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Map the entire `file` read-only.
    ///
    /// # Safety
    /// As with upstream memmap2: the caller must ensure the underlying
    /// file is not truncated or mutated while the map is alive, or reads
    /// through the returned slice become undefined (`SIGBUS`).
    pub unsafe fn map(file: &File) -> io::Result<Mmap> {
        let len = file.metadata()?.len();
        if len > usize::MAX as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "file too large to map",
            ));
        }
        let len = len as usize;
        if len == 0 {
            // mmap rejects zero-length maps; model an empty file as an
            // empty (dangling, never-dereferenced) slice.
            return Ok(Mmap {
                ptr: std::ptr::null_mut(),
                len: 0,
            });
        }
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ,
                MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == MAP_FAILED {
            return Err(io::Error::last_os_error());
        }
        Ok(Mmap { ptr, len })
    }

    /// Apply `advice` to `offset .. offset + len` of the mapping.
    ///
    /// The range is widened to page boundaries (as `madvise` requires)
    /// and clamped to the mapping; empty or fully out-of-range requests
    /// are a successful no-op. The hint is advisory — the kernel may
    /// ignore it — so callers should treat failure as non-fatal.
    pub fn advise_range(&self, advice: Advice, offset: usize, len: usize) -> io::Result<()> {
        if self.len == 0 || len == 0 || offset >= self.len {
            return Ok(());
        }
        let end = offset.saturating_add(len).min(self.len);
        let start = offset - offset % ADVISE_ALIGN;
        let advice = match advice {
            Advice::WillNeed => MADV_WILLNEED,
        };
        // SAFETY: `start < end <= self.len`, so the advised range lies
        // inside the live mapping.
        let ret = unsafe {
            madvise(
                self.ptr.cast::<u8>().add(start).cast::<c_void>(),
                end - start,
                advice,
            )
        };
        if ret == 0 {
            Ok(())
        } else {
            Err(io::Error::last_os_error())
        }
    }

    /// Length of the mapping in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mapping is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Deref for Mmap {
    type Target = [u8];

    #[inline]
    fn deref(&self) -> &[u8] {
        if self.len == 0 {
            &[]
        } else {
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }
    }
}

impl AsRef<[u8]> for Mmap {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        if self.len > 0 {
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mmap;
    use std::io::Write;

    #[test]
    fn maps_file_contents() {
        let path = std::env::temp_dir().join(format!("mmap_stub_{}.bin", std::process::id()));
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&payload)
            .unwrap();
        let file = std::fs::File::open(&path).unwrap();
        let map = unsafe { Mmap::map(&file) }.unwrap();
        assert_eq!(map.len(), payload.len());
        assert_eq!(&map[..], &payload[..]);
        drop(map);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn advise_range_accepts_any_slice_of_the_map() {
        let path = std::env::temp_dir().join(format!("mmap_stub_adv_{}.bin", std::process::id()));
        std::fs::write(&path, vec![7u8; 20_000]).unwrap();
        let file = std::fs::File::open(&path).unwrap();
        let map = unsafe { Mmap::map(&file) }.unwrap();
        // Unaligned interior range, range crossing EOF, empty range, and
        // fully out-of-range offset must all succeed (no-op or hint).
        map.advise_range(super::Advice::WillNeed, 4097, 1000)
            .unwrap();
        map.advise_range(super::Advice::WillNeed, 19_000, 50_000)
            .unwrap();
        map.advise_range(super::Advice::WillNeed, 0, 0).unwrap();
        map.advise_range(super::Advice::WillNeed, 1 << 30, 8)
            .unwrap();
        drop(map);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let path = std::env::temp_dir().join(format!("mmap_stub_empty_{}.bin", std::process::id()));
        std::fs::File::create(&path).unwrap();
        let file = std::fs::File::open(&path).unwrap();
        let map = unsafe { Mmap::map(&file) }.unwrap();
        assert!(map.is_empty());
        assert_eq!(&map[..], &[] as &[u8]);
        std::fs::remove_file(&path).ok();
    }
}
