//! Offline stand-in for the `memmap2` crate (read-only subset).
//!
//! [`Mmap::map`] creates a private read-only mapping of a file with the
//! `mmap(2)` / `munmap(2)` from the C runtime Rust's std already links on
//! Linux, so no external crate is needed. Only what this workspace uses
//! is provided: mapping a whole file and dereferencing it as `&[u8]`.

#![cfg(unix)]

use std::fs::File;
use std::io;
use std::ops::Deref;
use std::os::fd::AsRawFd;
use std::os::raw::{c_int, c_void};

extern "C" {
    fn mmap(
        addr: *mut c_void,
        length: usize,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: i64,
    ) -> *mut c_void;
    fn munmap(addr: *mut c_void, length: usize) -> c_int;
}

const PROT_READ: c_int = 1;
const MAP_PRIVATE: c_int = 2;
const MAP_FAILED: *mut c_void = !0usize as *mut c_void;

/// A read-only memory mapping of a file, unmapped on drop.
#[derive(Debug)]
pub struct Mmap {
    ptr: *mut c_void,
    len: usize,
}

// The mapping is immutable shared memory of a private, read-only map.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Map the entire `file` read-only.
    ///
    /// # Safety
    /// As with upstream memmap2: the caller must ensure the underlying
    /// file is not truncated or mutated while the map is alive, or reads
    /// through the returned slice become undefined (`SIGBUS`).
    pub unsafe fn map(file: &File) -> io::Result<Mmap> {
        let len = file.metadata()?.len();
        if len > usize::MAX as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "file too large to map",
            ));
        }
        let len = len as usize;
        if len == 0 {
            // mmap rejects zero-length maps; model an empty file as an
            // empty (dangling, never-dereferenced) slice.
            return Ok(Mmap {
                ptr: std::ptr::null_mut(),
                len: 0,
            });
        }
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ,
                MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == MAP_FAILED {
            return Err(io::Error::last_os_error());
        }
        Ok(Mmap { ptr, len })
    }

    /// Length of the mapping in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mapping is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Deref for Mmap {
    type Target = [u8];

    #[inline]
    fn deref(&self) -> &[u8] {
        if self.len == 0 {
            &[]
        } else {
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }
    }
}

impl AsRef<[u8]> for Mmap {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        if self.len > 0 {
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mmap;
    use std::io::Write;

    #[test]
    fn maps_file_contents() {
        let path = std::env::temp_dir().join(format!("mmap_stub_{}.bin", std::process::id()));
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&payload)
            .unwrap();
        let file = std::fs::File::open(&path).unwrap();
        let map = unsafe { Mmap::map(&file) }.unwrap();
        assert_eq!(map.len(), payload.len());
        assert_eq!(&map[..], &payload[..]);
        drop(map);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let path = std::env::temp_dir().join(format!("mmap_stub_empty_{}.bin", std::process::id()));
        std::fs::File::create(&path).unwrap();
        let file = std::fs::File::open(&path).unwrap();
        let map = unsafe { Mmap::map(&file) }.unwrap();
        assert!(map.is_empty());
        assert_eq!(&map[..], &[] as &[u8]);
        std::fs::remove_file(&path).ok();
    }
}
