//! Offline stand-in for the `crossbeam` crate.
//!
//! The workspace only uses `crossbeam::scope` for structured fork/join
//! parallelism, which `std::thread::scope` (Rust 1.63+) covers. This shim
//! keeps crossbeam's call shape — the closure result arrives wrapped in a
//! `Result`, and spawned closures receive a (here inert) scope handle —
//! so call sites are unchanged. A panicking worker propagates out of
//! `scope` itself rather than surfacing as `Err`, which is strictly
//! stricter than crossbeam and fine for this workspace's `.expect(..)`
//! call sites.

use std::thread;

/// Handle passed to scoped workers. The workspace's workers ignore it
/// (`|_| ...`), so it carries no spawning capability of its own.
#[derive(Clone, Copy, Debug)]
pub struct ScopeHandle(());

/// A fork/join scope; spawned threads are joined before [`scope`] returns.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a worker; it receives a [`ScopeHandle`] to match crossbeam's
    /// closure signature.
    pub fn spawn<F, T>(&self, f: F) -> thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(ScopeHandle) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        self.inner.spawn(move || f(ScopeHandle(())))
    }
}

/// Run `f` with a scope in which borrowing, structured threads can be
/// spawned; all are joined before this returns.
pub fn scope<'env, F, R>(f: F) -> thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn workers_join_and_observe_environment() {
        let counter = AtomicUsize::new(0);
        let data = [1usize, 2, 3, 4];
        super::scope(|s| {
            for chunk in data.chunks(2) {
                s.spawn(|_| {
                    counter.fetch_add(chunk.iter().sum::<usize>(), Ordering::Relaxed);
                });
            }
        })
        .expect("no worker panicked");
        assert_eq!(counter.load(Ordering::Relaxed), 10);
    }
}
