//! Offline stand-in for the `rand` crate.
//!
//! Provides the subset this workspace uses: a seedable small fast RNG
//! ([`rngs::SmallRng`], xoshiro256++ seeded through SplitMix64), the
//! [`SeedableRng`] constructor trait, and the [`RngExt`] extension trait
//! with `random::<T>()` and `random_range(..)`. All output is fully
//! deterministic in the seed, which the workspace's reproducibility tests
//! rely on.

/// Low-level uniform 64-bit generator.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction from seed material.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (expanded with SplitMix64).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be drawn uniformly from an [`RngCore`].
pub trait Random: Sized {
    /// Draw one value.
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for u64 {
    #[inline]
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    #[inline]
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Random for usize {
    #[inline]
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Random for bool {
    #[inline]
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges a uniform sample of `T` can be drawn from. Generic over the
/// output type so the literal type of `random_range(0..n)` is inferred
/// from the call site, as with upstream rand.
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as u128 - self.start as u128) as u64;
                // Multiply-shift bounded sampling; bias is < 2^-64 * span.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in random_range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (end as u128 - start as u128 + 1) as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                start + hi as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        self.start + f64::random_from(rng) * (self.end - self.start)
    }
}

/// Convenience methods on any [`RngCore`].
pub trait RngExt: RngCore {
    /// Uniform value of `T`.
    #[inline]
    fn random<T: Random>(&mut self) -> T {
        T::random_from(self)
    }

    /// Uniform value in `range`.
    #[inline]
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        f64::random_from(self) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64 step, used to expand seeds.
    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A small, fast, high-quality non-cryptographic RNG: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let a: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(42);
            (0..16).map(|_| r.random()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(42);
            (0..16).map(|_| r.random()).collect()
        };
        let c: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(43);
            (0..16).map(|_| r.random()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut r = SmallRng::seed_from_u64(7);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        let mut seen_low = false;
        let mut seen_high = false;
        for _ in 0..10_000 {
            let x = r.random_range(3u32..7);
            assert!((3..7).contains(&x));
            seen_low |= x == 3;
            seen_high |= x == 6;
            let y = r.random_range(0usize..=4);
            assert!(y <= 4);
            let z = r.random_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&z));
        }
        assert!(seen_low && seen_high, "range endpoints never drawn");
    }
}
