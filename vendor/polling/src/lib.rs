//! Offline stand-in for the `polling` crate (epoll subset).
//!
//! A [`Poller`] wraps one `epoll(7)` instance plus an `eventfd(2)` waker,
//! calling the `epoll_create1` / `epoll_ctl` / `epoll_wait` / `eventfd`
//! from the C runtime Rust's std already links on Linux, so no external
//! crate is needed. Only what this workspace uses is provided: register
//! a socket under a `usize` key with read/write interest, wait for
//! readiness events with an optional timeout, and wake a parked waiter
//! from another thread with [`Poller::notify`].
//!
//! Semantics match upstream `polling`'s default mode:
//!
//! * **Oneshot interest.** A registered source is disarmed after it
//!   delivers one event; re-arm it with [`Poller::modify`] once the
//!   readiness has been consumed. This is what makes a readiness loop
//!   storm-proof by construction — a connection the loop has already
//!   been told about cannot keep firing while it waits its turn.
//! * **Reserved notify key.** Wakeups via [`Poller::notify`] are
//!   delivered internally and never surface as events; the key
//!   [`NOTIFY_KEY`] cannot be used for sources.
//! * **Error/hangup folding.** `EPOLLERR`/`EPOLLHUP`/`EPOLLRDHUP`
//!   surface as both readable and writable, so a waiter parked on either
//!   interest observes the failure and lets the subsequent `read`/`write`
//!   report the actual error.

#![cfg(target_os = "linux")]

use std::io;
use std::os::fd::{AsRawFd, RawFd};
use std::os::raw::{c_int, c_void};
use std::time::Duration;

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: u32, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
}

const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;
const EPOLLONESHOT: u32 = 1 << 30;

const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;

/// Key reserved for the internal [`Poller::notify`] waker; sources must
/// not be registered under it.
pub const NOTIFY_KEY: usize = usize::MAX;

/// The kernel ABI struct. Packed on x86-64 (where the kernel declares it
/// `__attribute__((packed))`); naturally aligned elsewhere.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

/// Interest in (or readiness of) a registered source.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Caller-chosen identifier reported back with readiness.
    pub key: usize,
    /// Interested in / ready for reading.
    pub readable: bool,
    /// Interested in / ready for writing.
    pub writable: bool,
}

impl Event {
    /// Interest in read readiness only.
    pub fn readable(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: false,
        }
    }

    /// Interest in write readiness only.
    pub fn writable(key: usize) -> Event {
        Event {
            key,
            readable: false,
            writable: true,
        }
    }

    /// Interest in both read and write readiness.
    pub fn all(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: true,
        }
    }

    /// No interest: keeps the registration (and its key) alive but
    /// disarmed — how a oneshot loop parks a connection it is not ready
    /// to serve (e.g. under write backpressure).
    pub fn none(key: usize) -> Event {
        Event {
            key,
            readable: false,
            writable: false,
        }
    }

    fn mask(self) -> u32 {
        let mut m = EPOLLONESHOT;
        if self.readable {
            m |= EPOLLIN | EPOLLRDHUP;
        }
        if self.writable {
            m |= EPOLLOUT;
        }
        m
    }
}

/// Reusable buffer of readiness events filled by [`Poller::wait`].
pub struct Events {
    raw: Vec<EpollEvent>,
    len: usize,
}

impl Events {
    /// An event buffer with the default capacity (1024).
    #[allow(clippy::new_without_default)]
    pub fn new() -> Events {
        Events::with_capacity(1024)
    }

    /// An event buffer able to receive `cap` events per wait.
    pub fn with_capacity(cap: usize) -> Events {
        let cap = cap.clamp(1, 4096);
        Events {
            raw: vec![EpollEvent { events: 0, data: 0 }; cap],
            len: 0,
        }
    }

    /// Drop all buffered events.
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the last wait returned no events.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterate the events of the last wait.
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.raw[..self.len].iter().map(|raw| {
            let bits = raw.events;
            let broken = bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0;
            Event {
                key: raw.data as usize,
                readable: bits & EPOLLIN != 0 || broken,
                writable: bits & EPOLLOUT != 0 || broken,
            }
        })
    }
}

/// One epoll instance plus its eventfd waker.
#[derive(Debug)]
pub struct Poller {
    epfd: RawFd,
    event_fd: RawFd,
}

// The fds are plain kernel handles; epoll_ctl/epoll_wait/write are
// thread-safe on one instance.
unsafe impl Send for Poller {}
unsafe impl Sync for Poller {}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

impl Poller {
    /// Create an epoll instance with its notify eventfd registered.
    pub fn new() -> io::Result<Poller> {
        let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        let event_fd = match cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) }) {
            Ok(fd) => fd,
            Err(e) => {
                unsafe { close(epfd) };
                return Err(e);
            }
        };
        // The waker is level-triggered (no ONESHOT): the counter stays
        // readable until drained inside `wait`, so a notify can never be
        // lost between a flag store and a parked epoll_wait.
        let mut ev = EpollEvent {
            events: EPOLLIN,
            data: NOTIFY_KEY as u64,
        };
        if let Err(e) = cvt(unsafe { epoll_ctl(epfd, EPOLL_CTL_ADD, event_fd, &mut ev) }) {
            unsafe {
                close(event_fd);
                close(epfd);
            }
            return Err(e);
        }
        Ok(Poller { epfd, event_fd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, interest: Option<Event>) -> io::Result<()> {
        if let Some(ev) = interest {
            if ev.key == NOTIFY_KEY {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "key usize::MAX is reserved for notify",
                ));
            }
        }
        let mut raw = interest
            .map(|ev| EpollEvent {
                events: ev.mask(),
                data: ev.key as u64,
            })
            .unwrap_or(EpollEvent { events: 0, data: 0 });
        cvt(unsafe { epoll_ctl(self.epfd, op, fd, &mut raw) }).map(|_| ())
    }

    /// Register `source` with oneshot `interest`; it delivers at most one
    /// event, then stays registered but disarmed until [`Poller::modify`].
    pub fn add(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, source.as_raw_fd(), Some(interest))
    }

    /// Re-arm (or change) the interest of a registered source.
    pub fn modify(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, source.as_raw_fd(), Some(interest))
    }

    /// Deregister a source. Must be called before the fd is closed, or a
    /// closed-and-reused fd could deliver a stale key.
    pub fn delete(&self, source: &impl AsRawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, source.as_raw_fd(), None)
    }

    /// Wait for readiness events, filling `events` (cleared first).
    ///
    /// `None` blocks until an event or a notify; `Some(d)` wakes after at
    /// most `d` (sub-millisecond durations round up to 1 ms — epoll has
    /// millisecond resolution, and rounding down would busy-spin;
    /// `Some(ZERO)` is a non-blocking poll). Returns the number of events
    /// delivered; notify wakeups are drained internally and return with
    /// zero events (indistinguishable from a timeout by design — waiters
    /// re-check their shared state on every wakeup either way).
    pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        let timeout_ms: c_int = match timeout {
            None => -1,
            Some(d) if d.is_zero() => 0,
            Some(d) => d.as_millis().max(1).min(c_int::MAX as u128 / 2) as c_int,
        };
        let ret = unsafe {
            epoll_wait(
                self.epfd,
                events.raw.as_mut_ptr(),
                events.raw.len() as c_int,
                timeout_ms,
            )
        };
        let n = match cvt(ret) {
            Ok(n) => n as usize,
            // A signal landing mid-wait is a spurious wakeup, not an
            // error; report it as "no events" so the caller re-checks
            // its state rather than aborting the loop.
            Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
            Err(e) => return Err(e),
        };
        // Drain the waker and filter it out of the caller-visible batch.
        let mut kept = 0;
        for i in 0..n {
            let raw = events.raw[i];
            if raw.data as usize == NOTIFY_KEY {
                let mut counter = 0u64;
                unsafe {
                    read(
                        self.event_fd,
                        (&mut counter as *mut u64).cast::<c_void>(),
                        8,
                    )
                };
                continue;
            }
            events.raw[kept] = raw;
            kept += 1;
        }
        events.len = kept;
        Ok(kept)
    }

    /// Wake one parked [`Poller::wait`] from any thread. Wakeups do not
    /// queue as events: a waiter that is not parked observes the next
    /// wait return immediately instead.
    pub fn notify(&self) -> io::Result<()> {
        let one: u64 = 1;
        let ret = unsafe { write(self.event_fd, (&one as *const u64).cast::<c_void>(), 8) };
        // EAGAIN means the counter is already saturated: the wakeup is
        // pending, which is all notify promises.
        if ret == 8 || io::Error::last_os_error().kind() == io::ErrorKind::WouldBlock {
            Ok(())
        } else {
            Err(io::Error::last_os_error())
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        unsafe {
            close(self.event_fd);
            close(self.epfd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn readable_event_fires_once_until_rearmed() {
        let (mut a, b) = pair();
        b.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller.add(&b, Event::readable(7)).unwrap();
        let mut events = Events::new();

        // Nothing to read yet: a short wait times out with no events.
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());

        a.write_all(b"x").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let evs: Vec<Event> = events.iter().collect();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].key, 7);
        assert!(evs[0].readable);

        // Oneshot: without a modify, the still-readable socket stays
        // silent.
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty());

        // Re-armed, it fires again (level-triggered data is still there).
        poller.modify(&b, Event::readable(7)).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1);

        let mut buf = [0u8; 8];
        let mut bb = &b;
        assert_eq!(bb.read(&mut buf).unwrap(), 1);
        poller.delete(&b).unwrap();
    }

    #[test]
    fn writable_interest_and_none_disarms() {
        let (_a, b) = pair();
        b.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        // A fresh socket's send buffer is writable immediately.
        poller.add(&b, Event::writable(3)).unwrap();
        let mut events = Events::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let evs: Vec<Event> = events.iter().collect();
        assert_eq!(evs.len(), 1);
        assert!(evs[0].writable);
        // Parked with no interest: stays silent even though writable.
        poller.modify(&b, Event::none(3)).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn notify_wakes_a_parked_waiter_and_does_not_queue() {
        let poller = std::sync::Arc::new(Poller::new().unwrap());
        let waker = std::sync::Arc::clone(&poller);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            waker.notify().unwrap();
        });
        let mut events = Events::new();
        let start = std::time::Instant::now();
        // Parked "forever": only the notify can end this wait.
        poller
            .wait(&mut events, Some(Duration::from_secs(30)))
            .unwrap();
        assert!(start.elapsed() < Duration::from_secs(10));
        assert!(events.is_empty(), "notify must not surface as an event");
        t.join().unwrap();
        // Drained: the next wait times out instead of spinning.
        let start = std::time::Instant::now();
        poller
            .wait(&mut events, Some(Duration::from_millis(30)))
            .unwrap();
        assert!(start.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn notify_before_wait_is_not_lost() {
        let poller = Poller::new().unwrap();
        poller.notify().unwrap();
        poller.notify().unwrap(); // coalesces, never blocks
        let mut events = Events::new();
        let start = std::time::Instant::now();
        poller
            .wait(&mut events, Some(Duration::from_secs(30)))
            .unwrap();
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "pre-wait notify was lost"
        );
    }

    #[test]
    fn peer_close_fires_as_readable() {
        let (a, b) = pair();
        b.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller.add(&b, Event::readable(1)).unwrap();
        drop(a);
        let mut events = Events::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let evs: Vec<Event> = events.iter().collect();
        assert_eq!(evs.len(), 1);
        assert!(evs[0].readable, "hangup must surface as readable");
    }

    #[test]
    fn reserved_key_is_rejected() {
        let (_a, b) = pair();
        let poller = Poller::new().unwrap();
        assert!(poller.add(&b, Event::readable(NOTIFY_KEY)).is_err());
    }
}
