//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync::Mutex` behind parking_lot's non-poisoning API (the
//! subset this workspace uses). A poisoned std lock is unwrapped into the
//! inner guard, matching parking_lot's behavior of ignoring panics in
//! other holders.

use std::sync::{Mutex as StdMutex, MutexGuard as StdGuard, PoisonError};

/// Mutual exclusion, parking_lot style: `lock()` returns the guard
/// directly instead of a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn shared_across_threads() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }
}
