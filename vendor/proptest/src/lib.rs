//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use: the
//! [`Strategy`] trait over integer ranges, tuples, and
//! [`collection::vec`]; `prop_map` / `prop_flat_map` combinators;
//! [`bool::ANY`]; the `proptest!` macro with an optional
//! `#![proptest_config(..)]` attribute; and the `prop_assert*` macros.
//!
//! Differences from upstream: cases are generated from a seed derived
//! deterministically from the test name and case number (fully
//! reproducible, no persistence files), and failing cases are **not
//! shrunk** — the assert message reports the failing values directly.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Per-test configuration. Only `cases` is meaningful in the stub;
/// `max_shrink_iters` is accepted for API compatibility (the stub never
/// shrinks).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Ignored: the stub reports the failing case without shrinking.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

/// Source of randomness for strategies (a seeded [`SmallRng`]).
pub type TestRng = SmallRng;

/// Derive the deterministic RNG for `(test name, case index)`.
pub fn case_rng(test_name: &str, case: u32) -> TestRng {
    // FNV-1a over the test name, mixed with the case number.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    SmallRng::seed_from_u64(h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// A generator of random values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Build a dependent strategy from generated values.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// Always-`value` strategy.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::RngExt;

    /// Strategy for `Vec`s with lengths drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// `Vec` of values from `element`, length in `len`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.len.is_empty() {
                self.len.start
            } else {
                rng.random_range(self.len.clone())
            };
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};
    use rand::RngExt;

    /// Uniform `bool` strategy.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The uniform `bool` strategy value.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = core::primitive::bool;
        fn new_value(&self, rng: &mut TestRng) -> core::primitive::bool {
            rng.random()
        }
    }
}

/// The common imports property tests want.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Assert inside a property (maps to `assert!`; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests. Each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for __case in 0..config.cases {
                    let mut __rng = $crate::case_rng(stringify!($name), __case);
                    $(let $arg = $crate::Strategy::new_value(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),*) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_tuples(x in 1usize..10, (a, b) in (0u32..5, 0u32..5)) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(a < 5 && b < 5);
        }

        #[test]
        fn flat_map_dependence(v in (1usize..6).prop_flat_map(|n| {
            crate::collection::vec(0usize..n, 1..4).prop_map(move |xs| (n, xs))
        })) {
            let (n, xs) = v;
            prop_assert!(!xs.is_empty() && xs.len() < 4);
            prop_assert!(xs.iter().all(|&x| x < n));
        }

        #[test]
        fn bool_any_takes_both_values(bits in crate::collection::vec(crate::bool::ANY, 64..65)) {
            // 64 fair coins virtually never agree unanimously.
            prop_assert!(bits.iter().any(|&b| b) && bits.iter().any(|&b| !b));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a: Vec<u32> = (0..8)
            .map(|c| Strategy::new_value(&(0u32..1000), &mut crate::case_rng("t", c)))
            .collect();
        let b: Vec<u32> = (0..8)
            .map(|c| Strategy::new_value(&(0u32..1000), &mut crate::case_rng("t", c)))
            .collect();
        assert_eq!(a, b);
    }
}
