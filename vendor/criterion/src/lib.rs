//! Offline stand-in for the `criterion` crate.
//!
//! Supports the subset of the API the workspace benches use —
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `sample_size`, [`BenchmarkId`], and the `criterion_group!` /
//! `criterion_main!` macros. Each benchmark closure is warmed up, then
//! timed over a fixed wall-clock budget, and a `median / mean` line is
//! printed. No statistics files, no plots — just honest timings so
//! `cargo bench` works offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifier for a parameterized benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` id.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{parameter}", name.into()),
        }
    }

    /// Id from a bare parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Measure `routine`, collecting per-iteration samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup: let caches, allocators, and branch predictors settle.
        let warmup_until = Instant::now() + WARMUP;
        let mut warm_iters = 0u64;
        while Instant::now() < warmup_until || warm_iters < 3 {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let budget_until = Instant::now() + MEASURE;
        while (Instant::now() < budget_until && self.samples.len() < MAX_SAMPLES)
            || self.samples.len() < MIN_SAMPLES
        {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

const WARMUP: Duration = Duration::from_millis(30);
const MEASURE: Duration = Duration::from_millis(120);
const MIN_SAMPLES: usize = 5;
const MAX_SAMPLES: usize = 10_000;

fn report(group: &str, label: &str, samples: &mut [Duration]) {
    if samples.is_empty() {
        println!("{group}/{label}: no samples");
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    println!(
        "{group}/{label}: median {median:?}, mean {mean:?} ({} samples)",
        samples.len()
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub sizes runs by wall clock.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
        };
        f(&mut b);
        report(&self.name, &id.label, &mut b.samples);
        self
    }

    /// Benchmark a closure against an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
        };
        f(&mut b, input);
        report(&self.name, &id.label, &mut b.samples);
        self
    }

    /// End the group.
    pub fn finish(&mut self) {}
}

/// Benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== {name} ==");
        BenchmarkGroup {
            name,
            _criterion: self,
        }
    }

    /// Standalone benchmark outside a group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Define a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("stub");
        let mut calls = 0u64;
        group.sample_size(10).bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u32, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        assert!(calls >= MIN_SAMPLES as u64);
    }
}
