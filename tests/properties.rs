//! Property-based tests (proptest) over randomly generated graphs:
//! the paper's invariants must hold on *every* graph, not just the zoo.

use proptest::prelude::*;
use sling_simrank::baselines::power_simrank;
use sling_simrank::core::reference::exact_hp_to_target;
use sling_simrank::core::{QueryWorkspace, SlingConfig, SlingIndex};
use sling_simrank::graph::{DiGraph, GraphBuilder, NodeId};

const C: f64 = 0.6;

/// Strategy: arbitrary directed graphs with 2..=14 nodes and up to 40
/// candidate edges (dedup'd, self-loops dropped by the builder).
fn arb_graph() -> impl Strategy<Value = DiGraph> {
    (2usize..=14).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32);
        proptest::collection::vec(edge, 0..40).prop_map(move |edges| {
            let mut b = GraphBuilder::with_nodes(n);
            for (u, v) in edges {
                b.add_edge(u, v);
            }
            b.build().unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    /// Theorem 1: every single-pair estimate is within eps of truth.
    #[test]
    fn estimates_within_eps(g in arb_graph(), seed in 0u64..1000) {
        let eps = 0.1;
        let config = SlingConfig::from_epsilon(C, eps)
            .with_seed(seed)
            .with_exact_diagonal(false);
        let idx = SlingIndex::build(&g, &config).unwrap();
        let truth = power_simrank(&g, C, 60);
        let mut ws = QueryWorkspace::new();
        for u in g.nodes() {
            for v in g.nodes() {
                let est = idx.single_pair_with(&g, &mut ws, u, v);
                let t = truth.get(u.index(), v.index());
                prop_assert!((est - t).abs() <= eps,
                    "({u:?},{v:?}): est {est} truth {t}");
            }
        }
    }

    /// Estimates are symmetric and within [0, 1].
    #[test]
    fn estimates_symmetric_and_bounded(g in arb_graph(), seed in 0u64..1000) {
        let config = SlingConfig::from_epsilon(C, 0.1).with_seed(seed);
        let idx = SlingIndex::build(&g, &config).unwrap();
        let mut ws = QueryWorkspace::new();
        for u in g.nodes() {
            for v in g.nodes() {
                let a = idx.single_pair_with(&g, &mut ws, u, v);
                let b = idx.single_pair_with(&g, &mut ws, v, u);
                prop_assert!((a - b).abs() < 1e-12);
                prop_assert!((0.0..=1.0).contains(&a));
            }
        }
    }

    /// Correction factors live in [1-c, 1] (Eq. 14 feasible range).
    #[test]
    fn correction_factors_in_range(g in arb_graph(), seed in 0u64..1000) {
        let config = SlingConfig::from_epsilon(C, 0.1).with_seed(seed);
        let idx = SlingIndex::build(&g, &config).unwrap();
        for &d in idx.correction_factors() {
            prop_assert!((1.0 - C - 1e-12..=1.0 + 1e-12).contains(&d), "d = {d}");
        }
    }

    /// Lemma 7 / Observation 1: stored HP entries underestimate the true
    /// hitting probabilities and exceed theta.
    #[test]
    fn stored_entries_underestimate_and_exceed_theta(g in arb_graph(), seed in 0u64..1000) {
        let config = SlingConfig::from_epsilon(C, 0.1)
            .with_seed(seed)
            .with_space_reduction(false);
        let idx = SlingIndex::build(&g, &config).unwrap();
        for v in g.nodes() {
            for e in idx.stored_entries(v) {
                prop_assert!(e.value > config.theta);
                let exact = exact_hp_to_target(&g, C, e.node, e.step);
                let h = exact[e.step as usize][v.index()];
                prop_assert!(e.value <= h + 1e-12,
                    "h̃ {} > h {h} at ({v:?}, step {}, {:?})", e.value, e.step, e.node);
            }
        }
    }

    /// Algorithm 6 and Algorithm 3 agree within the Lemma 12 slack.
    #[test]
    fn single_source_consistent_with_pairs(g in arb_graph(), seed in 0u64..1000) {
        let config = SlingConfig::from_epsilon(C, 0.1).with_seed(seed);
        let idx = SlingIndex::build(&g, &config).unwrap();
        let sc = C.sqrt();
        let slack = 2.0 * sc * config.theta / ((1.0 - sc) * (1.0 - C)) + 1e-9;
        for u in g.nodes() {
            let a6 = idx.single_source(&g, u);
            let a3 = idx.single_source_via_pairs(&g, u);
            for v in g.nodes() {
                prop_assert!((a6[v.index()] - a3[v.index()]).abs() <= slack);
            }
        }
    }

    /// Serialization round-trips bit-for-bit on arbitrary graphs.
    #[test]
    fn format_round_trip(g in arb_graph(), seed in 0u64..1000) {
        let config = SlingConfig::from_epsilon(C, 0.1)
            .with_seed(seed)
            .with_enhancement(seed % 2 == 0);
        let idx = SlingIndex::build(&g, &config).unwrap();
        let bytes = idx.to_bytes();
        let back = SlingIndex::from_bytes(&g, &bytes).unwrap();
        prop_assert_eq!(bytes, back.to_bytes());
    }

    /// Graph builder invariants under arbitrary edge soups.
    #[test]
    fn graph_builder_invariants(n in 1usize..20,
                                edges in proptest::collection::vec((0u32..20, 0u32..20), 0..60)) {
        let mut b = GraphBuilder::with_nodes(n);
        for (u, v) in &edges {
            b.add_edge(*u, *v);
        }
        let g = b.build().unwrap();
        prop_assert!(g.validate());
        // No self loops, no duplicates, degree sums match m.
        let in_sum: usize = g.nodes().map(|v| g.in_degree(v)).sum();
        let out_sum: usize = g.nodes().map(|v| g.out_degree(v)).sum();
        prop_assert_eq!(in_sum, g.num_edges());
        prop_assert_eq!(out_sum, g.num_edges());
        for (u, v) in g.edges() {
            prop_assert_ne!(u, v);
        }
    }

    /// SimRank ground truth itself is symmetric, bounded, and 1 on the
    /// diagonal — a sanity property of the oracle the other tests use.
    #[test]
    fn power_method_invariants(g in arb_graph()) {
        let s = power_simrank(&g, C, 40);
        for u in g.nodes() {
            prop_assert!((s.get(u.index(), u.index()) - 1.0).abs() < 1e-12);
            for v in g.nodes() {
                prop_assert!((s.get(u.index(), v.index()) - s.get(v.index(), u.index())).abs() < 1e-12);
                prop_assert!((-1e-12..=1.0 + 1e-12).contains(&s.get(u.index(), v.index())));
            }
        }
    }
}

/// Regression guard: an empty graph (isolated nodes only) must build and
/// answer queries without panicking.
#[test]
fn isolated_nodes_only() {
    let g = GraphBuilder::with_nodes(5).build().unwrap();
    let idx = SlingIndex::build(&g, &SlingConfig::from_epsilon(C, 0.1)).unwrap();
    assert_eq!(idx.single_pair(&g, NodeId(0), NodeId(1)), 0.0);
    assert_eq!(idx.single_pair(&g, NodeId(2), NodeId(2)), 1.0);
    let row = idx.single_source(&g, NodeId(3));
    assert_eq!(row, vec![0.0, 0.0, 0.0, 1.0, 0.0]);
}
