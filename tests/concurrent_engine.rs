//! Multi-threaded equivalence: N threads hammering one shared
//! mmap-backed [`SharedEngine`] — with and without the sharded result
//! cache — must return **bit-identical** results to the serial in-memory
//! path. This is the contract the concurrent server builds on: sharing
//! an engine across threads, memoizing through the sharded cache, and
//! prefetching must never change a single output bit.

use std::sync::Arc;

use sling_core::{
    HpStore, MmapHpArena, QueryWorkspace, ShardedResultCache, SharedEngine, SlingConfig, SlingIndex,
};
use sling_graph::generators::barabasi_albert;
use sling_graph::{DiGraph, NodeId};

const THREADS: usize = 8;

/// `tag` keeps each test's index file distinct: the tests of this binary
/// run concurrently, so a shared path would race save/open/remove.
fn setup(tag: &str) -> (DiGraph, SlingIndex, std::path::PathBuf) {
    let g = barabasi_albert(250, 3, 17).unwrap();
    let config = SlingConfig::from_epsilon(0.6, 0.1)
        .with_seed(13)
        .with_enhancement(true);
    let idx = SlingIndex::build(&g, &config).unwrap();
    let dir = std::env::temp_dir().join(format!("sling_concurrent_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("index_{tag}.slng"));
    idx.save(&path).unwrap();
    (g, idx, path)
}

/// Deterministic canonical pair workload shared by every scenario.
fn pair_workload(n: u32) -> Vec<(NodeId, NodeId)> {
    (0..400u32)
        .map(|i| {
            let (a, b) = ((i * 31) % n, (i * 57 + 3) % n);
            (NodeId(a.min(b)), NodeId(a.max(b)))
        })
        .collect()
}

/// Run the workload from `THREADS` threads against a shared engine,
/// asserting each answer against the serial reference bit-for-bit.
fn hammer<S: HpStore + Sync>(
    engine: &SharedEngine<S>,
    g: &DiGraph,
    pairs: &[(NodeId, NodeId)],
    want_pairs: &[f64],
    want_topk: &[Vec<(NodeId, f64)>],
    cache: Option<&ShardedResultCache>,
) {
    std::thread::scope(|s| {
        for t in 0..THREADS {
            s.spawn(move || {
                let mut ws = QueryWorkspace::new();
                // Two rounds so the cached scenario serves hits too.
                for round in 0..2 {
                    for (i, &(u, v)) in pairs.iter().enumerate() {
                        if i % THREADS != t && round == 0 {
                            continue; // round 0: disjoint slices; round 1: full overlap
                        }
                        engine.store().prefetch(u);
                        engine.store().prefetch(v);
                        let got = match cache {
                            Some(cache) => {
                                engine.single_pair_cached(g, &mut ws, cache, u, v).unwrap()
                            }
                            None => engine.single_pair_with(g, &mut ws, u, v).unwrap(),
                        };
                        assert_eq!(
                            got.to_bits(),
                            want_pairs[i].to_bits(),
                            "pair {i} diverged on thread {t} (round {round})"
                        );
                    }
                    for (u, want) in want_topk.iter().enumerate() {
                        if u % THREADS != t {
                            continue;
                        }
                        let got = engine.top_k(g, NodeId(u as u32), 7).unwrap();
                        assert_eq!(&got, want, "top-k from {u} diverged on thread {t}");
                    }
                }
            });
        }
    });
}

#[test]
fn shared_mmap_engine_matches_serial_in_memory_bitwise() {
    let (g, idx, path) = setup("mmap_hammer");
    let n = g.num_nodes() as u32;
    let pairs = pair_workload(n);
    let want_pairs: Vec<f64> = pairs
        .iter()
        .map(|&(u, v)| idx.single_pair(&g, u, v))
        .collect();
    let want_topk: Vec<Vec<(NodeId, f64)>> = (0..24u32)
        .map(|u| idx.top_k_heap(&g, NodeId(u), 7))
        .collect();

    let engine = Arc::new(SharedEngine::open_mmap(&g, &path).unwrap());

    // Without the cache: pure shared-engine concurrency.
    hammer(&engine, &g, &pairs, &want_pairs, &want_topk, None);

    // With the sharded cache, including an eviction-heavy configuration.
    for (capacity, shards) in [(1 << 12, 16), (64, 4)] {
        let cache = ShardedResultCache::new(capacity, shards);
        hammer(&engine, &g, &pairs, &want_pairs, &want_topk, Some(&cache));
        let stats = cache.stats();
        assert!(stats.hits > 0, "round 1 must hit ({capacity}/{shards})");
        if capacity == 64 {
            assert!(stats.evictions > 0, "tiny cache must evict");
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn owned_in_memory_engine_matches_too() {
    let (g, idx, path) = setup("owned_hammer");
    let n = g.num_nodes() as u32;
    let pairs = pair_workload(n);
    let want_pairs: Vec<f64> = pairs
        .iter()
        .map(|&(u, v)| idx.single_pair(&g, u, v))
        .collect();
    let want_topk: Vec<Vec<(NodeId, f64)>> = (0..24u32)
        .map(|u| idx.top_k_heap(&g, NodeId(u), 7))
        .collect();
    let engine = Arc::new(idx.into_shared_engine());
    let cache = ShardedResultCache::with_capacity(1 << 12);
    hammer(&engine, &g, &pairs, &want_pairs, &want_topk, Some(&cache));
    // The owned engine also exposes the full view surface.
    let view = engine.view();
    assert_eq!(
        view.single_pair(&g, pairs[0].0, pairs[0].1)
            .unwrap()
            .to_bits(),
        want_pairs[0].to_bits()
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn cached_batches_agree_across_backends_and_threads() {
    let (g, idx, path) = setup("batch");
    let n = g.num_nodes() as u32;
    let pairs = pair_workload(n);
    let want: Vec<f64> = pairs
        .iter()
        .map(|&(u, v)| idx.single_pair(&g, u, v))
        .collect();
    let mem = idx.into_shared_engine();
    let mmap = SharedEngine::open_mmap(&g, &path).unwrap();
    for threads in [1, THREADS] {
        let cache = ShardedResultCache::new(1 << 10, 8);
        let got_mem = mem
            .batch_single_pair_cached(&g, &pairs, threads, &cache)
            .unwrap();
        let got_mmap = mmap
            .batch_single_pair_cached(&g, &pairs, threads, &cache)
            .unwrap();
        assert_eq!(got_mem, want, "mem batch, {threads} threads");
        assert_eq!(got_mmap, want, "mmap batch, {threads} threads");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn shared_engine_is_send_sync_and_static() {
    fn assert_bounds<T: Send + Sync + 'static>() {}
    assert_bounds::<SharedEngine<MmapHpArena>>();
    assert_bounds::<SharedEngine<sling_core::out_of_core::DiskHpStore>>();
    assert_bounds::<ShardedResultCache>();
}
