//! Cross-crate integration tests: SLING (every optimization combination)
//! against the power-method ground truth, on a zoo of graph shapes.

use sling_simrank::baselines::power_simrank;
use sling_simrank::core::{QueryWorkspace, SlingConfig, SlingIndex};
use sling_simrank::graph::generators::{
    barabasi_albert, complete_graph, cycle_graph, erdos_renyi_directed, rmat, star_graph,
    two_cliques_bridge, RmatConfig,
};
use sling_simrank::graph::DiGraph;

const C: f64 = 0.6;

fn zoo() -> Vec<(&'static str, DiGraph)> {
    vec![
        ("cycle", cycle_graph(12)),
        ("star", star_graph(10)),
        ("complete", complete_graph(6)),
        ("two_cliques", two_cliques_bridge(5)),
        ("ba", barabasi_albert(120, 2, 3).unwrap()),
        ("er", erdos_renyi_directed(80, 240, 4).unwrap()),
        ("rmat", rmat(7, 400, RmatConfig::default(), 5).unwrap()),
    ]
}

fn check_graph(name: &str, g: &DiGraph, config: &SlingConfig) {
    let eps = config.epsilon;
    let truth = power_simrank(g, C, 60);
    let idx = SlingIndex::build(g, config).unwrap();
    let mut ws = QueryWorkspace::new();
    let mut worst_pair = 0.0f64;
    for u in g.nodes() {
        // Single-source (Algorithm 6) and single-pair (Algorithm 3) both
        // within eps of ground truth.
        let row = idx.single_source(g, u);
        for v in g.nodes() {
            let t = truth.get(u.index(), v.index());
            let sp = idx.single_pair_with(g, &mut ws, u, v);
            let ss = row[v.index()];
            worst_pair = worst_pair.max((sp - t).abs());
            assert!(
                (sp - t).abs() <= eps,
                "{name}: single-pair err {} at ({u:?},{v:?})",
                (sp - t).abs()
            );
            assert!(
                (ss - t).abs() <= eps,
                "{name}: single-source err {} at ({u:?},{v:?})",
                (ss - t).abs()
            );
        }
    }
    // The observed error is usually far below the bound; just record it.
    assert!(worst_pair <= eps);
}

#[test]
fn within_eps_with_default_optimizations() {
    let config = SlingConfig::from_epsilon(C, 0.05).with_seed(11);
    for (name, g) in zoo() {
        check_graph(name, &g, &config);
    }
}

#[test]
fn within_eps_with_all_optimizations_on() {
    let config = SlingConfig::from_epsilon(C, 0.05)
        .with_seed(12)
        .with_enhancement(true);
    for (name, g) in zoo() {
        check_graph(name, &g, &config);
    }
}

#[test]
fn within_eps_with_all_optimizations_off() {
    let config = SlingConfig::from_epsilon(C, 0.05)
        .with_seed(13)
        .with_space_reduction(false)
        .with_adaptive_dk(false)
        .with_exact_diagonal(false);
    for (name, g) in zoo() {
        check_graph(name, &g, &config);
    }
}

#[test]
fn tighter_epsilon_tightens_observed_error() {
    let g = two_cliques_bridge(5);
    let truth = power_simrank(&g, C, 60);
    let mut errors = Vec::new();
    for eps in [0.2, 0.05] {
        let idx = SlingIndex::build(
            &g,
            &SlingConfig::from_epsilon(C, eps)
                .with_seed(7)
                .with_exact_diagonal(false),
        )
        .unwrap();
        let mut worst = 0.0f64;
        for u in g.nodes() {
            let row = idx.single_source(&g, u);
            for v in g.nodes() {
                worst = worst.max((row[v.index()] - truth.get(u.index(), v.index())).abs());
            }
        }
        errors.push(worst);
    }
    assert!(
        errors[1] <= errors[0] + 1e-9,
        "eps=0.05 worst error {} should not exceed eps=0.2 worst {}",
        errors[1],
        errors[0]
    );
}

#[test]
fn correction_factor_error_respects_eps_d_bound() {
    use sling_simrank::core::reference::{exact_dk, exact_simrank};
    let g = barabasi_albert(80, 2, 9).unwrap();
    let config = SlingConfig::from_epsilon(C, 0.05).with_seed(21);
    let idx = SlingIndex::build(&g, &config).unwrap();
    let truth = exact_simrank(&g, C, 60);
    let dk = exact_dk(&g, C, &truth);
    for (k, (&est, &exact)) in idx.correction_factors().iter().zip(&dk).enumerate() {
        assert!(
            (est - exact).abs() <= config.eps_d + 1e-9,
            "node {k}: |{est} - {exact}| > eps_d"
        );
    }
}
