//! Additional cross-crate invariant tests: non-default decay factors,
//! self-loops, dangling-heavy topologies, and the Observation 1 size
//! bound on the materialized index.

use sling_simrank::baselines::power_simrank;
use sling_simrank::core::{SlingConfig, SlingIndex};
use sling_simrank::graph::generators::{barabasi_albert, star_graph};
use sling_simrank::graph::{DiGraph, GraphBuilder, NodeId};

fn assert_within_eps(g: &DiGraph, c: f64, config: &SlingConfig) {
    let truth = power_simrank(g, c, 80);
    let idx = SlingIndex::build(g, config).unwrap();
    for u in g.nodes() {
        let row = idx.single_source(g, u);
        for v in g.nodes() {
            let err = (row[v.index()] - truth.get(u.index(), v.index())).abs();
            assert!(err <= config.epsilon, "c={c}: err {err} at ({u:?},{v:?})");
        }
    }
}

#[test]
fn decay_factor_0_8_still_respects_theorem_1() {
    // The paper's other common setting, c = 0.8. Walks are longer
    // (expected length 1/(1-√0.8) ≈ 9.5) and θ must shrink; the
    // guarantee must be unaffected.
    let c = 0.8;
    let g = barabasi_albert(60, 2, 41).unwrap();
    let config = SlingConfig::from_epsilon(c, 0.1).with_seed(4);
    config.validate().unwrap();
    assert_within_eps(&g, c, &config);
}

#[test]
fn decay_factor_0_3_small_c() {
    let c = 0.3;
    let g = barabasi_albert(60, 2, 43).unwrap();
    let config = SlingConfig::from_epsilon(c, 0.08).with_seed(6);
    assert_within_eps(&g, c, &config);
}

#[test]
fn self_loops_are_supported_when_kept() {
    // A self-loop makes a node its own in-neighbor: √c-walks can stand
    // still, and s(u, v) of Eq. (1) changes accordingly. The whole
    // pipeline (power method included) must agree under that semantics.
    let mut b = GraphBuilder::new().keep_self_loops(true);
    b.extend_edges([(0, 0), (0, 1), (1, 2), (2, 0), (2, 1), (1, 1)]);
    let g = b.build().unwrap();
    assert!(g.has_edge(NodeId(0), NodeId(0)));
    let config = SlingConfig::from_epsilon(0.6, 0.05).with_seed(8);
    assert_within_eps(&g, 0.6, &config);
}

#[test]
fn star_of_stars_dangling_cascade() {
    // Hub 0 receives edges from q sub-hubs; each sub-hub receives edges
    // from its own leaves. Most of the graph is dangling; walks die in
    // two steps. SimRank between sub-hubs: their in-neighbor sets are
    // disjoint leaf sets (all dangling), so s = 0; SLING must agree.
    let q = 4u32;
    let leaves = 3u32;
    let mut b = GraphBuilder::new();
    for h in 1..=q {
        b.add_edge(h, 0u32);
        for l in 0..leaves {
            b.add_edge(q + 1 + (h - 1) * leaves + l, h);
        }
    }
    let g = b.build().unwrap();
    let config = SlingConfig::from_epsilon(0.6, 0.05).with_seed(2);
    let idx = SlingIndex::build(&g, &config).unwrap();
    assert_eq!(idx.single_pair(&g, NodeId(1), NodeId(2)), 0.0);
    assert_within_eps(&g, 0.6, &config);
}

#[test]
fn observation1_bounds_stored_entries_per_node() {
    // |H(v)| ≤ Σ_ℓ (√c)^ℓ / θ = 1/(θ(1-√c)) for every node.
    let g = barabasi_albert(400, 3, 13).unwrap();
    let config = SlingConfig::from_epsilon(0.6, 0.05)
        .with_seed(3)
        .with_space_reduction(false);
    let idx = SlingIndex::build(&g, &config).unwrap();
    let bound = (1.0 / (config.theta * (1.0 - 0.6f64.sqrt()))).ceil() as usize;
    for v in g.nodes() {
        let len = idx.stored_entries(v).count();
        assert!(len <= bound, "|H({v:?})| = {len} > bound {bound}");
    }
    // And the per-level bound: entries at step ℓ are ≤ (√c)^ℓ/θ.
    let sc = 0.6f64.sqrt();
    for v in g.nodes().take(50) {
        let mut per_level = std::collections::HashMap::new();
        for e in idx.stored_entries(v) {
            *per_level.entry(e.step).or_insert(0usize) += 1;
        }
        for (&l, &count) in &per_level {
            let cap = (sc.powi(l as i32) / config.theta).floor() as usize;
            assert!(count <= cap.max(1), "level {l}: {count} > {cap}");
        }
    }
}

#[test]
fn index_size_scales_inversely_with_eps() {
    // The O(n/ε) space claim, measured: halving ε should increase the
    // number of stored entries (and never shrink it).
    let g = barabasi_albert(300, 3, 19).unwrap();
    let mut sizes = Vec::new();
    for eps in [0.2, 0.1, 0.05] {
        let config = SlingConfig::from_epsilon(0.6, eps)
            .with_seed(5)
            .with_space_reduction(false);
        let idx = SlingIndex::build(&g, &config).unwrap();
        sizes.push(idx.stats().entries_stored);
    }
    assert!(sizes[0] < sizes[1] && sizes[1] < sizes[2], "{sizes:?}");
}

#[test]
fn disconnected_components_never_mix() {
    // Two disjoint cliques with NO bridge: cross-component SimRank is 0
    // and H-sets never reference the other component.
    let k = 4u32;
    let mut b = GraphBuilder::new().symmetric(true);
    for u in 0..k {
        for v in (u + 1)..k {
            b.add_edge(u, v);
            b.add_edge(u + k, v + k);
        }
    }
    let g = b.build().unwrap();
    let config = SlingConfig::from_epsilon(0.6, 0.1).with_seed(1);
    let idx = SlingIndex::build(&g, &config).unwrap();
    for u in 0..k {
        for v in k..2 * k {
            assert_eq!(idx.single_pair(&g, NodeId(u), NodeId(v)), 0.0);
        }
        for e in idx.stored_entries(NodeId(u)) {
            assert!(e.node.0 < k, "H({u}) references other component");
        }
    }
}

#[test]
fn star_hub_correction_factor_exact_cases_survive_build() {
    let g = star_graph(9);
    let config = SlingConfig::from_epsilon(0.6, 0.05).with_seed(7);
    let idx = SlingIndex::build(&g, &config).unwrap();
    // Leaves are dangling: d = 1 exactly. Hub: µ = 0, d = 1 - c/8.
    for leaf in 1..9 {
        assert_eq!(idx.correction_factor(NodeId(leaf)), 1.0);
    }
    assert!((idx.correction_factor(NodeId(0)) - (1.0 - 0.6 / 8.0)).abs() <= config.eps_d + 1e-9);
}
