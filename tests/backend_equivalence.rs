//! Cross-backend equivalence: every query API must return identical
//! scores whether the index is served from memory, from a zero-copy mmap,
//! or from the buffered disk store — including with §5.2 space reduction
//! and §5.3 accuracy enhancement enabled. Plus hardening properties for
//! the mmap path: metadata-only open, and no panic on mutated bytes.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use proptest::prelude::*;
use sling_simrank::core::codec::CompressOptions;
use sling_simrank::core::disk_query::BufferedDiskStore;
use sling_simrank::core::join::JoinStrategy;
use sling_simrank::core::out_of_core::DiskHpStore;
use sling_simrank::core::single_source::SingleSourceWorkspace;
use sling_simrank::core::topk::select_top_k;
use sling_simrank::core::{
    HpStore, QueryEngine, QueryWorkspace, SlingConfig, SlingError, SlingIndex,
};
use sling_simrank::graph::generators::{barabasi_albert, erdos_renyi_directed, star_graph};
use sling_simrank::graph::{DiGraph, NodeId};

const C: f64 = 0.6;

static FILE_COUNTER: AtomicU64 = AtomicU64::new(0);

fn tmpfile(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sling_backend_eq_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!(
        "{tag}_{}.slng",
        FILE_COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Assert the streaming kernels (borrow-from-backend entry access,
/// galloping merge, restore-cache memoization) answer **bit-identically**
/// to the materializing reference path on one backend, for every query
/// type. Two rounds, so the second runs against a warm restore cache.
fn assert_streaming_matches_materialized<S: HpStore + Sync>(
    label: &str,
    engine: &QueryEngine<'_, S>,
    g: &DiGraph,
    pairs: &[(NodeId, NodeId)],
    sources: &[NodeId],
) {
    let mut ws = QueryWorkspace::new();
    let mut ws_ref = QueryWorkspace::new();
    let mut ssw = SingleSourceWorkspace::new();
    let mut ssw_ref = SingleSourceWorkspace::new();
    let (mut scores, mut scores_ref) = (Vec::new(), Vec::new());
    for round in 0..2 {
        for &(u, v) in pairs {
            let streamed = engine.single_pair_with(g, &mut ws, u, v).unwrap();
            let reference = engine
                .single_pair_materialized_with(g, &mut ws_ref, u, v)
                .unwrap();
            assert_eq!(
                streamed.to_bits(),
                reference.to_bits(),
                "{label} round {round}: single_pair({u:?},{v:?}) {streamed} vs {reference}"
            );
        }
        for &u in sources {
            engine
                .single_source_with(g, &mut ssw, u, &mut scores)
                .unwrap();
            engine
                .single_source_materialized_with(g, &mut ssw_ref, u, &mut scores_ref)
                .unwrap();
            assert_eq!(
                &scores, &scores_ref,
                "{label} round {round}: single_source({u:?})"
            );
            // Top-k and the zero-slack truncated variant build on the
            // same streamed vector.
            let top = engine.top_k(g, u, 5).unwrap();
            assert_eq!(&top, &select_top_k(&scores_ref, Some(u), 5));
            let mut truncated = Vec::new();
            let residual = engine
                .single_source_truncated(g, &mut ssw, u, 0.0, &mut truncated)
                .unwrap();
            assert_eq!(residual, 0.0);
            assert_eq!(&truncated, &scores_ref);
        }
    }
    // Batches route through the same streaming cores.
    let batch = engine.batch_single_pair(g, pairs, 3).unwrap();
    for (i, &(u, v)) in pairs.iter().enumerate() {
        let reference = engine
            .single_pair_materialized_with(g, &mut ws_ref, u, v)
            .unwrap();
        assert_eq!(batch[i].to_bits(), reference.to_bits());
    }
}

/// Strategy: random graphs from the two generator families the paper's
/// datasets resemble.
fn arb_graph() -> impl Strategy<Value = DiGraph> {
    (0usize..2, 20usize..=60, 2usize..5, 0u64..1000).prop_map(|(kind, n, k, seed)| {
        if kind == 0 {
            erdos_renyi_directed(n, n * k, seed).unwrap()
        } else {
            barabasi_albert(n, k, seed).unwrap()
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        ..ProptestConfig::default()
    })]

    /// Single-pair, single-source, top-k, join, and batch answers agree
    /// across mem / mmap / disk / buffered-disk — plus the lossless
    /// compressed-mmap and compressed-disk backends serving `SLNGIDX2`
    /// and `SLNGIDX3` conversions of the same index — to 1e-12 (in
    /// fact: bit for bit) on random graphs, across the §5.2/§5.3
    /// feature matrix (which also pins the two-segment streaming
    /// restore against the materializing reference, warm and cold).
    #[test]
    fn all_query_apis_agree_across_backends(
        g in arb_graph(),
        seed in 0u64..500,
        space_reduction in proptest::bool::ANY,
        enhance in proptest::bool::ANY,
    ) {
        let config = SlingConfig::from_epsilon(C, 0.1)
            .with_seed(seed)
            .with_space_reduction(space_reduction)
            .with_enhancement(enhance);
        let idx = SlingIndex::build(&g, &config).unwrap();
        let path = tmpfile("eq");
        idx.save(&path).unwrap();
        let v2_path = tmpfile("eq_v2");
        // Tiny blocks so entry runs straddle block boundaries.
        let opts = CompressOptions { block_entries: 32, quantize_values: false };
        idx.save_v2(&v2_path, &opts).unwrap();
        let v3_path = tmpfile("eq_v3");
        idx.save_v3(&v3_path, &opts).unwrap();

        let mem = idx.query_engine();
        let mmap = QueryEngine::open_mmap(&g, &path).unwrap();
        let compressed = QueryEngine::open_mmap_compressed(&g, &v2_path).unwrap();
        let compressed_v3 = QueryEngine::open_mmap_compressed(&g, &v3_path).unwrap();
        let disk = DiskHpStore::open(&g, &path).unwrap();
        let disk_engine = disk.query_engine();
        let disk_v2 = DiskHpStore::open(&g, &v2_path).unwrap();
        let disk_v2_engine = disk_v2.query_engine();
        let disk_v3 = DiskHpStore::open(&g, &v3_path).unwrap();
        let disk_v3_engine = disk_v3.query_engine();
        // A 64-entry budget forces constant eviction on these graphs.
        let buffered = BufferedDiskStore::new(&disk, 64);
        let buffered_engine = buffered.query_engine();

        let n = g.num_nodes() as u32;
        let pairs: Vec<(NodeId, NodeId)> = (0..24u32)
            .map(|i| (NodeId((i * 7) % n), NodeId((i * 13 + 1) % n)))
            .collect();

        for &(u, v) in &pairs {
            let want = mem.single_pair(&g, u, v).unwrap();
            for (label, got) in [
                ("mmap", mmap.single_pair(&g, u, v).unwrap()),
                ("mmap-compressed", compressed.single_pair(&g, u, v).unwrap()),
                ("mmap-compressed-v3", compressed_v3.single_pair(&g, u, v).unwrap()),
                ("disk", disk_engine.single_pair(&g, u, v).unwrap()),
                ("disk-v2", disk_v2_engine.single_pair(&g, u, v).unwrap()),
                ("disk-v3", disk_v3_engine.single_pair(&g, u, v).unwrap()),
                ("buffered", buffered_engine.single_pair(&g, u, v).unwrap()),
            ] {
                prop_assert!(
                    (want - got).abs() <= 1e-12,
                    "single_pair({u:?},{v:?}) {label}: {want} vs {got}"
                );
                prop_assert_eq!(want, got, "single_pair bit-equality, {}", label);
            }
        }

        for u in [NodeId(0), NodeId(n / 2), NodeId(n - 1)] {
            let want = mem.single_source(&g, u).unwrap();
            prop_assert_eq!(&want, &mmap.single_source(&g, u).unwrap());
            prop_assert_eq!(&want, &compressed.single_source(&g, u).unwrap());
            prop_assert_eq!(&want, &compressed_v3.single_source(&g, u).unwrap());
            prop_assert_eq!(&want, &disk_engine.single_source(&g, u).unwrap());
            prop_assert_eq!(&want, &disk_v2_engine.single_source(&g, u).unwrap());
            prop_assert_eq!(&want, &disk_v3_engine.single_source(&g, u).unwrap());
            prop_assert_eq!(&want, &buffered_engine.single_source(&g, u).unwrap());

            let want_top = mem.top_k(&g, u, 5).unwrap();
            prop_assert_eq!(&want_top, &mmap.top_k(&g, u, 5).unwrap());
            prop_assert_eq!(&want_top, &compressed.top_k(&g, u, 5).unwrap());
            prop_assert_eq!(&want_top, &compressed_v3.top_k(&g, u, 5).unwrap());
            prop_assert_eq!(&want_top, &disk_engine.top_k(&g, u, 5).unwrap());
            prop_assert_eq!(&want_top, &disk_v2_engine.top_k(&g, u, 5).unwrap());
            prop_assert_eq!(&want_top, &disk_v3_engine.top_k(&g, u, 5).unwrap());
            prop_assert_eq!(&want_top, &buffered_engine.top_k(&g, u, 5).unwrap());
        }

        for strategy in [JoinStrategy::PerSource, JoinStrategy::InvertedLists] {
            let want = mem.threshold_join(&g, 0.05, strategy).unwrap();
            let via_mmap = mmap.threshold_join(&g, 0.05, strategy).unwrap();
            prop_assert_eq!(want.len(), via_mmap.len());
            for (a, b) in want.iter().zip(&via_mmap) {
                prop_assert_eq!((a.u, a.v, a.score), (b.u, b.v, b.score));
            }
            let via_compressed = compressed.threshold_join(&g, 0.05, strategy).unwrap();
            prop_assert_eq!(want.len(), via_compressed.len());
            for (a, b) in want.iter().zip(&via_compressed) {
                prop_assert_eq!((a.u, a.v, a.score), (b.u, b.v, b.score));
            }
            let via_buffered = buffered_engine.threshold_join(&g, 0.05, strategy).unwrap();
            prop_assert_eq!(want.len(), via_buffered.len());
            for (a, b) in want.iter().zip(&via_buffered) {
                prop_assert_eq!((a.u, a.v, a.score), (b.u, b.v, b.score));
            }
        }

        let want = mem.batch_single_pair(&g, &pairs, 3).unwrap();
        prop_assert_eq!(&want, &mmap.batch_single_pair(&g, &pairs, 3).unwrap());
        prop_assert_eq!(&want, &compressed.batch_single_pair(&g, &pairs, 3).unwrap());
        prop_assert_eq!(&want, &compressed_v3.batch_single_pair(&g, &pairs, 3).unwrap());
        prop_assert_eq!(&want, &disk_v2_engine.batch_single_pair(&g, &pairs, 3).unwrap());
        prop_assert_eq!(&want, &disk_v3_engine.batch_single_pair(&g, &pairs, 3).unwrap());
        prop_assert_eq!(&want, &buffered_engine.batch_single_pair(&g, &pairs, 3).unwrap());

        // Streaming kernels vs the materializing reference path, per
        // backend × query type, across the same §5.2/§5.3 feature
        // matrix — with hub-skewed pairs appended so the galloping merge
        // branch is exercised too.
        let hub = g.nodes().max_by_key(|&v| g.in_degree(v)).unwrap();
        let mut skewed = pairs.clone();
        skewed.extend((0..8u32).map(|i| (hub, NodeId((i * 5 + 1) % n))));
        let sources = [NodeId(0), NodeId(n / 2), NodeId(n - 1)];
        assert_streaming_matches_materialized("mem", &mem, &g, &skewed, &sources);
        assert_streaming_matches_materialized("mmap", &mmap, &g, &skewed, &sources);
        assert_streaming_matches_materialized("mmap-compressed", &compressed, &g, &skewed, &sources);
        assert_streaming_matches_materialized(
            "mmap-compressed-v3",
            &compressed_v3,
            &g,
            &skewed,
            &sources,
        );
        assert_streaming_matches_materialized("disk", &disk_engine, &g, &skewed, &sources);
        assert_streaming_matches_materialized("disk-v2", &disk_v2_engine, &g, &skewed, &sources);
        assert_streaming_matches_materialized("disk-v3", &disk_v3_engine, &g, &skewed, &sources);
        assert_streaming_matches_materialized("buffered", &buffered_engine, &g, &skewed, &sources);

        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&v2_path).ok();
        std::fs::remove_file(&v3_path).ok();
    }
}

/// Hub-versus-leaf pairs on a graph with no §5.2 reduction: the hub's
/// *stored* run dwarfs the leaves', so the streaming kernels take the
/// zero-copy borrow path and the merge takes the galloping branch — and
/// both must still be bit-identical to the materializing linear-merge
/// reference on every backend.
#[test]
fn skewed_stored_lists_stream_and_gallop_bit_identically() {
    // Directed star (spokes → center): the center's stored run holds an
    // entry per spoke while each spoke stores only its step-0 self
    // entry — maximal length skew, with §5.2 reduction off so the
    // streaming kernels take the zero-copy borrow path on the long run.
    let g = star_graph(400);
    let config = SlingConfig::from_epsilon(C, 0.05)
        .with_seed(23)
        .with_space_reduction(false);
    let idx = SlingIndex::build(&g, &config).unwrap();
    let hub = NodeId(0);
    let hub_len = idx.stored_entries(hub).count();
    let leaf = NodeId(7);
    let leaf_len = idx.stored_entries(leaf).count();
    assert!(
        hub_len >= 8 * leaf_len.max(1),
        "fixture not skewed enough for galloping: hub {hub_len} vs leaf {leaf_len}"
    );
    let path = tmpfile("skew");
    idx.save(&path).unwrap();
    let v2_path = tmpfile("skew_v2");
    idx.save_v2(&v2_path, &CompressOptions::default()).unwrap();

    let pairs: Vec<(NodeId, NodeId)> = g
        .nodes()
        .skip(1)
        .take(64)
        .flat_map(|v| [(hub, v), (v, hub)])
        .collect();
    let sources = [hub, leaf];
    let mem = idx.query_engine();
    assert_streaming_matches_materialized("mem", &mem, &g, &pairs, &sources);
    let mmap = QueryEngine::open_mmap(&g, &path).unwrap();
    assert_streaming_matches_materialized("mmap", &mmap, &g, &pairs, &sources);
    let compressed = QueryEngine::open_mmap_compressed(&g, &v2_path).unwrap();
    assert_streaming_matches_materialized("compressed", &compressed, &g, &pairs, &sources);
    let disk = DiskHpStore::open(&g, &path).unwrap();
    assert_streaming_matches_materialized("disk", &disk.query_engine(), &g, &pairs, &sources);
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&v2_path).ok();
}

/// Directed star: the center's entry run against a spoke's is the most
/// extreme length skew a graph can produce; the dispatch must stay
/// bit-identical there too.
#[test]
fn star_graph_extreme_skew_is_bit_identical() {
    let g = star_graph(400);
    let config = SlingConfig::from_epsilon(C, 0.05).with_seed(3);
    let idx = SlingIndex::build(&g, &config).unwrap();
    let pairs: Vec<(NodeId, NodeId)> = (1..40u32).map(|i| (NodeId(0), NodeId(i))).collect();
    let mem = idx.query_engine();
    assert_streaming_matches_materialized("star-mem", &mem, &g, &pairs, &[NodeId(0), NodeId(7)]);
}

/// Shared corpus for the mutation property: one valid persisted index.
fn mutation_corpus() -> &'static (DiGraph, Vec<u8>) {
    static CORPUS: OnceLock<(DiGraph, Vec<u8>)> = OnceLock::new();
    CORPUS.get_or_init(|| {
        let g = barabasi_albert(40, 2, 9).unwrap();
        let config = SlingConfig::from_epsilon(C, 0.1)
            .with_seed(4)
            .with_enhancement(true);
        let idx = SlingIndex::build(&g, &config).unwrap();
        let bytes = idx.to_bytes();
        (g, bytes)
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        ..ProptestConfig::default()
    })]

    /// Bit-flip any byte of a persisted index: the mmap open either
    /// surfaces a `SlingError` or yields an engine whose answers are
    /// still finite probabilities. Nothing panics.
    #[test]
    fn mmap_mutation_errors_or_stays_sane(flip in 0usize..1 << 20, bit in 0u8..8) {
        let (g, bytes) = mutation_corpus();
        let mut corrupt = bytes.clone();
        let pos = flip % corrupt.len();
        corrupt[pos] ^= 1 << bit;
        let path = tmpfile("mut");
        std::fs::write(&path, &corrupt).unwrap();

        match QueryEngine::open_mmap(g, &path) {
            Err(e) => {
                // Must be a structured error, never a panic; exercise the
                // Display path too.
                let _ = e.to_string();
            }
            Ok(engine) => {
                for u in [NodeId(0), NodeId(17), NodeId(39)] {
                    match engine.single_source(g, u) {
                        Ok(scores) => {
                            prop_assert!(
                                scores.iter().all(|s| s.is_finite() && (0.0..=1.0).contains(s)),
                                "non-probability score after byte {pos} bit {bit}"
                            );
                        }
                        Err(e) => {
                            let _ = e.to_string();
                        }
                    }
                    // Ranking paths must not panic on corrupt stores
                    // either.
                    let _ = engine.top_k(g, u, 4);
                    let _ = engine.single_pair(g, u, NodeId(1));
                }
            }
        }
        std::fs::remove_file(&path).ok();
    }

    /// Any truncation of the file is rejected at open.
    #[test]
    fn mmap_truncation_always_rejected(cut_seed in 0usize..1 << 20) {
        let (g, bytes) = mutation_corpus();
        let cut = cut_seed % bytes.len(); // strictly shorter than full
        let path = tmpfile("trunc");
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let err = QueryEngine::open_mmap(g, &path);
        prop_assert!(err.is_err(), "cut at {cut} accepted");
        std::fs::remove_file(&path).ok();
    }
}

/// The mmap open must be metadata-only: corrupting the entry payload is
/// invisible to `open` (proving no full-file decode happens) while the
/// eager decoder rejects the same bytes; and the resident footprint of
/// the mapped engine stays at the `O(n)` metadata level.
#[test]
fn mmap_open_does_not_decode_the_payload() {
    let g = barabasi_albert(300, 3, 21).unwrap();
    let config = SlingConfig::from_epsilon(C, 0.05).with_seed(7);
    let idx = SlingIndex::build(&g, &config).unwrap();
    let mut bytes = idx.to_bytes();
    let len = bytes.len();
    // Poison the last HP value with NaN: eager decode must reject, the
    // metadata-only mmap open must not notice.
    bytes[len - 8..].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
    assert!(matches!(
        SlingIndex::from_bytes(&g, &bytes),
        Err(SlingError::CorruptIndex(_))
    ));
    let path = tmpfile("payload");
    std::fs::write(&path, &bytes).unwrap();
    let engine = QueryEngine::open_mmap(&g, &path).unwrap();

    // No HpArena materialization: the engine's heap footprint is the
    // O(n) metadata, far below the in-memory index which holds the
    // O(n/eps) entry payload.
    assert!(
        engine.resident_bytes() * 2 < idx.resident_bytes(),
        "mmap engine resident {} vs in-memory {}",
        engine.resident_bytes(),
        idx.resident_bytes()
    );

    // Queries that touch the poisoned entry surface an error rather than
    // a NaN score or a panic.
    let mut saw_error = false;
    for v in g.nodes() {
        match engine.single_pair(&g, NodeId(0), v) {
            Ok(s) => assert!(s.is_finite() && (0.0..=1.0).contains(&s)),
            Err(SlingError::CorruptIndex(_)) => saw_error = true,
            Err(other) => panic!("unexpected error {other}"),
        }
    }
    assert!(saw_error, "the poisoned entry was never read");
    std::fs::remove_file(&path).ok();
}
