//! Integration tests for the extension features: coupled Monte Carlo and
//! the §8 SimRank variants, validated against the power-method oracle on
//! larger graphs than their unit tests use.

use sling_simrank::baselines::variants::p_rank;
use sling_simrank::baselines::{power_simrank, CoupledMc, McIndex, PSimRank};
use sling_simrank::graph::generators::{barabasi_albert, two_cliques_bridge};
use sling_simrank::graph::NodeId;

const C: f64 = 0.6;

#[test]
fn coupled_mc_agrees_with_truth_on_ba_graph() {
    let g = barabasi_albert(120, 2, 55).unwrap();
    let truth = power_simrank(&g, C, 60);
    let est = CoupledMc::new(C, 4000, 12, 9);
    for (u, v) in [(0u32, 1u32), (3, 40), (77, 78), (10, 119)] {
        let s = est.single_pair(&g, NodeId(u), NodeId(v));
        let t = truth.get(u as usize, v as usize);
        assert!((s - t).abs() <= 0.05, "({u},{v}): est {s} truth {t}");
    }
}

#[test]
fn coupled_mc_and_stored_mc_estimate_the_same_quantity() {
    // Different couplings, same pairwise distribution: with generous
    // sample counts both estimators land near each other.
    let g = two_cliques_bridge(5);
    let coupled = CoupledMc::new(C, 6000, 12, 1);
    let stored = McIndex::build(&g, C, 6000, 12, 2);
    for (u, v) in [(0u32, 1u32), (1, 6), (0, 5)] {
        let a = coupled.single_pair(&g, NodeId(u), NodeId(v));
        let b = stored.single_pair(NodeId(u), NodeId(v));
        assert!((a - b).abs() <= 0.04, "({u},{v}): coupled {a} stored {b}");
    }
}

#[test]
fn coupled_single_source_consistent_on_ba_graph() {
    let g = barabasi_albert(80, 2, 3).unwrap();
    let est = CoupledMc::new(C, 300, 10, 4);
    let row = est.single_source(&g, NodeId(7));
    for v in [0u32, 7, 33, 79] {
        let pair = est.single_pair(&g, NodeId(7), NodeId(v));
        assert!(
            (row[v as usize] - pair).abs() < 1e-12,
            "node {v}: {} vs {pair}",
            row[v as usize]
        );
    }
}

#[test]
fn psimrank_scores_at_least_match_simrank_on_community_graph() {
    // PSimRank's coupling rewards in-neighborhood overlap, so inside a
    // clique (overlapping neighborhoods) scores dominate SimRank.
    let g = two_cliques_bridge(5);
    let truth = power_simrank(&g, C, 60);
    let ps = PSimRank::new(C, 6000, 12, 7);
    let mut dominated = 0;
    let mut total = 0;
    for u in 1..5u32 {
        for v in (u + 1)..5 {
            let s_ps = ps.single_pair(&g, NodeId(u), NodeId(v));
            let s_sr = truth.get(u as usize, v as usize);
            total += 1;
            if s_ps >= s_sr - 0.02 {
                dominated += 1;
            }
        }
    }
    assert_eq!(dominated, total, "PSimRank should not fall below SimRank");
}

#[test]
fn p_rank_interpolates_between_directions() {
    // On a symmetric graph, in- and out-neighborhoods coincide, so
    // P-Rank is invariant in lambda.
    let g = two_cliques_bridge(4);
    let a = p_rank(&g, C, 0.0, 40);
    let b = p_rank(&g, C, 0.5, 40);
    let c_ = p_rank(&g, C, 1.0, 40);
    assert!(a.max_abs_diff(&c_) < 1e-9);
    assert!(b.max_abs_diff(&c_) < 1e-9);
}
