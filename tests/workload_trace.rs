//! Traffic-trace format properties: arbitrary record streams round-trip
//! through the `SLNGTRACE v1` writer/reader bit-for-bit, survive
//! pathologically fragmented reads, and — the durability contract the
//! tolerant reader exists for — a mutated or truncated trace body
//! degrades to a strict *prefix* of the original records, never to a
//! record that was not written or to a silent misread.

use std::io::BufReader;

use proptest::collection::vec;
use proptest::prelude::*;
use sling_simrank::core::workload::{
    read_trace, read_trace_tolerant, Trace, TraceKey, TraceOutcome, TraceRecord, TraceVerb,
    TraceWriter,
};

/// An arbitrary well-formed record stream: timestamps are a running sum
/// of deltas (the format is delta-encoded, so monotone time is the
/// writer's own clamp anyway), and each verb carries its matching key
/// shape, with node ids up to `u32::MAX` to exercise wide varints.
fn arb_records(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<TraceRecord>> {
    vec(
        (
            0u64..2_000_000, // dt from the previous record (µs)
            0u8..4,          // verb selector
            (0u32..=u32::MAX, 0u32..=u32::MAX),
            0u8..4,          // outcome selector
            0u32..=u32::MAX, // latency
            0u64..16,        // epoch
        ),
        len,
    )
    .prop_map(|raw| {
        let mut t_us = 0u64;
        raw.into_iter()
            .map(|(dt, verb, (a, b), outcome, latency_us, epoch)| {
                t_us += dt;
                let (verb, key) = match verb {
                    0 => (TraceVerb::Pair, TraceKey::Pair(a, b)),
                    1 => (TraceVerb::Batch, TraceKey::Pair(a, b)),
                    2 => (TraceVerb::Source, TraceKey::Node(a)),
                    _ => (TraceVerb::TopK, TraceKey::NodeK(a, b)),
                };
                let outcome = match outcome {
                    0 => TraceOutcome::Ok,
                    1 => TraceOutcome::Err,
                    2 => TraceOutcome::Shed,
                    _ => TraceOutcome::Deadline,
                };
                TraceRecord {
                    t_us,
                    verb,
                    key,
                    outcome,
                    latency_us,
                    epoch,
                }
            })
            .collect()
    })
}

fn write_trace(base_us: u64, records: &[TraceRecord]) -> Vec<u8> {
    let mut w = TraceWriter::new(Vec::new(), base_us).unwrap();
    for rec in records {
        w.write(rec).unwrap();
    }
    w.into_inner().unwrap()
}

/// Index of the first byte after the header line.
fn body_start(bytes: &[u8]) -> usize {
    bytes.iter().position(|&b| b == b'\n').unwrap() + 1
}

proptest! {
    /// Strict-reader round-trip: every field of every record, and the
    /// capture origin, come back exactly.
    #[test]
    fn roundtrip_is_exact(base_us in 0u64..=u64::MAX, records in arb_records(0..120)) {
        let bytes = write_trace(base_us, &records);
        let trace: Trace = read_trace(bytes.as_slice()).unwrap();
        prop_assert_eq!(trace.base_us, base_us);
        prop_assert_eq!(trace.records, records);
    }

    /// The reader is a line protocol over `BufRead`: a one-byte buffer
    /// (maximal fragmentation — every fill_buf returns a single byte)
    /// must parse identically to a whole-slice read.
    #[test]
    fn fragmented_reads_parse_identically(records in arb_records(0..60)) {
        let bytes = write_trace(7, &records);
        let whole: Trace = read_trace(bytes.as_slice()).unwrap();
        let fragmented: Trace =
            read_trace(BufReader::with_capacity(1, bytes.as_slice())).unwrap();
        prop_assert_eq!(whole.records, fragmented.records);
        prop_assert_eq!(whole.base_us, fragmented.base_us);
    }

    /// Flipping any single body byte never silently yields wrong
    /// records: the tolerant reader returns a strict prefix of the
    /// originals (the per-line checksum catches the damage), and the
    /// strict reader never invents a record that was not written.
    #[test]
    fn single_byte_mutation_degrades_to_a_prefix(
        records in arb_records(1..120),
        pos_seed in 0usize..=usize::MAX,
        flip in 1u8..=255,
    ) {
        let mut bytes = write_trace(3, &records);
        let body = body_start(&bytes);
        let pos = body + pos_seed % (bytes.len() - body);
        bytes[pos] ^= flip;

        let (trace, _dropped) = read_trace_tolerant(bytes.as_slice());
        let got = trace.map(|t| t.records).unwrap_or_default();
        prop_assert!(got.len() <= records.len());
        prop_assert_eq!(&got[..], &records[..got.len()]);

        if let Ok(strict) = read_trace(bytes.as_slice()) {
            // The strict reader accepted the flip only if decoding was
            // unaffected — the records must still be exactly the
            // originals, never a silent misread.
            prop_assert_eq!(strict.records, records);
        }
    }

    /// A trace truncated mid-write (torn tail) reads back as a prefix —
    /// fewer records, never an error from the tolerant reader and never
    /// a wrong record.
    #[test]
    fn truncation_degrades_to_a_prefix(
        records in arb_records(0..120),
        cut_seed in 0usize..=usize::MAX,
    ) {
        let bytes = write_trace(11, &records);
        let body = body_start(&bytes);
        let cut = body + cut_seed % (bytes.len() - body + 1);
        let torn = &bytes[..cut];

        let (trace, dropped) = read_trace_tolerant(torn);
        let trace = trace.expect("header is intact");
        prop_assert!(trace.records.len() <= records.len());
        prop_assert_eq!(&trace.records[..], &records[..trace.records.len()]);
        // At most the one torn line can be dropped by a clean cut.
        prop_assert!(dropped <= 1);
    }
}
