//! Cross-crate integration tests for the extension query types: top-k,
//! similarity joins, dynamic maintenance, caching, and the disk store —
//! all validated against the power-method ground truth and against each
//! other.

use sling_simrank::baselines::{power_simrank, top_k_pairs};
use sling_simrank::core::cache::CachedQueries;
use sling_simrank::core::dynamic::{DynamicConfig, DynamicSling, StalePolicy};
use sling_simrank::core::join::JoinStrategy;
use sling_simrank::core::out_of_core::DiskHpStore;
use sling_simrank::core::{SlingConfig, SlingIndex};
use sling_simrank::graph::generators::{barabasi_albert, two_cliques_bridge, watts_strogatz};
use sling_simrank::graph::{DiGraph, NodeId};

const C: f64 = 0.6;
const EPS: f64 = 0.05;

fn build(g: &DiGraph, seed: u64) -> SlingIndex {
    SlingIndex::build(g, &SlingConfig::from_epsilon(C, EPS).with_seed(seed)).unwrap()
}

#[test]
fn topk_ranking_matches_ground_truth_up_to_eps_ties() {
    let g = two_cliques_bridge(6);
    let idx = build(&g, 1);
    let truth = power_simrank(&g, C, 60);
    for u in g.nodes() {
        let top = idx.top_k_heap(&g, u, 5);
        // Every reported score is within eps of truth, and no unreported
        // node truly beats a reported one by more than 2*eps.
        let floor = top.last().map(|&(_, s)| s).unwrap_or(0.0);
        for &(v, s) in &top {
            let t = truth.get(u.index(), v.index());
            assert!((s - t).abs() <= EPS, "({u:?},{v:?}): {s} vs {t}");
        }
        for v in g.nodes() {
            if v == u || top.iter().any(|&(w, _)| w == v) {
                continue;
            }
            let t = truth.get(u.index(), v.index());
            assert!(
                t <= floor + 2.0 * EPS,
                "({u:?},{v:?}): unreported true score {t} above floor {floor}"
            );
        }
    }
}

#[test]
fn global_topk_join_agrees_with_ground_truth_pairs() {
    let g = two_cliques_bridge(5);
    let idx = build(&g, 2);
    let truth = power_simrank(&g, C, 60);
    let k = 8;
    let got = idx
        .top_k_join(&g, k, 1e-6, JoinStrategy::InvertedLists)
        .unwrap();
    let want = top_k_pairs(&truth, k);
    // Compare the rank-r scores within eps (exact pair sets can differ on
    // eps-ties, score sequences cannot drift).
    for (pair, &(i, j)) in got.iter().zip(&want) {
        let true_score = truth.get(i as usize, j as usize);
        assert!(
            (pair.score - true_score).abs() <= EPS,
            "{pair:?} vs true rank-mate score {true_score}"
        );
    }
}

#[test]
fn join_strategies_and_topk_consistent_on_random_graph() {
    let g = watts_strogatz(200, 3, 0.2, 5).unwrap();
    let idx = build(&g, 3);
    let tau = 0.08;
    let a = idx
        .threshold_join(&g, tau, JoinStrategy::PerSource)
        .unwrap();
    let b = idx
        .threshold_join(&g, tau, JoinStrategy::InvertedLists)
        .unwrap();
    // Counts may differ on the slack band; overlap must dominate.
    let keys = |ps: &[sling_simrank::core::join::JoinPair]| {
        ps.iter()
            .map(|p| (p.u.0, p.v.0))
            .collect::<std::collections::BTreeSet<_>>()
    };
    let (ka, kb) = (keys(&a), keys(&b));
    let shared = ka.intersection(&kb).count();
    assert!(
        shared * 10 >= ka.len().max(kb.len()) * 8,
        "strategies overlap too little: {} shared of {}/{}",
        shared,
        ka.len(),
        kb.len()
    );
}

#[test]
fn dynamic_wrapper_tracks_fresh_index_through_churn() {
    let g = barabasi_albert(120, 3, 11).unwrap();
    let mut cfg = DynamicConfig::new(SlingConfig::from_epsilon(C, EPS).with_seed(4));
    cfg.policy = StalePolicy::Rebuild;
    cfg.rebuild_fraction = f64::INFINITY;
    let mut dynamic = DynamicSling::new(&g, cfg).unwrap();
    // Apply a burst of churn.
    for i in 0..10u32 {
        dynamic.insert_edge(NodeId(i), NodeId(100 + i % 20)).ok();
        dynamic.remove_edge(NodeId(i + 1), NodeId(i)).ok();
    }
    // Fresh ground truth on the mutated graph.
    let current = dynamic.current_graph().clone();
    let truth = power_simrank(&current, C, 50);
    for (u, v) in [(0u32, 100u32), (5, 110), (50, 60)] {
        let got = dynamic.single_pair(NodeId(u), NodeId(v)).unwrap();
        let want = truth.get(u as usize, v as usize);
        assert!((got - want).abs() <= EPS, "({u},{v}): {got} vs {want}");
    }
}

#[test]
fn cached_disk_and_memory_paths_agree() {
    let g = barabasi_albert(150, 3, 13).unwrap();
    let idx = build(&g, 5);
    let dir = std::env::temp_dir().join(format!("sling_ext_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let store = DiskHpStore::create(&idx, dir.join("hp.bin")).unwrap();
    let mut cache = CachedQueries::new(&idx, 256);
    let sc = C.sqrt();
    let theta = idx.config().theta;
    // Enhancement entries are not persisted in the disk store, so disk
    // answers may differ from enhanced in-memory answers by at most the
    // enhancement's improvement margin (bounded by the Lemma 7 slack).
    let slack = 2.0 * sc * theta / ((1.0 - sc) * (1.0 - C)) + 1e-9;
    for i in 0..40u32 {
        let (u, v) = (NodeId(i * 3 % 150), NodeId((i * 7 + 1) % 150));
        let memory = idx.single_pair(&g, u, v);
        let cached = cache.single_pair(&g, u, v);
        let disk = store.single_pair(&g, u, v).unwrap();
        assert!((memory - cached).abs() < 1e-12);
        assert!(
            (memory - disk).abs() <= slack,
            "({u:?},{v:?}): memory {memory} vs disk {disk}"
        );
    }
}

#[test]
fn serialized_index_answers_extension_queries_identically() {
    let g = watts_strogatz(100, 2, 0.1, 9).unwrap();
    let idx = build(&g, 6);
    let restored = SlingIndex::from_bytes(&g, &idx.to_bytes()).unwrap();
    for u in [NodeId(0), NodeId(33), NodeId(99)] {
        assert_eq!(idx.top_k_heap(&g, u, 10), restored.top_k_heap(&g, u, 10));
    }
    let a = idx
        .threshold_join(&g, 0.05, JoinStrategy::InvertedLists)
        .unwrap();
    let b = restored
        .threshold_join(&g, 0.05, JoinStrategy::InvertedLists)
        .unwrap();
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!((x.u, x.v), (y.u, y.v));
        assert_eq!(x.score, y.score);
    }
}
