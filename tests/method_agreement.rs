//! All four SimRank methods of the workspace agree on ground truth, and
//! the paper's qualitative claims hold: SLING is the most accurate, the
//! linearization method offers no worst-case guarantee, and the top-k
//! rankings of accurate methods coincide.

use sling_simrank::baselines::linearize::{Linearize, LinearizeConfig};
use sling_simrank::baselines::monte_carlo::McIndex;
use sling_simrank::baselines::{
    grouped_errors, max_error, power_simrank, top_k_precision, DenseMatrix, McSqrtIndex,
};
use sling_simrank::core::{SlingConfig, SlingIndex};
use sling_simrank::graph::generators::barabasi_albert;
use sling_simrank::graph::{DiGraph, NodeId};

const C: f64 = 0.6;

fn sling_matrix(g: &DiGraph, eps: f64, seed: u64) -> DenseMatrix {
    let idx = SlingIndex::build(
        g,
        &SlingConfig::from_epsilon(C, eps)
            .with_seed(seed)
            .with_exact_diagonal(false),
    )
    .unwrap();
    let n = g.num_nodes();
    let mut m = DenseMatrix::zeros(n);
    for u in g.nodes() {
        let row = idx.single_source(g, u);
        m.row_mut(u.index()).copy_from_slice(&row);
    }
    m
}

#[test]
fn figure5_shape_sling_beats_baselines_on_max_error() {
    let g = barabasi_albert(150, 2, 31).unwrap();
    let truth = power_simrank(&g, C, 60);
    let eps = 0.05;

    let s = sling_matrix(&g, eps, 1);
    let sling_err = max_error(&truth, &s);
    assert!(
        sling_err <= eps,
        "SLING must respect its bound: {sling_err}"
    );

    // MC with a modest walk budget: valid but noisier than SLING.
    let mc = McIndex::build(&g, C, 400, 10, 2);
    let mut mcm = DenseMatrix::zeros(g.num_nodes());
    for u in g.nodes() {
        let row = mc.single_source(u);
        mcm.row_mut(u.index()).copy_from_slice(&row);
    }
    let mc_err = max_error(&truth, &mcm);
    assert!(
        sling_err < mc_err,
        "SLING ({sling_err}) should beat MC-400 ({mc_err})"
    );
}

#[test]
fn mc_sqrt_walks_estimate_matches_truth() {
    let g = barabasi_albert(60, 2, 5).unwrap();
    let truth = power_simrank(&g, C, 60);
    let idx = McSqrtIndex::build(&g, C, 3000, 9);
    for (u, v) in [(0u32, 1u32), (5, 20), (33, 34), (10, 59)] {
        let est = idx.single_pair(NodeId(u), NodeId(v));
        let t = truth.get(u as usize, v as usize);
        assert!((est - t).abs() <= 0.05, "({u},{v}): est {est} truth {t}");
    }
}

#[test]
fn linearize_exact_mode_agrees_with_truth_and_sampled_mode_roughly() {
    let g = barabasi_albert(80, 2, 6).unwrap();
    let truth = power_simrank(&g, C, 80);
    let exact = Linearize::build(
        &g,
        &LinearizeConfig {
            exact_coefficients: true,
            t: 25,
            sweeps: 30,
            ..LinearizeConfig::paper_defaults(C)
        },
    );
    let mut worst = 0.0f64;
    for u in g.nodes() {
        let row = exact.single_source(&g, u);
        for v in g.nodes() {
            worst = worst.max((row[v.index()] - truth.get(u.index(), v.index())).abs());
        }
    }
    assert!(worst < 0.01, "exact-coefficient linearization err {worst}");
}

#[test]
fn figure7_shape_topk_precision_is_high_for_sling() {
    let g = barabasi_albert(150, 3, 41).unwrap();
    let truth = power_simrank(&g, C, 60);
    let s = sling_matrix(&g, 0.025, 3);
    for k in [50, 100, 200] {
        let p = top_k_precision(&truth, &s, k);
        assert!(p >= 0.9, "top-{k} precision {p} too low");
    }
}

#[test]
fn figure6_shape_grouped_errors_are_small_for_sling() {
    let g = barabasi_albert(120, 2, 17).unwrap();
    let truth = power_simrank(&g, C, 60);
    let s = sling_matrix(&g, 0.025, 4);
    let ge = grouped_errors(&truth, &s, false);
    // Every group must respect the global bound; the important pairs
    // (S1) should be far below it.
    assert!(ge.s1 <= 0.025 && ge.s2 <= 0.025 && ge.s3 <= 0.025);
    if ge.counts[0] > 0 {
        assert!(ge.s1 <= 0.01, "S1 average error {} too large", ge.s1);
    }
}
