//! Property-based tests over the extension modules: top-k/join/dynamic
//! invariants, binary-format fuzzing, and graph-transformation laws.

use proptest::prelude::*;
use sling_simrank::core::dynamic::{DynamicConfig, DynamicSling, StalePolicy};
use sling_simrank::core::join::JoinStrategy;
use sling_simrank::core::{SlingConfig, SlingIndex};
use sling_simrank::graph::transform::{induced_subgraph, k_core, largest_wcc, transpose};
use sling_simrank::graph::traversal::{bfs_distances, Direction, UNREACHABLE};
use sling_simrank::graph::{binfmt, DiGraph, GraphBuilder, NodeId};

const C: f64 = 0.6;

fn arb_graph() -> impl Strategy<Value = DiGraph> {
    (2usize..=14).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32);
        proptest::collection::vec(edge, 0..40).prop_map(move |edges| {
            let mut b = GraphBuilder::with_nodes(n);
            for (u, v) in edges {
                b.add_edge(u, v);
            }
            b.build().unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    /// Binary graph format: decode(encode(g)) is structurally identical,
    /// and any single-byte corruption either errors or decodes to a valid
    /// graph (never panics, never produces a malformed structure).
    #[test]
    fn binfmt_roundtrip_and_corruption(g in arb_graph(), flip in 0usize..4096, bit in 0u8..8) {
        let bytes = binfmt::to_bytes(&g);
        let back = binfmt::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back.num_nodes(), g.num_nodes());
        prop_assert!(back.edges().eq(g.edges()));
        prop_assert!(back.validate());

        let mut corrupt = bytes.clone();
        if !corrupt.is_empty() {
            let pos = flip % corrupt.len();
            corrupt[pos] ^= 1 << bit;
            if let Ok(decoded) = binfmt::from_bytes(&corrupt) {
                prop_assert!(decoded.validate(), "corrupted decode must stay well-formed");
            }
        }
    }

    /// Top-k is a prefix of the full single-source ranking: scores are
    /// descending and every omitted node scores no higher than the floor.
    #[test]
    fn topk_is_a_true_prefix(g in arb_graph(), seed in 0u64..500, k in 1usize..6) {
        let idx = SlingIndex::build(&g, &SlingConfig::from_epsilon(C, 0.1).with_seed(seed)).unwrap();
        for u in g.nodes() {
            let top = idx.top_k_heap(&g, u, k);
            prop_assert!(top.windows(2).all(|w| w[0].1 >= w[1].1));
            prop_assert!(top.len() <= k);
            let scores = idx.single_source(&g, u);
            let floor = top.last().map(|&(_, s)| s).unwrap_or(0.0);
            for v in g.nodes() {
                if v != u && !top.iter().any(|&(w, _)| w == v) {
                    prop_assert!(scores[v.index()] <= floor + 1e-12);
                }
            }
            // And heap agrees with the sort-based selection exactly.
            prop_assert_eq!(top, idx.top_k(&g, u, k));
        }
    }

    /// Join output is canonical: u < v, descending scores, no duplicates,
    /// and every emitted score is >= tau.
    #[test]
    fn join_output_is_canonical(g in arb_graph(), seed in 0u64..500) {
        let idx = SlingIndex::build(&g, &SlingConfig::from_epsilon(C, 0.1).with_seed(seed)).unwrap();
        let tau = 0.05;
        for strategy in [JoinStrategy::PerSource, JoinStrategy::InvertedLists] {
            let pairs = idx.threshold_join(&g, tau, strategy).unwrap();
            prop_assert!(pairs.iter().all(|p| p.u < p.v));
            prop_assert!(pairs.iter().all(|p| p.score >= tau && p.score <= 1.0));
            prop_assert!(pairs.windows(2).all(|w| w[0].score >= w[1].score));
            let mut keys: Vec<_> = pairs.iter().map(|p| (p.u.0, p.v.0)).collect();
            let before = keys.len();
            keys.sort_unstable();
            keys.dedup();
            prop_assert_eq!(keys.len(), before);
        }
    }

    /// Dynamic wrapper under Rebuild policy always matches a from-scratch
    /// index on the mutated graph (same seed => identical answers).
    #[test]
    fn dynamic_rebuild_equals_fresh_build(
        g in arb_graph(),
        seed in 0u64..200,
        updates in proptest::collection::vec((0u32..14, 0u32..14, proptest::bool::ANY), 0..6),
    ) {
        let base = SlingConfig::from_epsilon(C, 0.1).with_seed(seed);
        let mut cfg = DynamicConfig::new(base.clone());
        cfg.policy = StalePolicy::Rebuild;
        cfg.rebuild_fraction = f64::INFINITY;
        let mut dynamic = DynamicSling::new(&g, cfg).unwrap();
        let n = g.num_nodes() as u32;
        for (u, v, insert) in updates {
            let (u, v) = (NodeId(u % n), NodeId(v % n));
            if insert {
                dynamic.insert_edge(u, v).unwrap();
            } else {
                dynamic.remove_edge(u, v).unwrap();
            }
        }
        let current = dynamic.current_graph().clone();
        let fresh = SlingIndex::build(&current, &base).unwrap();
        for u in current.nodes() {
            for v in current.nodes() {
                prop_assert_eq!(
                    dynamic.single_pair(u, v).unwrap(),
                    fresh.single_pair(&current, u, v)
                );
            }
        }
    }

    /// Transpose: distances along Out in g equal distances along In in gᵀ.
    #[test]
    fn transpose_swaps_directions(g in arb_graph(), s in 0u32..14) {
        let source = NodeId(s % g.num_nodes() as u32);
        let t = transpose(&g);
        prop_assert_eq!(
            bfs_distances(&g, source, Direction::Out),
            bfs_distances(&t, source, Direction::In)
        );
        prop_assert_eq!(g.num_edges(), t.num_edges());
    }

    /// Largest WCC: all kept nodes are mutually reachable undirected, and
    /// the component is at least as large as any other component.
    #[test]
    fn largest_wcc_is_connected(g in arb_graph()) {
        let wcc = largest_wcc(&g);
        let sub = &wcc.graph;
        if sub.num_nodes() > 0 {
            let d = bfs_distances(sub, NodeId(0), Direction::Both);
            prop_assert!(d.iter().all(|&x| x != UNREACHABLE), "wcc not connected");
        }
        prop_assert!(sub.num_nodes() <= g.num_nodes());
    }

    /// k-core: every surviving node has total degree >= k inside the core.
    #[test]
    fn k_core_degree_invariant(g in arb_graph(), k in 0usize..5) {
        let core = k_core(&g, k).graph;
        for v in core.nodes() {
            prop_assert!(core.in_degree(v) + core.out_degree(v) >= k);
        }
    }

    /// Induced subgraph never invents edges and preserves endpoints.
    #[test]
    fn induced_subgraph_sound(g in arb_graph(), keep in proptest::collection::vec(0u32..14, 0..10)) {
        let keep: Vec<NodeId> = keep.into_iter().map(NodeId).collect();
        let sub = induced_subgraph(&g, &keep);
        for (u, v) in sub.graph.edges() {
            let (ou, ov) = (sub.original[u.index()], sub.original[v.index()]);
            prop_assert!(g.has_edge(ou, ov), "invented edge ({ou:?},{ov:?})");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        ..ProptestConfig::default()
    })]

    /// SLING index binary format: decode(encode) answers identically, and
    /// single-byte corruption never panics — it errors or yields an index
    /// whose answers are still finite probabilities.
    #[test]
    fn index_format_roundtrip_and_corruption(
        g in arb_graph(),
        seed in 0u64..200,
        flip in 0usize..1 << 16,
        bit in 0u8..8,
    ) {
        let idx = SlingIndex::build(&g, &SlingConfig::from_epsilon(C, 0.1).with_seed(seed)).unwrap();
        let bytes = idx.to_bytes();
        let back = SlingIndex::from_bytes(&g, &bytes).unwrap();
        for u in g.nodes() {
            for v in g.nodes() {
                prop_assert_eq!(idx.single_pair(&g, u, v), back.single_pair(&g, u, v));
            }
        }

        let mut corrupt = bytes.clone();
        if !corrupt.is_empty() {
            let pos = flip % corrupt.len();
            corrupt[pos] ^= 1 << bit;
            if let Ok(decoded) = SlingIndex::from_bytes(&g, &corrupt) {
                // Corruption in a float payload can survive decoding; the
                // query path must still produce clamped finite scores.
                let u = NodeId(0);
                for v in g.nodes() {
                    let s = decoded.single_pair(&g, u, v);
                    prop_assert!(s.is_finite() && (0.0..=1.0).contains(&s), "score {s}");
                }
            }
        }

        // Truncations must always be rejected.
        prop_assert!(SlingIndex::from_bytes(&g, &bytes[..bytes.len() / 2]).is_err());
        prop_assert!(SlingIndex::from_bytes(&g, &[]).is_err());
    }
}
