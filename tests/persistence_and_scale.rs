//! Integration tests for the operational paths: persistence, parallel
//! construction, out-of-core construction, and disk-resident querying on
//! larger graphs than the unit tests use.

use sling_simrank::core::out_of_core::{build_out_of_core, DiskHpStore, OutOfCoreConfig};
use sling_simrank::core::{SlingConfig, SlingIndex};
use sling_simrank::graph::generators::{barabasi_albert, rmat, RmatConfig};
use sling_simrank::graph::NodeId;

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sling_it_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn serial_parallel_and_out_of_core_builds_are_identical() {
    let g = rmat(11, 12_000, RmatConfig::default(), 8).unwrap();
    let config = SlingConfig::from_epsilon(0.6, 0.1).with_seed(5);
    let serial = SlingIndex::build(&g, &config).unwrap();
    let parallel = SlingIndex::build(&g, &config.clone().with_threads(3)).unwrap();
    let ooc = build_out_of_core(
        &g,
        &config,
        &OutOfCoreConfig {
            buffer_bytes: 64 * 1024,
            temp_dir: tmp("ooc_runs"),
        },
    )
    .unwrap();
    assert_eq!(serial.correction_factors(), parallel.correction_factors());
    assert_eq!(serial.correction_factors(), ooc.correction_factors());
    for v in [0u32, 99, 2047, 1000] {
        let a: Vec<_> = serial.stored_entries(NodeId(v)).collect();
        let b: Vec<_> = parallel.stored_entries(NodeId(v)).collect();
        let c: Vec<_> = ooc.stored_entries(NodeId(v)).collect();
        assert_eq!(a, b, "parallel mismatch at node {v}");
        assert_eq!(a, c, "out-of-core mismatch at node {v}");
    }
}

#[test]
fn save_load_disk_store_agree_on_larger_graph() {
    let g = barabasi_albert(1000, 3, 12).unwrap();
    let config = SlingConfig::from_epsilon(0.6, 0.05)
        .with_seed(9)
        .with_enhancement(true);
    let idx = SlingIndex::build(&g, &config).unwrap();

    let idx_path = tmp("index.bin");
    idx.save(&idx_path).unwrap();
    let loaded = SlingIndex::load(&g, &idx_path).unwrap();

    let store_path = tmp("hp.bin");
    let store = DiskHpStore::create(&idx, &store_path).unwrap();

    for (u, v) in [(0u32, 1u32), (17, 940), (500, 501), (999, 0), (3, 3)] {
        let a = idx.single_pair(&g, NodeId(u), NodeId(v));
        let b = loaded.single_pair(&g, NodeId(u), NodeId(v));
        assert_eq!(a, b, "persisted index disagrees at ({u},{v})");
        // The disk store persists the §5.3 marks along with everything
        // else, so it answers bit-identically to the enhanced in-memory
        // index.
        let c = store.single_pair(&g, NodeId(u), NodeId(v)).unwrap();
        assert_eq!(a, c, "disk store disagrees at ({u},{v})");
    }
    std::fs::remove_file(idx_path).ok();
    std::fs::remove_file(store_path).ok();
}

#[test]
fn index_rebuild_with_same_seed_is_bitwise_stable_across_processes() {
    // Determinism claim: same seed + same graph => same bytes.
    let g = barabasi_albert(300, 2, 77).unwrap();
    let config = SlingConfig::from_epsilon(0.6, 0.1).with_seed(123);
    let a = SlingIndex::build(&g, &config).unwrap().to_bytes();
    let b = SlingIndex::build(&g, &config).unwrap().to_bytes();
    assert_eq!(a, b);
}

#[test]
fn medium_graph_smoke_build_and_query() {
    // A quick sanity pass at the scale the benchmark harness uses.
    let g = rmat(13, 50_000, RmatConfig::default(), 3).unwrap();
    let config = SlingConfig::from_epsilon(0.6, 0.2).with_seed(2);
    let idx = SlingIndex::build(&g, &config).unwrap();
    assert!(idx.stats().entries_stored > g.num_nodes()); // at least step-0 entries
    let scores = idx.single_source(&g, NodeId(42));
    assert_eq!(scores.len(), g.num_nodes());
    assert_eq!(scores[42], 1.0);
    assert!(scores.iter().all(|&s| (0.0..=1.0).contains(&s)));
}
