//! Codec and `SLNGIDX2` round-trip properties: v1 ↔ v2 conversion is
//! lossless, per-block encode/decode survives adversarial run shapes
//! (max-delta ids, single-entry runs, owner boundaries), and mutated or
//! truncated v2 images are rejected or answered sanely — mirroring the
//! v1 corruption properties in `backend_equivalence.rs`.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use proptest::collection::vec;
use proptest::prelude::*;
use sling_simrank::core::codec::block::{decode_block, encode_block, run_starts, DecodedBlock};
use sling_simrank::core::codec::CompressOptions;
use sling_simrank::core::{inspect_bytes, FormatVersion, SharedEngine, SlingConfig, SlingIndex};
use sling_simrank::graph::generators::{barabasi_albert, erdos_renyi_directed};
use sling_simrank::graph::{DiGraph, NodeId};

const C: f64 = 0.6;

static FILE_COUNTER: AtomicU64 = AtomicU64::new(0);

fn tmpfile(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sling_codec_rt_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!(
        "{tag}_{}.slng",
        FILE_COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

fn arb_graph() -> impl Strategy<Value = DiGraph> {
    (0usize..2, 20usize..=60, 2usize..5, 0u64..1000).prop_map(|(kind, n, k, seed)| {
        if kind == 0 {
            erdos_renyi_directed(n, n * k, seed).unwrap()
        } else {
            barabasi_albert(n, k, seed).unwrap()
        }
    })
}

/// An arbitrary well-formed block: a list of runs, each with a step, an
/// owner delta (so adjacent runs may share steps across owners), and a
/// strictly increasing node set that may include ids near `u32::MAX`.
#[allow(clippy::type_complexity)]
fn arb_block() -> impl Strategy<Value = (Vec<u16>, Vec<u32>, Vec<f64>, Vec<u32>)> {
    vec(
        (
            0u16..40,            // step
            proptest::bool::ANY, // new owner?
            1usize..10,          // run length
            0u32..1 << 30,       // first node
            0u32..3,             // value family selector
        ),
        1..30,
    )
    .prop_map(|runs| {
        let mut steps = Vec::new();
        let mut nodes = Vec::new();
        let mut values = Vec::new();
        let mut owners = Vec::new();
        let mut owner = 0u32;
        let mut last_step_of_owner: i32 = -1;
        for (step, new_owner, len, first, family) in runs {
            if new_owner || i32::from(step) <= last_step_of_owner {
                // Keep (owner, step) keys legal: steps ascend per owner.
                owner += 1;
            }
            last_step_of_owner = i32::from(step);
            // Strictly increasing nodes, with an occasional jump to the
            // top of the id space to exercise max-delta varints.
            let mut node = first;
            for j in 0..len {
                if j + 1 == len && family == 2 {
                    node = node.max(u32::MAX - 1);
                }
                steps.push(step);
                nodes.push(node);
                values.push(match family {
                    0 => 0.5,                       // repeated: dict fodder
                    1 => 1.0 / (node as f64 + 3.0), // distinct full-mantissa
                    _ => 1.0,                       // exactly representable
                });
                owners.push(owner);
                node = node.saturating_add(1 + (node % 7)).max(node + 1);
            }
        }
        (steps, nodes, values, owners)
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        ..ProptestConfig::default()
    })]

    /// Any well-formed block round-trips bit-exactly through the
    /// lossless encoder, and within quantization error through the lossy
    /// one.
    #[test]
    fn arbitrary_blocks_round_trip((steps, nodes, values, owners) in arb_block()) {
        let starts = run_starts(&owners, &steps);
        for quantize in [false, true] {
            let mut bytes = Vec::new();
            encode_block(&steps, &nodes, &values, &starts, quantize, &mut bytes);
            let mut block = DecodedBlock::default();
            decode_block(&bytes, steps.len(), &mut block).unwrap();
            prop_assert_eq!(&block.steps, &steps);
            prop_assert_eq!(&block.nodes, &nodes);
            if quantize {
                for (a, b) in values.iter().zip(&block.values) {
                    prop_assert!((a - b).abs() <= 0.5 / (u32::MAX as f64));
                }
            } else {
                for (a, b) in values.iter().zip(&block.values) {
                    prop_assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
    }

    /// Mutating any single byte of an encoded block makes decode either
    /// error or produce a same-length column set — never panic, never a
    /// silent length change.
    #[test]
    fn mutated_blocks_never_panic(
        (steps, nodes, values, owners) in arb_block(),
        flip in 0usize..1 << 16,
        bit in 0u8..8,
    ) {
        let starts = run_starts(&owners, &steps);
        let mut bytes = Vec::new();
        encode_block(&steps, &nodes, &values, &starts, false, &mut bytes);
        let pos = flip % bytes.len();
        bytes[pos] ^= 1 << bit;
        let mut block = DecodedBlock::default();
        if decode_block(&bytes, steps.len(), &mut block).is_ok() {
            prop_assert_eq!(block.steps.len(), steps.len());
            prop_assert_eq!(block.nodes.len(), steps.len());
            prop_assert_eq!(block.values.len(), steps.len());
        }
    }

    /// v1 → v2 → decode and v2 → v1 → decode both reproduce the index
    /// bit-for-bit across the §5.2/§5.3 feature matrix and across block
    /// sizes that force runs to straddle block boundaries.
    #[test]
    fn v1_v2_conversion_is_lossless(
        g in arb_graph(),
        seed in 0u64..500,
        space_reduction in proptest::bool::ANY,
        enhance in proptest::bool::ANY,
        block_entries in 1usize..200,
    ) {
        let config = SlingConfig::from_epsilon(C, 0.1)
            .with_seed(seed)
            .with_space_reduction(space_reduction)
            .with_enhancement(enhance);
        let idx = SlingIndex::build(&g, &config).unwrap();
        let opts = CompressOptions { block_entries, quantize_values: false };

        // v1 bytes -> decode -> v2 bytes -> decode -> v1 bytes: the
        // serialized images (which capture every index component,
        // bit-for-bit) must be identical.
        let v1 = idx.to_bytes();
        let from_v1 = SlingIndex::decode(&v1).unwrap();
        let v2 = from_v1.to_bytes_v2(&opts);
        let from_v2 = SlingIndex::from_bytes(&g, &v2).unwrap();
        prop_assert_eq!(&v1, &from_v2.to_bytes(), "v1 -> v2 -> v1 changed bytes");

        // The inspect surface agrees with the real sizes.
        let info = inspect_bytes(&v2).unwrap();
        prop_assert_eq!(info.version, FormatVersion::V2);
        prop_assert_eq!(info.total_bytes, v2.len());
        prop_assert_eq!(info.entries, idx.stats().entries_stored);
        prop_assert!(info.values_exact);
    }

    /// v1 → v3 → v1 reproduces the index bit-for-bit across the same
    /// feature/block-size matrix — the `SLNGIDX3` mirror of the v2
    /// property, exercising the global value dictionary and the varint
    /// block directory.
    #[test]
    fn v1_v3_conversion_is_lossless(
        g in arb_graph(),
        seed in 0u64..500,
        space_reduction in proptest::bool::ANY,
        enhance in proptest::bool::ANY,
        block_entries in 1usize..200,
    ) {
        let config = SlingConfig::from_epsilon(C, 0.1)
            .with_seed(seed)
            .with_space_reduction(space_reduction)
            .with_enhancement(enhance);
        let idx = SlingIndex::build(&g, &config).unwrap();
        let opts = CompressOptions { block_entries, quantize_values: false };

        let v1 = idx.to_bytes();
        let from_v1 = SlingIndex::decode(&v1).unwrap();
        let v3 = from_v1.to_bytes_v3(&opts);
        let from_v3 = SlingIndex::from_bytes(&g, &v3).unwrap();
        prop_assert_eq!(&v1, &from_v3.to_bytes(), "v1 -> v3 -> v1 changed bytes");

        let info = inspect_bytes(&v3).unwrap();
        prop_assert_eq!(info.version, FormatVersion::V3);
        prop_assert_eq!(info.total_bytes, v3.len());
        prop_assert_eq!(info.entries, idx.stats().entries_stored);
        prop_assert!(info.values_exact);
        // v3 counts its aux sections (global dict + varint directory)
        // inside the payload, honestly.
        prop_assert!(info.payload_bytes >= info.directory_bytes + info.global_dict_bytes);
    }
}

/// Shared corpus for the v2 mutation properties: one valid compressed
/// index (small blocks so the directory is non-trivial).
fn mutation_corpus() -> &'static (DiGraph, Vec<u8>) {
    static CORPUS: OnceLock<(DiGraph, Vec<u8>)> = OnceLock::new();
    CORPUS.get_or_init(|| {
        let g = barabasi_albert(40, 2, 9).unwrap();
        let config = SlingConfig::from_epsilon(C, 0.1)
            .with_seed(4)
            .with_enhancement(true);
        let idx = SlingIndex::build(&g, &config).unwrap();
        let bytes = idx.to_bytes_v2(&CompressOptions {
            block_entries: 32,
            quantize_values: false,
        });
        (g, bytes)
    })
}

/// v3 mirror of [`mutation_corpus`]: small blocks make the varint byte
/// directory, the global value dictionary, and the per-block value
/// planes all non-trivial targets for single-byte corruption.
fn mutation_corpus_v3() -> &'static (DiGraph, Vec<u8>) {
    static CORPUS: OnceLock<(DiGraph, Vec<u8>)> = OnceLock::new();
    CORPUS.get_or_init(|| {
        let g = barabasi_albert(40, 2, 9).unwrap();
        let config = SlingConfig::from_epsilon(C, 0.1)
            .with_seed(4)
            .with_enhancement(true);
        let idx = SlingIndex::build(&g, &config).unwrap();
        let bytes = idx.to_bytes_v3(&CompressOptions {
            block_entries: 32,
            quantize_values: false,
        });
        (g, bytes)
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        ..ProptestConfig::default()
    })]

    /// Bit-flip any byte of a compressed index: the compressed mmap open
    /// either surfaces a `SlingError` or yields an engine whose answers
    /// are still finite probabilities. Nothing panics — the v2 mirror of
    /// the v1 property in `backend_equivalence.rs`.
    #[test]
    fn v2_mutation_errors_or_stays_sane(flip in 0usize..1 << 20, bit in 0u8..8) {
        let (g, bytes) = mutation_corpus();
        let mut corrupt = bytes.clone();
        let pos = flip % corrupt.len();
        corrupt[pos] ^= 1 << bit;
        let path = tmpfile("mut");
        std::fs::write(&path, &corrupt).unwrap();

        match SharedEngine::open_mmap_compressed(g, &path) {
            Err(e) => {
                let _ = e.to_string();
            }
            Ok(engine) => {
                for u in [NodeId(0), NodeId(17), NodeId(39)] {
                    match engine.single_source(g, u) {
                        Ok(scores) => {
                            prop_assert!(
                                scores.iter().all(|s| s.is_finite() && (0.0..=1.0).contains(s)),
                                "non-probability score after byte {pos} bit {bit}"
                            );
                        }
                        Err(e) => {
                            let _ = e.to_string();
                        }
                    }
                    let _ = engine.top_k(g, u, 4);
                    let _ = engine.single_pair(g, u, NodeId(1));
                }
            }
        }
        // The eager decoder must hold the same line: error or a fully
        // valid index, never a panic.
        match SlingIndex::from_bytes(g, &corrupt) {
            Ok(idx) => prop_assert!(idx.stats().entries_stored < 1 << 30),
            Err(e) => {
                let _ = e.to_string();
            }
        }
        std::fs::remove_file(&path).ok();
    }

    /// Any truncation of a v2 file is rejected at open.
    #[test]
    fn v2_truncation_always_rejected(cut_seed in 0usize..1 << 20) {
        let (g, bytes) = mutation_corpus();
        let cut = cut_seed % bytes.len(); // strictly shorter than full
        let path = tmpfile("trunc");
        std::fs::write(&path, &bytes[..cut]).unwrap();
        prop_assert!(
            SharedEngine::open_mmap_compressed(g, &path).is_err(),
            "cut at {cut} accepted"
        );
        prop_assert!(SlingIndex::from_bytes(g, &bytes[..cut]).is_err());
        std::fs::remove_file(&path).ok();
    }

    /// Bit-flip any byte of a `SLNGIDX3` image — value planes, the
    /// shared global dictionary, and the varint offset directory
    /// included: open errors or the engine keeps answering finite
    /// probabilities; nothing panics.
    #[test]
    fn v3_mutation_errors_or_stays_sane(flip in 0usize..1 << 20, bit in 0u8..8) {
        let (g, bytes) = mutation_corpus_v3();
        let mut corrupt = bytes.clone();
        let pos = flip % corrupt.len();
        corrupt[pos] ^= 1 << bit;
        let path = tmpfile("mut3");
        std::fs::write(&path, &corrupt).unwrap();

        match SharedEngine::open_mmap_compressed(g, &path) {
            Err(e) => {
                let _ = e.to_string();
            }
            Ok(engine) => {
                for u in [NodeId(0), NodeId(17), NodeId(39)] {
                    match engine.single_source(g, u) {
                        Ok(scores) => {
                            prop_assert!(
                                scores.iter().all(|s| s.is_finite() && (0.0..=1.0).contains(s)),
                                "non-probability score after byte {pos} bit {bit}"
                            );
                        }
                        Err(e) => {
                            let _ = e.to_string();
                        }
                    }
                    let _ = engine.top_k(g, u, 4);
                    let _ = engine.single_pair(g, u, NodeId(1));
                }
            }
        }
        match SlingIndex::from_bytes(g, &corrupt) {
            Ok(idx) => prop_assert!(idx.stats().entries_stored < 1 << 30),
            Err(e) => {
                let _ = e.to_string();
            }
        }
        std::fs::remove_file(&path).ok();
    }

    /// Any truncation of a v3 file is rejected at open.
    #[test]
    fn v3_truncation_always_rejected(cut_seed in 0usize..1 << 20) {
        let (g, bytes) = mutation_corpus_v3();
        let cut = cut_seed % bytes.len();
        let path = tmpfile("trunc3");
        std::fs::write(&path, &bytes[..cut]).unwrap();
        prop_assert!(
            SharedEngine::open_mmap_compressed(g, &path).is_err(),
            "cut at {cut} accepted"
        );
        prop_assert!(SlingIndex::from_bytes(g, &bytes[..cut]).is_err());
        std::fs::remove_file(&path).ok();
    }
}

/// Empty runs cannot be encoded (the encoder breaks runs so every run
/// holds ≥ 1 entry) and are rejected on decode; nodes with empty `H(v)`
/// simply contribute no entries to any block.
#[test]
fn empty_entry_sets_round_trip() {
    // A star graph gives many nodes tiny or empty stored sets under
    // space reduction.
    let mut edges = Vec::new();
    for i in 1..30u32 {
        edges.push((0u32, i));
    }
    let g = DiGraph::from_edges(30, edges.iter().copied());
    let config = SlingConfig::from_epsilon(C, 0.1)
        .with_seed(3)
        .with_space_reduction(true);
    let idx = SlingIndex::build(&g, &config).unwrap();
    for block_entries in [1usize, 4, 1024] {
        let opts = CompressOptions {
            block_entries,
            quantize_values: false,
        };
        let back = SlingIndex::from_bytes(&g, &idx.to_bytes_v2(&opts)).unwrap();
        assert_eq!(
            idx.to_bytes(),
            back.to_bytes(),
            "block_entries = {block_entries}"
        );
    }
}

/// The compression claims the ROADMAP makes, pinned: on a preferential-
/// attachment fixture the v2 lossless payload shrinks meaningfully, the
/// v3 lossless payload (global value dictionary) shrinks below it, and
/// quantization shrinks further still. (The ≤ 60% lossless CI gate runs
/// on the larger BA(2000, 4) fixture, where value repetition is higher;
/// this 600-node fixture lands a few points above it.)
#[test]
fn fixture_compression_ratios_hold() {
    let g = barabasi_albert(600, 4, 7).unwrap();
    let config = SlingConfig::from_epsilon(C, 0.1).with_seed(3);
    let idx = SlingIndex::build(&g, &config).unwrap();
    let raw = inspect_bytes(&idx.to_bytes()).unwrap();
    let lossless = inspect_bytes(&idx.to_bytes_v2(&CompressOptions::default())).unwrap();
    let quantized = inspect_bytes(&idx.to_bytes_v2(&CompressOptions {
        quantize_values: true,
        ..CompressOptions::default()
    }))
    .unwrap();
    assert_eq!(raw.payload_bytes, raw.raw_payload_bytes);
    assert!(
        (lossless.compression_ratio()) <= 0.75,
        "v2 lossless ratio regressed: {}",
        lossless.compression_ratio()
    );
    assert!(
        (quantized.compression_ratio()) <= 0.60,
        "quantized ratio above the CI gate: {}",
        quantized.compression_ratio()
    );
    let v3_lossless = inspect_bytes(&idx.to_bytes_v3(&CompressOptions::default())).unwrap();
    let v3_quantized = inspect_bytes(&idx.to_bytes_v3(&CompressOptions {
        quantize_values: true,
        ..CompressOptions::default()
    }))
    .unwrap();
    assert!(
        (v3_lossless.compression_ratio()) <= 0.65,
        "v3 lossless ratio regressed: {}",
        v3_lossless.compression_ratio()
    );
    assert!(
        v3_lossless.compression_ratio() < lossless.compression_ratio(),
        "v3 lossless did not beat v2: {} vs {}",
        v3_lossless.compression_ratio(),
        lossless.compression_ratio()
    );
    assert!(
        v3_quantized.compression_ratio() < v3_lossless.compression_ratio(),
        "v3 quantized {} not below lossless {}",
        v3_quantized.compression_ratio(),
        v3_lossless.compression_ratio()
    );
}
