//! # sling-simrank
//!
//! Umbrella crate for the reproduction of *SLING: A Near-Optimal Index
//! Structure for SimRank* (Tian & Xiao, SIGMOD 2016).
//!
//! Re-exports the three library crates of the workspace:
//!
//! * [`graph`] — directed-graph substrate (CSR storage, generators, IO);
//! * [`core`] — the SLING index (√c-walks, correction factors, local-update
//!   hitting probabilities, single-pair and single-source queries);
//! * [`baselines`] — the competing methods the paper evaluates against
//!   (power iteration, Monte Carlo, linearization) plus accuracy metrics.
//!
//! See the `examples/` directory for runnable end-to-end scenarios and
//! `crates/bench` for the harness regenerating the paper's tables and
//! figures.

pub use sling_baselines as baselines;
pub use sling_core as core;
pub use sling_graph as graph;
