//! Quickstart: build a SLING index over a small collaboration-style
//! graph and answer single-pair and single-source SimRank queries.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use sling_simrank::core::{SlingConfig, SlingIndex};
use sling_simrank::graph::generators::barabasi_albert;
use sling_simrank::graph::NodeId;

fn main() {
    // A 2000-node preferential-attachment graph: a stand-in for a small
    // co-authorship network (heavy-tailed degrees, symmetric edges).
    let graph = barabasi_albert(2000, 3, 42).expect("valid generator config");
    println!(
        "graph: {} nodes, {} directed edges",
        graph.num_nodes(),
        graph.num_edges()
    );

    // Paper parameters: c = 0.6, worst-case error eps = 0.025 per score.
    let config = SlingConfig::from_epsilon(0.6, 0.025).with_seed(7);
    let start = std::time::Instant::now();
    let index = SlingIndex::build(&graph, &config).expect("config satisfies Theorem 1");
    println!(
        "index built in {:.2?}: {} HP entries, {} bytes, {} reduced nodes",
        start.elapsed(),
        index.stats().entries_stored,
        index.resident_bytes(),
        index.stats().reduced_nodes,
    );

    // Single-pair queries (Algorithm 3): O(1/eps) each.
    let (a, b, c_) = (NodeId(10), NodeId(11), NodeId(1500));
    let start = std::time::Instant::now();
    let s_ab = index.single_pair(&graph, a, b);
    let s_ac = index.single_pair(&graph, a, c_);
    println!(
        "s({a}, {b}) = {s_ab:.4}   s({a}, {c_}) = {s_ac:.4}   ({:.1?} for both)",
        start.elapsed()
    );

    // Single-source query (Algorithm 6) + top-k ranking.
    let start = std::time::Instant::now();
    let top = index.top_k(&graph, a, 5);
    println!("top-5 nodes most similar to {a} ({:.2?}):", start.elapsed());
    for (v, s) in top {
        println!("  {v:>6}  s = {s:.4}");
    }
}
