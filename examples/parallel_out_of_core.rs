//! §5.4 in action: parallel construction, out-of-core construction with
//! a bounded sort buffer, index persistence, and disk-resident querying.
//!
//! ```sh
//! cargo run --release --example parallel_out_of_core
//! ```

use sling_simrank::core::out_of_core::{build_out_of_core, DiskHpStore, OutOfCoreConfig};
use sling_simrank::core::{SlingConfig, SlingIndex};
use sling_simrank::graph::generators::rmat;
use sling_simrank::graph::generators::RmatConfig;
use sling_simrank::graph::NodeId;

fn main() {
    // A web-graph-like directed R-MAT graph.
    let graph = rmat(13, 60_000, RmatConfig::default(), 77).expect("valid config");
    println!(
        "graph: {} nodes, {} edges",
        graph.num_nodes(),
        graph.num_edges()
    );
    let config = SlingConfig::from_epsilon(0.6, 0.1).with_seed(9);

    // 1. Serial vs parallel construction: identical indexes.
    let start = std::time::Instant::now();
    let serial = SlingIndex::build(&graph, &config).expect("valid");
    let serial_time = start.elapsed();
    let start = std::time::Instant::now();
    let parallel = SlingIndex::build(&graph, &config.clone().with_threads(4)).expect("valid");
    let parallel_time = start.elapsed();
    assert_eq!(serial.correction_factors(), parallel.correction_factors());
    println!(
        "serial build {serial_time:.2?}, 4-thread build {parallel_time:.2?} (identical indexes)"
    );

    // 2. Out-of-core construction with a 1 MB sort buffer.
    let occ = OutOfCoreConfig::with_buffer(1 << 20);
    let start = std::time::Instant::now();
    let ooc = build_out_of_core(&graph, &config, &occ).expect("ooc build");
    println!(
        "out-of-core build (1MB buffer) {:.2?}; {} entries — matches in-memory: {}",
        start.elapsed(),
        ooc.stats().entries_stored,
        ooc.stats().entries_stored == serial.stats().entries_stored,
    );

    // 3. Persist the index and reload it.
    let idx_path = std::env::temp_dir().join("sling_example.idx");
    serial.save(&idx_path).expect("save");
    let loaded = SlingIndex::load(&graph, &idx_path).expect("load");
    let (u, v) = (NodeId(17), NodeId(4000));
    assert_eq!(
        serial.single_pair(&graph, u, v),
        loaded.single_pair(&graph, u, v)
    );
    println!(
        "index persisted to {} ({} bytes) and reloaded",
        idx_path.display(),
        std::fs::metadata(&idx_path).map(|m| m.len()).unwrap_or(0)
    );

    // 4. Disk-resident querying: only O(n) stays in memory.
    let hp_path = std::env::temp_dir().join("sling_example_hp.bin");
    let store = DiskHpStore::create(&serial, &hp_path).expect("store");
    let mem = serial.single_pair(&graph, u, v);
    let disk = store.single_pair(&graph, u, v).expect("disk query");
    println!(
        "disk store: {} resident bytes vs {} in-memory; s({u},{v}) = {disk:.5} (memory {mem:.5})",
        store.resident_bytes(),
        serial.resident_bytes()
    );
    assert!((mem - disk).abs() < 1e-12);
    std::fs::remove_file(idx_path).ok();
    std::fs::remove_file(hp_path).ok();
}
