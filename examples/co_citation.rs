//! Co-citation analysis — the scenario SimRank was designed for
//! (Jeh & Widom 2002): two papers are similar when they are cited by
//! similar papers.
//!
//! This example builds a layered synthetic citation DAG (papers cite
//! earlier papers, with topic-community structure), indexes it with
//! SLING, and shows that within-topic papers score far higher than
//! cross-topic ones. It also round-trips the graph through the SNAP
//! edge-list format to demonstrate the IO path a user would take with a
//! real citation dataset.
//!
//! ```sh
//! cargo run --release --example co_citation
//! ```

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use sling_simrank::core::{SlingConfig, SlingIndex};
use sling_simrank::graph::{edgelist, GraphBuilder, NodeId};

/// Papers per topic community and number of topics.
const PAPERS_PER_TOPIC: u32 = 300;
const TOPICS: u32 = 4;

fn main() {
    // Generate a citation DAG: paper i cites ~8 earlier papers, 90% from
    // its own topic, 10% from a random topic.
    let n = PAPERS_PER_TOPIC * TOPICS;
    let mut rng = SmallRng::seed_from_u64(2016);
    let mut builder = GraphBuilder::with_nodes(n as usize);
    for paper in 1..n {
        let topic = paper % TOPICS;
        for _ in 0..8 {
            let target_topic = if rng.random::<f64>() < 0.9 {
                topic
            } else {
                rng.random_range(0..TOPICS)
            };
            // Sample an earlier paper of the chosen topic.
            let pool = paper / TOPICS; // papers per topic published so far
            if pool == 0 {
                continue;
            }
            let idx = rng.random_range(0..pool);
            let cited = idx * TOPICS + target_topic;
            if cited < paper {
                // Edge direction: citing -> cited, so I(v) = papers citing v
                // and SimRank(v, w) measures co-citation similarity.
                builder.add_edge(paper, cited);
            }
        }
    }
    let graph = builder.build().expect("node ids fit");
    println!(
        "citation DAG: {} papers, {} citations",
        graph.num_nodes(),
        graph.num_edges()
    );

    // Round-trip through the SNAP edge-list format (what you would do
    // with a real dataset downloaded from snap.stanford.edu).
    let path = std::env::temp_dir().join("sling_citations.txt");
    edgelist::save_path(&graph, &path).expect("write edge list");
    let reloaded = edgelist::load_path(&path, edgelist::ParseOptions::default()).expect("parse");
    assert_eq!(reloaded.num_edges(), graph.num_edges());
    println!("edge list round-tripped through {}", path.display());

    let config = SlingConfig::from_epsilon(0.6, 0.05).with_seed(3);
    let index = SlingIndex::build(&graph, &config).expect("valid config");

    // Compare within-topic vs cross-topic similarity over a sample of
    // well-cited pairs (early papers accumulate citations).
    let mut within = Vec::new();
    let mut across = Vec::new();
    for a in 40..80u32 {
        for b in 40..80u32 {
            if a >= b {
                continue;
            }
            let s = index.single_pair(&graph, NodeId(a), NodeId(b));
            if a % TOPICS == b % TOPICS {
                within.push(s);
            } else {
                across.push(s);
            }
        }
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "average SimRank: same-topic pairs {:.4}  vs  cross-topic pairs {:.4}",
        avg(&within),
        avg(&across)
    );
    assert!(
        avg(&within) > 2.0 * avg(&across),
        "same-topic papers should be much more co-citation-similar"
    );

    // "Related papers" for one paper via single-source + top-k.
    let query = NodeId(44); // topic 44 % 4 = 0
    let related = index.top_k(&graph, query, 5);
    println!(
        "papers most related to paper {query} (topic {}):",
        query.0 % TOPICS
    );
    let mut same_topic = 0;
    for (v, s) in &related {
        println!("  paper {v:>5} (topic {})  s = {s:.4}", v.0 % TOPICS);
        if v.0 % TOPICS == query.0 % TOPICS {
            same_topic += 1;
        }
    }
    println!("{same_topic}/5 recommendations share the query's topic");
    std::fs::remove_file(path).ok();
}
