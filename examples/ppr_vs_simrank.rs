//! Hitting probabilities vs personalized PageRank (Appendix B).
//!
//! The paper's Appendix B contrasts SLING's hitting probabilities with
//! personalized PageRank: both are random-walk relevance measures, both
//! admit local-update computation, but they answer different questions —
//! PPR ranks nodes by where a walk *stops* (directional relevance),
//! SimRank by whether two walks *meet* (mutual structural similarity).
//! This example runs both on the same collaboration-style graph and
//! contrasts the rankings they induce around one node.
//!
//! ```sh
//! cargo run --release --example ppr_vs_simrank
//! ```

use sling_simrank::core::ppr::{ppr_from_source, ppr_to_target};
use sling_simrank::core::{SlingConfig, SlingIndex};
use sling_simrank::graph::generators::barabasi_albert;
use sling_simrank::graph::transform::transpose;
use sling_simrank::graph::NodeId;

const C: f64 = 0.6;

fn main() {
    let graph = barabasi_albert(3000, 3, 21).expect("valid generator");
    println!(
        "graph: {} nodes, {} edges",
        graph.num_nodes(),
        graph.num_edges()
    );
    let anchor = NodeId(100);

    // SimRank top-10 via the SLING index.
    let config = SlingConfig::from_epsilon(C, 0.025).with_seed(5);
    let index = SlingIndex::build(&graph, &config).expect("valid config");
    let simrank_top = index.top_k_heap(&graph, anchor, 10);

    // PPR over the same edge direction √c-walks use (in-edges), i.e. on
    // the transpose graph, with matching decay α = √c. Forward power
    // iteration here; `ppr_to_target` is the local-update (reverse push)
    // form shown afterwards.
    let alpha = C.sqrt();
    let gt = transpose(&graph);
    let ppr = ppr_from_source(&gt, alpha, anchor, 1e-12);
    let mut ppr_top: Vec<(usize, f64)> = ppr
        .iter()
        .copied()
        .enumerate()
        .filter(|&(v, s)| v != anchor.index() && s > 0.0)
        .collect();
    ppr_top.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    ppr_top.truncate(10);

    println!("\n{:^28} | {:^28}", "SimRank top-10", "PPR top-10");
    println!("{:-^28} | {:-^28}", "", "");
    for i in 0..10 {
        let left = simrank_top
            .get(i)
            .map(|&(v, s)| format!("{:>6}  s = {s:.4}", v.0))
            .unwrap_or_default();
        let right = ppr_top
            .get(i)
            .map(|&(v, s)| format!("{v:>6}  p = {s:.4}"))
            .unwrap_or_default();
        println!("{left:<28} | {right:<28}");
    }
    let overlap = simrank_top
        .iter()
        .filter(|(v, _)| ppr_top.iter().any(|&(w, _)| w == v.index()))
        .count();
    println!("\noverlap between the two top-10 lists: {overlap}/10");

    // The local-update form: ppr(·, anchor) for every source at once,
    // touching only the anchor's neighborhood (Algorithm 2's relative).
    let to_anchor = ppr_to_target(&gt, alpha, anchor, 1e-4);
    let touched = to_anchor.iter().filter(|&&p| p > 0.0).count();
    println!(
        "reverse push to the anchor touched {touched} of {} nodes (θ = 1e-4)",
        graph.num_nodes()
    );
}
