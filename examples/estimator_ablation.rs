//! §5.1 ablation: Algorithm 1 (fixed Chernoff sample count) vs
//! Algorithm 4 (adaptive two-phase estimation) for the correction
//! factors d_k.
//!
//! The adaptive estimator draws `O((µ + ε_d)/ε_d²·log(1/δ_d))` √c-walk
//! pairs instead of `O(1/ε_d²·log(1/δ_d))`; since µ (the average
//! SimRank among a node's in-neighbors) is usually tiny, the saving is
//! typically one to two orders of magnitude — this example measures it.
//!
//! ```sh
//! cargo run --release --example estimator_ablation
//! ```

use sling_simrank::core::correction::estimate_dk;
use sling_simrank::core::walk::{task_rng, WalkEngine};
use sling_simrank::graph::generators::barabasi_albert;

fn main() {
    let c = 0.6;
    let eps_d = 0.005; // the paper's setting
    let delta_d = 1e-6;
    let graph = barabasi_albert(400, 3, 7).expect("valid config");
    let engine = WalkEngine::new(&graph, c);

    let mut totals = [0u64; 2];
    let mut max_diff = 0.0f64;
    let start = std::time::Instant::now();
    for k in graph.nodes() {
        let mut results = [0.0f64; 2];
        for (slot, adaptive) in [(0, false), (1, true)] {
            let mut rng = task_rng(42, k.0 as u64);
            let est = estimate_dk(&graph, &engine, &mut rng, k, c, eps_d, delta_d, adaptive);
            totals[slot] += est.samples;
            results[slot] = est.d;
        }
        max_diff = max_diff.max((results[0] - results[1]).abs());
    }
    let elapsed = start.elapsed();

    let n = graph.num_nodes() as u64;
    println!(
        "correction factors for {} nodes (eps_d = {eps_d}, delta_d = {delta_d})",
        n
    );
    println!(
        "Algorithm 1 (fixed):    {:>12} walk pairs  ({} per node)",
        totals[0],
        totals[0] / n
    );
    println!(
        "Algorithm 4 (adaptive): {:>12} walk pairs  ({} per node)",
        totals[1],
        totals[1] / n
    );
    println!(
        "adaptive saving: {:.1}x fewer samples; estimates differ by at most {max_diff:.4} \
         (both are within eps_d of d_k w.h.p.)",
        totals[0] as f64 / totals[1] as f64
    );
    println!("total time: {elapsed:.2?}");
    assert!(totals[1] * 5 < totals[0], "adaptive should save >= 5x");
}
