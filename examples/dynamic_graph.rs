//! SimRank on a link-evolving graph with [`DynamicSling`].
//!
//! The SLING paper lists dynamic graphs as future work; this example
//! shows the workspace's incremental-maintenance wrapper absorbing a
//! stream of edge updates on a social-style graph while answering
//! queries under three staleness policies.
//!
//! ```sh
//! cargo run --release --example dynamic_graph
//! ```

use sling_simrank::core::dynamic::{DynamicConfig, DynamicSling, StalePolicy};
use sling_simrank::core::SlingConfig;
use sling_simrank::graph::generators::barabasi_albert;
use sling_simrank::graph::NodeId;

fn main() {
    let graph = barabasi_albert(1500, 3, 7).expect("valid generator");
    println!(
        "initial graph: {} nodes, {} edges",
        graph.num_nodes(),
        graph.num_edges()
    );

    let base = SlingConfig::from_epsilon(0.6, 0.05).with_seed(11);
    let mut cfg = DynamicConfig::new(base);
    cfg.policy = StalePolicy::MonteCarloFallback { delta: 1e-4 };
    cfg.rebuild_fraction = 0.05; // rebuild after 5% churn

    let start = std::time::Instant::now();
    let mut index = DynamicSling::new(&graph, cfg).expect("valid config");
    println!("initial build: {:.2?}", start.elapsed());

    // A follow/unfollow stream: each event retargets one edge.
    let events: Vec<(u32, u32, u32)> = (0..40)
        .map(|i| (i * 7 % 1500, (i * 13 + 1) % 1500, (i * 29 + 2) % 1500))
        .collect();

    let probe = (NodeId(10), NodeId(11));
    let mut served_fresh = 0u32;
    let mut served_fallback = 0u32;
    for (who, unfollow, follow) in events {
        index.remove_edge(NodeId(who), NodeId(unfollow)).ok();
        index.insert_edge(NodeId(who), NodeId(follow)).ok();

        // Interleave a query with every update, the latency-sensitive
        // pattern the staleness policies exist for.
        let tainted = index.is_tainted(probe.0) || index.is_tainted(probe.1);
        if tainted {
            served_fallback += 1;
        } else {
            served_fresh += 1;
        }
        let _ = index.single_pair(probe.0, probe.1).expect("nodes in range");
    }
    println!(
        "40 update+query rounds: {served_fresh} answered from the index, \
         {served_fallback} via Monte-Carlo fallback, {} updates pending",
        index.pending_updates()
    );

    // Force a rebuild and show the refreshed answer.
    let start = std::time::Instant::now();
    index.rebuild().expect("rebuild succeeds");
    println!(
        "explicit rebuild in {:.2?}; s({}, {}) = {:.4}",
        start.elapsed(),
        probe.0 .0,
        probe.1 .0,
        index.single_pair(probe.0, probe.1).unwrap()
    );

    // Growing the graph: new node joins and links.
    let newcomer = index.add_node();
    index.insert_edge(NodeId(0), newcomer).unwrap();
    index.insert_edge(NodeId(1), newcomer).unwrap();
    let s = index.single_pair(newcomer, NodeId(2)).unwrap();
    println!(
        "new node {} linked by 0 and 1: s({}, 2) = {s:.4} (Monte-Carlo, index never saw it)",
        newcomer.0, newcomer.0
    );
}
