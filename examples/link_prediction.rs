//! Link prediction on a social network — one of the applications the
//! paper's introduction motivates (Liben-Nowell & Kleinberg).
//!
//! Protocol: generate a planted-partition "friendship" graph (dense
//! communities plus sparse random ties), hide a random 10% of its
//! undirected edges, build SLING on the remaining graph, and check how
//! often the hidden neighbor appears in the top-k SimRank
//! recommendations of each probed node — versus a random-guess baseline.
//!
//! ```sh
//! cargo run --release --example link_prediction
//! ```

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use sling_simrank::core::{SlingConfig, SlingIndex};
use sling_simrank::graph::{GraphBuilder, NodeId};

const COMMUNITIES: u32 = 40;
const COMMUNITY_SIZE: u32 = 30;

fn main() {
    let n = (COMMUNITIES * COMMUNITY_SIZE) as usize;
    let mut rng = SmallRng::seed_from_u64(5);

    // Planted partition: ~8 intra-community and ~1 inter-community ties
    // per node. Community of node v is v / COMMUNITY_SIZE.
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for v in 0..n as u32 {
        let comm = v / COMMUNITY_SIZE;
        let base = comm * COMMUNITY_SIZE;
        for _ in 0..8 {
            let w = base + rng.random_range(0..COMMUNITY_SIZE);
            if w != v {
                edges.push((v.min(w), v.max(w)));
            }
        }
        let w = rng.random_range(0..n as u32);
        if w != v {
            edges.push((v.min(w), v.max(w)));
        }
    }
    edges.sort_unstable();
    edges.dedup();

    // Hide 10% of the undirected edges (deterministic shuffle).
    let mut keyed: Vec<(u64, (u32, u32))> = edges.into_iter().map(|e| (rng.random(), e)).collect();
    keyed.sort_unstable();
    let hidden_count = keyed.len() / 10;
    let hidden: Vec<(u32, u32)> = keyed[..hidden_count].iter().map(|&(_, e)| e).collect();
    let kept: Vec<(u32, u32)> = keyed[hidden_count..].iter().map(|&(_, e)| e).collect();

    let mut builder = GraphBuilder::with_nodes(n).symmetric(true);
    for (u, v) in &kept {
        builder.add_edge(*u, *v);
    }
    let graph = builder.build().expect("fits");
    println!(
        "training graph: {} nodes, {} edges ({} undirected edges hidden)",
        graph.num_nodes(),
        graph.num_edges(),
        hidden.len()
    );

    let config = SlingConfig::from_epsilon(0.6, 0.05).with_seed(1);
    let index = SlingIndex::build(&graph, &config).expect("valid config");

    // For each hidden edge (u, v): does v appear among u's top-k
    // non-neighbor recommendations?
    let k = 20usize;
    let probes = hidden.len().min(200);
    let mut hits = 0usize;
    for &(u, v) in hidden.iter().take(probes) {
        let ranked = index.top_k(&graph, NodeId(u), k + graph.out_degree(NodeId(u)));
        let recommended: Vec<u32> = ranked
            .into_iter()
            .map(|(w, _)| w.0)
            .filter(|&w| !graph.has_edge(NodeId(u), NodeId(w))) // new links only
            .take(k)
            .collect();
        if recommended.contains(&v) {
            hits += 1;
        }
    }
    let hit_rate = hits as f64 / probes as f64;
    // Random guessing hits with probability ~ k / n.
    let random_rate = k as f64 / n as f64;
    println!("hidden-link hit rate in top-{k}: {hit_rate:.3} over {probes} probes");
    println!("random-guess baseline:          {random_rate:.3}");
    println!("lift over random: {:.1}x", hit_rate / random_rate);
    assert!(
        hit_rate > 10.0 * random_rate,
        "SimRank should beat random guessing decisively on community graphs"
    );
}
