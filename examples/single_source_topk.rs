//! "Who to follow": single-source SimRank recommendations on a directed
//! social graph, comparing the two single-source strategies of §6 —
//! Algorithm 6 (on-the-fly inverted lists) vs Algorithm 3 once per node.
//!
//! ```sh
//! cargo run --release --example single_source_topk
//! ```

use sling_simrank::core::single_source::SingleSourceWorkspace;
use sling_simrank::core::{SlingConfig, SlingIndex};
use sling_simrank::graph::generators::{rmat, RmatConfig};
use sling_simrank::graph::NodeId;

fn main() {
    // Directed follower graph with hub structure.
    let graph = rmat(14, 120_000, RmatConfig::default(), 123).expect("valid config");
    println!(
        "graph: {} nodes, {} edges",
        graph.num_nodes(),
        graph.num_edges()
    );

    let config = SlingConfig::from_epsilon(0.6, 0.05).with_seed(4);
    let index = SlingIndex::build(&graph, &config).expect("valid config");
    println!(
        "index: {} entries, {} bytes",
        index.stats().entries_stored,
        index.resident_bytes()
    );

    // Pick a well-connected user.
    let user = (0..graph.num_nodes() as u32)
        .map(NodeId)
        .max_by_key(|&v| graph.in_degree(v))
        .expect("non-empty graph");

    // Algorithm 6.
    let mut ws = SingleSourceWorkspace::new();
    let mut scores = Vec::new();
    let start = std::time::Instant::now();
    index.single_source_with(&graph, &mut ws, user, &mut scores);
    let alg6 = start.elapsed();

    // Algorithm 3 once per node (the straightforward O(n/eps) strategy).
    let start = std::time::Instant::now();
    let via_pairs = index.single_source_via_pairs(&graph, user);
    let alg3 = start.elapsed();

    println!("single-source from node {user}: Algorithm 6 {alg6:.2?} vs Algorithm 3xN {alg3:.2?}");
    println!("(the paper's Figure 2 shows the same ordering: Algorithm 6 wins in practice)");

    // The two strategies agree within the scaled truncation slack of
    // Algorithm 6 (Lemma 12).
    let worst = scores
        .iter()
        .zip(&via_pairs)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("max disagreement between strategies: {worst:.5}");
    assert!(worst <= config.epsilon);

    // Show the recommendations.
    println!("top-10 similar accounts for user {user}:");
    for (v, s) in index.top_k(&graph, user, 10) {
        println!("  {v:>7}  s = {s:.4}  (in-degree {})", graph.in_degree(v));
    }
}
