//! Item-to-item recommendation on a user–item click graph.
//!
//! The SLING paper's introduction motivates SimRank with collaborative
//! filtering; SimRank++ (Antonellis et al.) applied it to query–ad click
//! graphs. This example builds a bipartite "users click items" graph with
//! preferential popularity, then:
//!
//! 1. recommends similar items with top-k single-source queries,
//! 2. compares plain SimRank against the SimRank++ evidence reweighting,
//! 3. mines globally similar item pairs with a threshold similarity join.
//!
//! ```sh
//! cargo run --release --example recommendation
//! ```

use sling_simrank::baselines::evidence;
use sling_simrank::core::join::JoinStrategy;
use sling_simrank::core::{SlingConfig, SlingIndex};
use sling_simrank::graph::generators::preferential_bipartite;
use sling_simrank::graph::NodeId;

const USERS: usize = 3000;
const ITEMS: usize = 400;
const CLICKS_PER_USER: usize = 4;

fn main() {
    // Users 0..USERS, items USERS..USERS+ITEMS; each user clicks four
    // items, popular items attract more clicks (preferential urn).
    let graph = preferential_bipartite(USERS, ITEMS, CLICKS_PER_USER, 99).expect("valid generator");
    println!(
        "click graph: {} users x {} items, {} clicks",
        USERS,
        ITEMS,
        graph.num_edges()
    );

    // Item similarity flows through shared clickers: item <- user -> item.
    let config = SlingConfig::from_epsilon(0.6, 0.025).with_seed(17);
    let start = std::time::Instant::now();
    let index = SlingIndex::build(&graph, &config).expect("valid config");
    println!("index built in {:.2?}", start.elapsed());

    // 1. "Customers who clicked this also clicked" — top-k per item.
    let anchor = NodeId((USERS + 3) as u32);
    let start = std::time::Instant::now();
    let recs = index.top_k_heap(&graph, anchor, 5);
    println!(
        "\ntop-5 items similar to item {} ({:.1?}):",
        anchor.0 - USERS as u32,
        start.elapsed()
    );
    for (v, s) in &recs {
        println!("  item {:>4}  s = {s:.4}", v.0 - USERS as u32);
    }

    // 2. Evidence reweighting: pairs sharing many clickers gain rank.
    println!("\nSimRank vs SimRank++ evidence for the top recommendations:");
    for (v, s) in &recs {
        let e = evidence(&graph, anchor, *v);
        println!(
            "  item {:>4}  s = {s:.4}  evidence = {e:.3}  s++ = {:.4}",
            v.0 - USERS as u32,
            s * e
        );
    }

    // 3. Catalog-wide similar-item mining via the threshold join. Items
    //    live on the right side; restrict the report to item pairs.
    let start = std::time::Instant::now();
    let pairs = index
        .threshold_join(&graph, 0.05, JoinStrategy::InvertedLists)
        .expect("positive threshold");
    let item_pairs: Vec<_> = pairs
        .iter()
        .filter(|p| p.u.index() >= USERS && p.v.index() >= USERS)
        .collect();
    println!(
        "\nthreshold join (tau = 0.05): {} item pairs of {} total pairs in {:.2?}",
        item_pairs.len(),
        pairs.len(),
        start.elapsed()
    );
    for p in item_pairs.iter().take(5) {
        println!(
            "  items ({:>4}, {:>4})  s = {:.4}",
            p.u.0 - USERS as u32,
            p.v.0 - USERS as u32,
            p.score
        );
    }
}
